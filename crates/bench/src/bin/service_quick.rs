//! Quick perf-smoke gate for the sharded selection service.
//!
//! ```text
//! cargo run -p lrb-bench --release --bin service_quick \
//!     [-- --categories 4096 --shards 4 --rate 1500 --requests 3000 \
//!         --max-p99-us 5000 --json 1]
//! ```
//!
//! Spins up a [`ShardedService`] fronted by a [`ServiceServer`] (UDS on
//! Unix, TCP loopback elsewhere) with per-shard publisher threads and a
//! background writer churning weights, then drives it with the **open-loop**
//! [`service_workload`](lrb_bench::service_workload) driver: request `j` is
//! scheduled at `start + j/rate` and latency is measured from that scheduled
//! instant, so a stalled write path surfaces in the tail instead of being
//! hidden by coordinated omission. Two sections run: coalesced single draws
//! (the flat-combining aggregator) and batch draws (the fused buffer-fill
//! path).
//!
//! Gates (all recorded as [`GateMargin`]s in the `--json 1` report, the
//! `BENCH_service.json` baseline):
//!
//! * `service_single_p99_us` / `service_batch_p99_us` — the open-loop p99
//!   must stay under `--max-p99-us`. The bound is a *generous absolute*
//!   number (default 5 ms against a typical sub-100 µs p99) so the gate
//!   catches stalls, not scheduler jitter; a thin-margin failure is
//!   re-measured once and the better run kept.
//! * `service_chi_square` — 30 000 end-to-end socket draws against a
//!   24-category wheel must match the flat single-level law at the 1 %
//!   level, best of two connections (a correct sampler fails twice with
//!   probability ~10⁻⁴).
//! * `service_fanin_p99_us` / `service_fanin_pipelined_p99_us` — the
//!   1000-connection open-loop storm (strict request/response, then a
//!   pipelined window per connection) must keep its p99 under
//!   `--max-fanin-p99-us` (generous absolute; the storm is the epoll
//!   reactor's reason to exist).
//! * `service_fanin_threads` — the process thread count observed with
//!   every storm connection open must stay under `--max-threads`:
//!   O(reactors + workers + shards), never O(connections).
//! * `service_pipeline_speedup` — the pipelined client must push at least
//!   `--min-pipeline-speedup`× the serialized client's single-draw
//!   throughput on one connection (closed loop, batch 1).
//! * `service_batch_speedup` — the in-process v2 parallel batch planner
//!   must push at least `--min-batch-speedup`× the v1 sequential oracle's
//!   draw throughput at `--plan-batch` draws per batch (fenwick pinned on
//!   both sides). **Core-gated**: enforced only when the host has at
//!   least 4 threads — on fewer cores the fan-out pool has no parallelism
//!   to spend and the margin is advisory.
//! * `service_batch_speedup_pinned` — advisory only: the same comparison
//!   with the parallel side's threads pinned via
//!   [`CoreMap::Spread`], reported so the
//!   pinning payoff (or its absence, e.g. syscall denied) is visible in
//!   the baseline.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use lrb_bench::cli::{Options, OrExit};
use lrb_bench::gate::{print_margins, GateMargin};
use lrb_bench::service_workload::{
    measure_batch_speedup, measure_pipeline_speedup, run_fan_in, run_open_loop, BatchPlanReport,
    FanInConfig, FanInReport, PipelineReport, ServiceLoadConfig, ServiceLoadReport,
};
use lrb_service::{
    CoreMap, ServerAddr, ServiceClient, ServiceConfig, ServiceServer, ShardedService,
};
use lrb_stats::chi_square_gof;
use serde::Serialize;

/// The machine-readable report (`--json 1`), recorded as the
/// `BENCH_service.json` baseline.
#[derive(Debug, Serialize)]
struct QuickReport {
    host_threads: u64,
    categories: u64,
    shards: u64,
    publish_interval_ms: u64,
    transport: String,
    max_p99_us: f64,
    max_fanin_p99_us: f64,
    max_threads: f64,
    min_pipeline_speedup: f64,
    min_batch_speedup: f64,
    batch_speedup_enforced: bool,
    single: ServiceLoadReport,
    batch: ServiceLoadReport,
    fanin_single: FanInReport,
    fanin_pipelined: FanInReport,
    pipeline: PipelineReport,
    batch_plan: BatchPlanReport,
    batch_plan_pinned: BatchPlanReport,
    chi_square_consistent: bool,
    margins: Vec<GateMargin>,
}

fn p99_us(report: &ServiceLoadReport) -> f64 {
    report.latency.p99_ns as f64 / 1_000.0
}

fn fanin_p99_us(report: &FanInReport) -> f64 {
    report.latency.p99_ns as f64 / 1_000.0
}

/// Run a fan-in storm; on a p99 miss, re-measure once and keep the better
/// run (same retry semantics as the request/response sections).
fn fan_in_with_retry(addr: &ServerAddr, config: &FanInConfig, max_p99_us: f64) -> FanInReport {
    let first = run_fan_in(addr, config).unwrap_or_else(|error| {
        eprintln!("fan-in section failed: {error}");
        std::process::exit(1);
    });
    if fanin_p99_us(&first) <= max_p99_us {
        return first;
    }
    eprintln!(
        "  (fan-in p99 {:.1} us over the {max_p99_us:.0} us bound; re-measuring once)",
        fanin_p99_us(&first)
    );
    let second = run_fan_in(addr, config).unwrap_or_else(|error| {
        eprintln!("fan-in section failed: {error}");
        std::process::exit(1);
    });
    if fanin_p99_us(&second) < fanin_p99_us(&first) {
        second
    } else {
        first
    }
}

/// Run a section; on a gate miss, re-measure once and keep the better run
/// (one retry absorbs a one-off scheduler hiccup without masking a real
/// stall, which fails twice).
fn measure_with_retry(
    addr: &ServerAddr,
    config: &ServiceLoadConfig,
    max_p99_us: f64,
) -> ServiceLoadReport {
    let first = run_open_loop(addr, config).unwrap_or_else(|error| {
        eprintln!("service load section failed: {error}");
        std::process::exit(1);
    });
    if p99_us(&first) <= max_p99_us {
        return first;
    }
    eprintln!(
        "  (p99 {:.1} us over the {max_p99_us:.0} us bound; re-measuring once)",
        p99_us(&first)
    );
    let second = run_open_loop(addr, config).unwrap_or_else(|error| {
        eprintln!("service load section failed: {error}");
        std::process::exit(1);
    });
    if p99_us(&second) < p99_us(&first) {
        second
    } else {
        first
    }
}

/// End-to-end conformance: a fresh 24-category service, 30 000 socket
/// draws, chi-square against the flat law. One connection = one server-side
/// RNG stream, so "best of two seeds" is best of two connections.
fn chi_square_end_to_end(seed: u64) -> bool {
    let weights: Vec<f64> = (1..=24).map(f64::from).collect();
    let service = ShardedService::new(
        weights.clone(),
        ServiceConfig {
            shards: 6,
            ..ServiceConfig::default()
        },
    )
    .expect("conformance service construction cannot fail");
    let server = ServiceServer::bind_tcp(service.core(), "127.0.0.1:0", seed)
        .expect("loopback bind cannot fail");
    let total: f64 = weights.iter().sum();
    let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
    let consistent = || {
        let mut client = ServiceClient::connect(server.local_addr()).expect("connect");
        let mut counts = vec![0u64; weights.len()];
        for _ in 0..10 {
            for index in client.draw_batch(3_000).expect("draw_batch") {
                counts[index] += 1;
            }
        }
        chi_square_gof(&counts, &probs).is_consistent(0.01)
    };
    consistent() || consistent()
}

fn main() {
    let options = Options::from_env();
    let categories = options.usize_or("categories", 4096).or_exit();
    let shards = options.usize_or("shards", 4).or_exit();
    let rate = options.f64_or("rate", 1_500.0).or_exit();
    let requests = options.u64_or("requests", 3_000).or_exit();
    let connections = options.usize_or("connections", 4).or_exit();
    let batch = options.u64_or("batch", 64).or_exit() as u32;
    let batch_rate = options.f64_or("batch-rate", 100.0).or_exit();
    let batch_requests = options.u64_or("batch-requests", 200).or_exit();
    let max_p99_us = options.f64_or("max-p99-us", 5_000.0).or_exit();
    let publish_interval_ms = options.u64_or("publish-ms", 2).or_exit();
    let seed = options.u64_or("seed", 0x05EC_71CE).or_exit();
    let fanin_connections = options.usize_or("fanin-connections", 1_000).or_exit();
    let fanin_lanes = options.usize_or("fanin-lanes", 8).or_exit();
    let fanin_rate = options.f64_or("fanin-rate", 2_000.0).or_exit();
    let fanin_requests = options.u64_or("fanin-requests", 4_000).or_exit();
    let fanin_window = options.usize_or("fanin-window", 8).or_exit();
    let max_fanin_p99_us = options.f64_or("max-fanin-p99-us", 20_000.0).or_exit();
    let max_threads = options.f64_or("max-threads", 64.0).or_exit();
    let pipeline_draws = options.u64_or("pipeline-draws", 2_000).or_exit();
    let pipeline_window = options.usize_or("pipeline-window", 32).or_exit();
    let min_pipeline_speedup = options.f64_or("min-pipeline-speedup", 2.0).or_exit();
    let plan_batch = options.usize_or("plan-batch", 4_096).or_exit();
    let plan_iters = options.usize_or("plan-iters", 200).or_exit();
    let min_batch_speedup = options.f64_or("min-batch-speedup", 2.0).or_exit();

    let host_threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);

    println!(
        "service_quick: open-loop p50/p99/p999 against a {shards}-shard service \
         over {categories} categories, host threads = {host_threads}\n"
    );

    // The service under test: per-shard publisher threads on, a writer
    // churning weights in the background — the latency sections measure the
    // read path *with* the write path live, which is the regression the
    // stall fix exists to prevent.
    let mut service = ShardedService::new(
        (1..=categories as u64).map(|w| w as f64).collect(),
        ServiceConfig {
            shards,
            publish_interval: Some(Duration::from_millis(publish_interval_ms.max(1))),
            ..ServiceConfig::default()
        },
    )
    .expect("service construction cannot fail for linear weights");

    #[cfg(unix)]
    let (server, transport) = {
        let path =
            std::env::temp_dir().join(format!("lrb-service-quick-{}.sock", std::process::id()));
        let server = ServiceServer::bind_uds(service.core(), &path, seed)
            .expect("unix-domain bind cannot fail in temp dir");
        (server, "uds".to_string())
    };
    #[cfg(not(unix))]
    let (server, transport) = (
        ServiceServer::bind_tcp(service.core(), "127.0.0.1:0", seed)
            .expect("loopback bind cannot fail"),
        "tcp".to_string(),
    );
    let addr = server.local_addr().clone();

    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let stop = Arc::clone(&stop);
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client = ServiceClient::connect(&addr).expect("writer connect");
            let mut round = 0u64;
            while !stop.load(Ordering::Acquire) {
                let index = (round as usize * 97) % categories;
                client
                    .update(index, (round % 100 + 1) as f64)
                    .expect("writer update");
                if round.is_multiple_of(8) {
                    client.scale_all(1.0).expect("writer scale");
                }
                round += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };

    let single = measure_with_retry(
        &addr,
        &ServiceLoadConfig {
            rate_hz: rate,
            requests,
            connections,
            batch: 0,
        },
        max_p99_us,
    );
    println!(
        "  single draws  {:>7.0} req/s offered  p50 {:>8.1} us  p99 {:>8.1} us  p999 {:>8.1} us",
        single.rate_hz,
        single.latency.p50_ns as f64 / 1_000.0,
        p99_us(&single),
        single.latency.p999_ns as f64 / 1_000.0,
    );

    let batch_report = measure_with_retry(
        &addr,
        &ServiceLoadConfig {
            rate_hz: batch_rate,
            requests: batch_requests,
            connections: connections.min(2),
            batch,
        },
        max_p99_us,
    );
    println!(
        "  batch({batch}) draws {:>6.0} req/s offered  p50 {:>8.1} us  p99 {:>8.1} us  p999 {:>8.1} us",
        batch_report.rate_hz,
        batch_report.latency.p50_ns as f64 / 1_000.0,
        p99_us(&batch_report),
        batch_report.latency.p999_ns as f64 / 1_000.0,
    );

    // The fan-in storm: the reactor's reason to exist. Strict
    // request/response first, then the same storm with a pipelined window
    // per connection. Thread count is sampled while every connection is
    // open — thread-per-connection would show up as ~connections threads.
    let fanin_single = fan_in_with_retry(
        &addr,
        &FanInConfig {
            connections: fanin_connections,
            lanes: fanin_lanes,
            rate_hz: fanin_rate,
            requests: fanin_requests,
            window: 1,
        },
        max_fanin_p99_us,
    );
    println!(
        "  fanin single   {:>4} conns {:>7.0} req/s  p50 {:>8.1} us  p99 {:>8.1} us  p999 {:>8.1} us  threads {}",
        fanin_single.connections,
        fanin_single.rate_hz,
        fanin_single.latency.p50_ns as f64 / 1_000.0,
        fanin_p99_us(&fanin_single),
        fanin_single.latency.p999_ns as f64 / 1_000.0,
        fanin_single.process_threads,
    );
    let fanin_pipelined = fan_in_with_retry(
        &addr,
        &FanInConfig {
            connections: fanin_connections,
            lanes: fanin_lanes,
            rate_hz: fanin_rate,
            requests: fanin_requests,
            window: fanin_window,
        },
        max_fanin_p99_us,
    );
    println!(
        "  fanin pipe({fanin_window}) {:>4} conns {:>7.0} req/s  p50 {:>8.1} us  p99 {:>8.1} us  p999 {:>8.1} us  threads {}",
        fanin_pipelined.connections,
        fanin_pipelined.rate_hz,
        fanin_pipelined.latency.p50_ns as f64 / 1_000.0,
        fanin_p99_us(&fanin_pipelined),
        fanin_pipelined.latency.p999_ns as f64 / 1_000.0,
        fanin_pipelined.process_threads,
    );

    // Closed-loop pipelining payoff on one connection; retry once on a
    // miss (the serialized side is syscall-bound and jitter-prone).
    let pipeline = {
        let first = measure_pipeline_speedup(&addr, pipeline_draws, pipeline_window)
            .unwrap_or_else(|error| {
                eprintln!("pipeline section failed: {error}");
                std::process::exit(1);
            });
        if first.speedup >= min_pipeline_speedup {
            first
        } else {
            eprintln!(
                "  (pipeline speedup {:.2}x under the {min_pipeline_speedup:.1}x bar; re-measuring once)",
                first.speedup
            );
            let second = measure_pipeline_speedup(&addr, pipeline_draws, pipeline_window)
                .unwrap_or_else(|error| {
                    eprintln!("pipeline section failed: {error}");
                    std::process::exit(1);
                });
            if second.speedup > first.speedup {
                second
            } else {
                first
            }
        }
    };
    println!(
        "  pipeline({pipeline_window})   serial {:>8.0} draws/s  pipelined {:>8.0} draws/s  speedup {:.2}x",
        pipeline.serial_rps, pipeline.pipelined_rps, pipeline.speedup,
    );

    stop.store(true, Ordering::Release);
    writer.join().expect("writer thread");
    drop(server);
    service.shutdown();

    let chi_square_consistent = chi_square_end_to_end(seed ^ 0xC41);
    println!(
        "  chi-square conformance over the socket (24 categories, 30k draws): {}",
        if chi_square_consistent {
            "consistent"
        } else {
            "INCONSISTENT"
        }
    );

    // The planner comparison is in-process (it builds its own services);
    // it runs after the server is down so the storm's threads don't
    // contend with the fan-out lanes. Core-gated like the engine's reader
    // scaling: with fewer than 4 host threads the pool has no parallelism
    // to spend, so the margin is recorded but advisory. Retry once on an
    // enforced miss (same jitter policy as every other gate).
    let batch_speedup_enforced = host_threads >= 4;
    let batch_plan = {
        let first =
            measure_batch_speedup(categories, shards, plan_batch, plan_iters, CoreMap::None)
                .unwrap_or_else(|error| {
                    eprintln!("batch-plan section failed: {error}");
                    std::process::exit(1);
                });
        if !batch_speedup_enforced || first.speedup >= min_batch_speedup {
            first
        } else {
            eprintln!(
                "  (batch-plan speedup {:.2}x under the {min_batch_speedup:.1}x bar; re-measuring once)",
                first.speedup
            );
            let second =
                measure_batch_speedup(categories, shards, plan_batch, plan_iters, CoreMap::None)
                    .unwrap_or_else(|error| {
                        eprintln!("batch-plan section failed: {error}");
                        std::process::exit(1);
                    });
            if second.speedup > first.speedup {
                second
            } else {
                first
            }
        }
    };
    println!(
        "  batch plan({plan_batch}) parallel {:>9.0} draws/s  sequential {:>9.0} draws/s  speedup {:.2}x  lanes {}",
        batch_plan.parallel_rps, batch_plan.sequential_rps, batch_plan.speedup, batch_plan.lanes,
    );
    // Pinned advisory: same comparison with the fan-out lanes spread
    // across cores. Never enforced — pinning payoff is host- and
    // permission-dependent (the pinner no-ops when the syscall is denied
    // or off Linux, and `pinned_threads` records what actually stuck).
    let batch_plan_pinned =
        measure_batch_speedup(categories, shards, plan_batch, plan_iters, CoreMap::Spread)
            .unwrap_or_else(|error| {
                eprintln!("pinned batch-plan section failed: {error}");
                std::process::exit(1);
            });
    println!(
        "  batch plan pinned          parallel {:>9.0} draws/s  speedup {:.2}x  pinned threads {}",
        batch_plan_pinned.parallel_rps, batch_plan_pinned.speedup, batch_plan_pinned.pinned_threads,
    );

    // Every gate except the planner speedup is absolute or statistical —
    // no core-count dependence — and enforced on every host.
    let storm_threads = fanin_single
        .process_threads
        .max(fanin_pipelined.process_threads);
    let margins = vec![
        GateMargin::at_most("service_single_p99_us", p99_us(&single), max_p99_us, true),
        GateMargin::at_most(
            "service_batch_p99_us",
            p99_us(&batch_report),
            max_p99_us,
            true,
        ),
        GateMargin::at_most(
            "service_fanin_p99_us",
            fanin_p99_us(&fanin_single),
            max_fanin_p99_us,
            true,
        ),
        GateMargin::at_most(
            "service_fanin_pipelined_p99_us",
            fanin_p99_us(&fanin_pipelined),
            max_fanin_p99_us,
            true,
        ),
        GateMargin::at_most(
            "service_fanin_threads",
            storm_threads as f64,
            max_threads,
            true,
        ),
        GateMargin::at_least(
            "service_pipeline_speedup",
            pipeline.speedup,
            min_pipeline_speedup,
            true,
        ),
        GateMargin::at_least(
            "service_batch_speedup",
            batch_plan.speedup,
            min_batch_speedup,
            batch_speedup_enforced,
        ),
        GateMargin::at_least(
            "service_batch_speedup_pinned",
            batch_plan_pinned.speedup,
            min_batch_speedup,
            false,
        ),
        GateMargin::conformance("service_chi_square", chi_square_consistent, true),
    ];
    print_margins(&margins);

    let failed = margins.iter().any(|m| m.enforced && !m.passed);

    if options.contains("json") {
        let report = QuickReport {
            host_threads: host_threads as u64,
            categories: categories as u64,
            shards: shards as u64,
            publish_interval_ms,
            transport,
            max_p99_us,
            max_fanin_p99_us,
            max_threads,
            min_pipeline_speedup,
            min_batch_speedup,
            batch_speedup_enforced,
            single,
            batch: batch_report,
            fanin_single,
            fanin_pipelined,
            pipeline,
            batch_plan,
            batch_plan_pinned,
            chi_square_consistent,
            margins,
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("report serialisation cannot fail")
        );
    }

    if failed {
        eprintln!("FAIL: a service gate missed its threshold (see margins above)");
        std::process::exit(1);
    }
    println!("OK");
}
