//! Quick gates for the `lrb-engine` serving layer.
//!
//! ```text
//! cargo run -p lrb-bench --release --bin engine_quick \
//!     [-- --n 4096 --readers 8 --ratio 16 --duration-ms 250 \
//!         --min-speedup 3.0 --trials 120000 --timing-every 32 --json 1]
//! ```
//!
//! Two checks:
//!
//! 1. **Snapshot-isolation scaling** — reader threads sample lock-free
//!    against immutable snapshots, so sample throughput should scale with
//!    readers while a writer publishes concurrently. Measures samples/sec at
//!    1 reader and at `--readers` readers (default 8) with a 1:`--ratio`
//!    update:sample mix (default 1:16), plus a per-backend single-reader
//!    comparison. Exits non-zero when the reader-scaling speedup falls below
//!    `--min-speedup` — but only on hosts that actually have `--readers`
//!    hardware threads; on smaller hosts the gate is advisory (printed, not
//!    enforced), because the scaling being measured is physical parallelism.
//! 2. **Adaptive decider** — a calibrated engine runs the skew-shifting
//!    workload (draw-heavy uniform → write-heavy spike → recovery): the
//!    telemetry-driven decider must log at least one backend switch, and
//!    every phase's served draws must stay chi-square-consistent
//!    (p > 0.01) with the exact probabilities — conformance maintained
//!    across the switches. This gate is statistical but seed-deterministic
//!    per backend choice, and is enforced everywhere.
//!
//! The `--json 1` report (recorded as the `BENCH_engine.json` baseline)
//! includes the calibrated per-op cost constants, the full backend-switch
//! history of the adaptive run, and — via the engine's observability
//! layer — the publish-span and sampled reader-draw latency distributions
//! (p50/p99/p999) of every driver run, plus a [`GateMargin`] per gate
//! (scaling, switch count, per-phase chi-square p against the 1% level).
//! An enforced scaling miss is re-measured once before the verdict
//! counts. `--timing-every N` controls the 1-in-N reader-timing sample
//! rate (default 32; `0` turns reader timing off, leaving the
//! sample-latency summaries empty).

use lrb_bench::cli::{Options, OrExit};
use lrb_bench::engine_workload::{
    run_driver, run_skew_shift, DriverConfig, DriverReport, SkewShiftConfig, SkewShiftReport,
};
use lrb_bench::gate::{print_margins, GateMargin};
use lrb_engine::{BackendChoice, BackendRegistry};
use serde::Serialize;

/// The machine-readable report (`--json 1`), recorded as the
/// `BENCH_engine.json` baseline.
#[derive(Debug, Serialize)]
struct QuickReport {
    host_threads: u64,
    min_speedup: f64,
    speedup: f64,
    gate_enforced: bool,
    reader_scaling: Vec<DriverReport>,
    backends: Vec<DriverReport>,
    adaptive: SkewShiftReport,
    margins: Vec<GateMargin>,
}

fn main() {
    let options = Options::from_env();
    let n = options.usize_or("n", 4096).or_exit();
    let readers = options.usize_or("readers", 8).or_exit().max(2);
    let ratio = options.u64_or("ratio", 16).or_exit().max(1);
    let duration_ms = options.u64_or("duration-ms", 250).or_exit();
    let min_speedup = options.f64_or("min-speedup", 3.0).or_exit();
    let trials = options.u64_or("trials", 120_000).or_exit();
    let timing_every = options
        .u64_or("timing-every", 32)
        .or_exit()
        .min(u32::MAX as u64) as u32;
    let seed = options.u64_or("seed", 2024).or_exit();

    let host_threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);

    let base = DriverConfig {
        categories: n,
        samples_per_update: ratio,
        duration_ms,
        reader_timing_every: timing_every,
        seed,
        ..DriverConfig::default()
    };

    println!(
        "engine_quick: n = {n}, 1:{ratio} update:sample, {duration_ms} ms windows, \
         host threads = {host_threads}\n"
    );

    println!("reader scaling (auto backend, writer publishing concurrently):");
    let mut reader_scaling = Vec::new();
    for r in [1usize, readers] {
        let report = run_driver(&DriverConfig { readers: r, ..base });
        println!(
            "  {:>2} readers   {:>12.0} samples/s   ({} publishes, backend {})",
            r, report.samples_per_sec, report.publishes, report.backend
        );
        println!(
            "              publish ns p50/p99/p999 = {}/{}/{}   \
             draw ns p50/p99/p999 = {}/{}/{} ({} timed)",
            report.publish_latency.p50_ns,
            report.publish_latency.p99_ns,
            report.publish_latency.p999_ns,
            report.sample_latency.p50_ns,
            report.sample_latency.p99_ns,
            report.sample_latency.p999_ns,
            report.sample_latency.count
        );
        reader_scaling.push(report);
    }
    let mut speedup =
        reader_scaling[1].samples_per_sec / reader_scaling[0].samples_per_sec.max(1.0);

    println!("\nbackends at 1 reader (fixed choice):");
    let mut backends = Vec::new();
    for name in BackendRegistry::standard().names() {
        let report = run_driver(&DriverConfig {
            readers: 1,
            backend: BackendChoice::Fixed(name),
            ..base
        });
        println!(
            "  {:<22} {:>12.0} samples/s",
            report.backend, report.samples_per_sec
        );
        backends.push(report);
    }

    println!("\nadaptive decider on a skew-shifting workload (calibrated):");
    let adaptive = run_skew_shift(&SkewShiftConfig {
        categories: n,
        trials,
        seed,
        ..SkewShiftConfig::default()
    });
    for phase in &adaptive.phases {
        println!(
            "  phase {:<8} backend {:<22} chi-square p = {:.4}",
            phase.phase, phase.backend, phase.chi_square_p
        );
    }
    for switch in &adaptive.switches {
        println!(
            "  switch @v{:<4} {} -> {}{} ({} draws served)",
            switch.version,
            switch.from,
            switch.to,
            if switch.mid_stream {
                " [mid-stream]"
            } else {
                ""
            },
            switch.draws_served
        );
    }
    println!("  calibrated cost constants (ns per abstract op):");
    for constants in &adaptive.cost_constants {
        println!(
            "    {:<22} build {:>8.3}   draw {:>8.3}",
            constants.backend, constants.build_ns_per_op, constants.draw_ns_per_op
        );
    }

    // The scaling gate measures physical reader parallelism; a host with
    // fewer hardware threads than readers cannot exhibit it, so there the
    // result is advisory.
    let gate_enforced = host_threads >= readers;

    // Thin-margin hardening: an enforced scaling miss is re-measured once
    // and the better pair kept — scheduler noise on a shared host passes on
    // retry, a real scaling regression fails twice.
    if gate_enforced && speedup < min_speedup {
        eprintln!("  (scaling {speedup:.2}x under the bar; re-measuring the pair once)");
        let one = run_driver(&DriverConfig { readers: 1, ..base });
        let many = run_driver(&DriverConfig { readers, ..base });
        speedup = speedup.max(many.samples_per_sec / one.samples_per_sec.max(1.0));
    }

    println!(
        "\nsnapshot-isolated read scaling 1 -> {readers} readers: {speedup:.2}x \
         (gate: >= {min_speedup}x, {})",
        if gate_enforced {
            "enforced"
        } else {
            "advisory on this host"
        }
    );

    // Per-phase conformance margins use the p-value itself against the 1%
    // rejection level, so a drifting sampler shows up as a shrinking margin
    // before it ever flips the gate.
    let mut margins = vec![
        GateMargin::at_least("reader_scaling", speedup, min_speedup, gate_enforced),
        GateMargin::at_least(
            "adaptive_backend_switches",
            adaptive.switches.len() as f64,
            1.0,
            true,
        ),
    ];
    for phase in &adaptive.phases {
        margins.push(GateMargin::at_least(
            &format!("adaptive_chi2_p_{}", phase.phase),
            phase.chi_square_p,
            0.01,
            true,
        ));
    }
    print_margins(&margins);

    if options.contains("json") {
        let report = QuickReport {
            host_threads: host_threads as u64,
            min_speedup,
            speedup,
            gate_enforced,
            reader_scaling,
            backends,
            adaptive: adaptive.clone(),
            margins: margins.clone(),
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("report serialisation cannot fail")
        );
    }

    let mut failed = false;
    if adaptive.switches.is_empty() {
        eprintln!("FAIL: the adaptive decider never switched backends");
        failed = true;
    }
    for phase in &adaptive.phases {
        if phase.chi_square_p <= 0.01 {
            eprintln!(
                "FAIL: phase {} lost chi-square conformance (p = {})",
                phase.phase, phase.chi_square_p
            );
            failed = true;
        }
    }
    if gate_enforced && speedup < min_speedup {
        eprintln!("FAIL: expected >= {min_speedup}x reader scaling");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("OK");
}
