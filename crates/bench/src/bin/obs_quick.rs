//! Quick gate for the `lrb-obs` telemetry layer as wired through the
//! engine.
//!
//! ```text
//! cargo run -p lrb-bench --release --bin obs_quick \
//!     [-- --n 4096 --ratio 16 --duration-ms 250 --pairs 4 \
//!         --timing-every 32 --min-ratio 0.97 --json 1]
//! ```
//!
//! Two checks:
//!
//! 1. **Overhead** — telemetry must be cheap enough to leave on. Runs
//!    `--pairs` back-to-back pairs of the closed-loop engine driver,
//!    uninstrumented (`reader_timing_every = 0`) then instrumented
//!    (`reader_timing_every = --timing-every`), and computes the
//!    throughput ratio **within each pair** — the two runs of a pair are
//!    temporally adjacent, so frequency and scheduler drift cancel instead
//!    of biasing one arm. The gate takes the **best pair ratio** and
//!    requires it `>= --min-ratio` (default 0.97, i.e. at most 3%
//!    throughput cost): genuine overhead depresses *every* pair, while a
//!    noise spike cannot depress all of them. A failing first round is
//!    retried once with the pair count doubled before the verdict counts.
//! 2. **Function** — an instrumented engine must actually observe itself:
//!    publish and sampled reader-draw histograms are non-empty, the flight
//!    recorder journals `Publish` events, and both exporters emit the
//!    metric catalogue (the Prometheus text parses the expected series,
//!    the JSON snapshot round-trips through the parser).
//!
//! `--json 1` appends a machine-readable report.

use lrb_bench::cli::{Options, OrExit};
use lrb_bench::engine_workload::{run_driver, DriverConfig, DriverReport};
use lrb_bench::gate::{print_margins, GateMargin};
use lrb_engine::{EngineConfig, EngineEvent, SelectionEngine};
use lrb_rng::Philox4x32;
use serde::Serialize;

/// Machine-readable outcome (`--json 1`).
#[derive(Debug, Serialize)]
struct ObsReport {
    pairs_run: u64,
    timing_every: u64,
    min_ratio: f64,
    best_off_samples_per_sec: f64,
    best_on_samples_per_sec: f64,
    overhead_ratio: f64,
    journal_events: u64,
    instrumented: DriverReport,
    margins: Vec<GateMargin>,
}

/// One off/on pair: the two runs are back-to-back, so their ratio is
/// immune to the slow frequency and scheduler drift that makes absolute
/// throughput on a shared host noisy.
struct PairOutcome {
    off: DriverReport,
    on: DriverReport,
    ratio: f64,
}

/// Run `pairs` back-to-back off/on driver pairs (seeds offset so no two
/// runs replay the same stream) and return the outcome of each.
fn run_pairs(
    base: &DriverConfig,
    timing_every: u32,
    pairs: u64,
    seed_offset: u64,
) -> Vec<PairOutcome> {
    (0..pairs)
        .map(|pair| {
            let seed = base.seed + seed_offset + pair;
            let off = run_driver(&DriverConfig {
                reader_timing_every: 0,
                seed,
                ..*base
            });
            let on = run_driver(&DriverConfig {
                reader_timing_every: timing_every,
                seed,
                ..*base
            });
            let ratio = on.samples_per_sec / off.samples_per_sec.max(1.0);
            PairOutcome { off, on, ratio }
        })
        .collect()
}

/// The pair with the highest on/off ratio — the gate's verdict, since
/// genuine overhead depresses every pair while noise cannot.
fn best_pair(outcomes: Vec<PairOutcome>) -> PairOutcome {
    outcomes
        .into_iter()
        .max_by(|a, b| a.ratio.total_cmp(&b.ratio))
        .expect("at least one pair ran")
}

fn main() {
    let options = Options::from_env();
    let n = options.usize_or("n", 4096).or_exit();
    let ratio = options.u64_or("ratio", 16).or_exit().max(1);
    let duration_ms = options.u64_or("duration-ms", 250).or_exit();
    let pairs = options.u64_or("pairs", 4).or_exit().max(1);
    let timing_every = options.u64_or("timing-every", 32).or_exit().max(1) as u32;
    let min_ratio = options.f64_or("min-ratio", 0.97).or_exit();
    let seed = options.u64_or("seed", 2024).or_exit();

    let base = DriverConfig {
        categories: n,
        readers: 1,
        samples_per_update: ratio,
        duration_ms,
        seed,
        ..DriverConfig::default()
    };

    println!(
        "obs_quick: n = {n}, 1:{ratio} update:sample, {duration_ms} ms windows, \
         1-in-{timing_every} reader timing\n"
    );

    // ---- Check 1: overhead of leaving telemetry on ----------------------
    println!("telemetry overhead ({pairs} back-to-back off/on pairs, best pair ratio):");
    let outcomes = run_pairs(&base, timing_every, pairs, 0);
    for outcome in &outcomes {
        println!(
            "  off {:>12.0} samples/s   on {:>12.0} samples/s   ratio {:.4}",
            outcome.off.samples_per_sec, outcome.on.samples_per_sec, outcome.ratio
        );
    }
    let mut best = best_pair(outcomes);
    let mut pairs_run = pairs;
    if best.ratio < min_ratio {
        // One retry at double the pair count: a real regression fails
        // again, a scheduler hiccup does not.
        println!(
            "  first round best ratio {:.4} below the gate; retrying wider",
            best.ratio
        );
        let retry = best_pair(run_pairs(&base, timing_every, pairs * 2, pairs));
        pairs_run += pairs * 2;
        if retry.ratio > best.ratio {
            best = retry;
        }
    }
    println!(
        "  best pair ratio {:.4} (gate: >= {:.2})",
        best.ratio, min_ratio
    );
    println!(
        "  instrumented arm timed {} buffers: draw ns p50/p99/p999 = {}/{}/{}",
        best.on.sample_latency.count,
        best.on.sample_latency.p50_ns,
        best.on.sample_latency.p99_ns,
        best.on.sample_latency.p999_ns
    );

    // ---- Check 2: the telemetry actually observes the engine ------------
    let engine = SelectionEngine::new(
        vec![1.0; n.max(16)],
        EngineConfig {
            reader_timing_every: 1,
            ..EngineConfig::default()
        },
    )
    .expect("gate weights are valid");
    let mut rng = Philox4x32::for_substream(seed, 42);
    let mut buffer = vec![0usize; 64];
    for round in 0..16u64 {
        engine
            .read(|snapshot| snapshot.sample_into(&mut rng, &mut buffer))
            .expect("uniform weights sample fine");
        engine
            .enqueue((round % 16) as usize, 2.0 + round as f64)
            .expect("index in range");
        engine.publish().expect("weights stay valid");
    }
    let obs = engine.observability();
    let publish_count = obs.publish_latency().count;
    let draw_count = obs.reader_draw_latency().count;
    let journal = obs.journal();
    let journal_publishes = journal
        .iter()
        .filter(|entry| matches!(entry.event, EngineEvent::Publish { .. }))
        .count();
    let prometheus = engine.export_prometheus();
    let json_ok = serde_json::from_str_value(&engine.export_json()).is_ok();
    println!("\nfunctional checks on a 1-in-1 instrumented engine:");
    println!("  publish spans recorded  {publish_count}");
    println!("  reader buffers timed    {draw_count}");
    println!("  journal Publish events  {journal_publishes}");

    // The functional checks are exact counts; the margin record keeps them
    // alongside the statistical overhead gate so one `margins` array tells
    // the whole story.
    let exporters_ok = json_ok
        && [
            "lrb_publishes_total",
            "lrb_publish_ns{quantile=\"0.5\"}",
            "lrb_reader_draw_ns_count",
            "lrb_simd_lanes",
        ]
        .iter()
        .all(|series| prometheus.contains(series));
    let margins = vec![
        GateMargin::at_least("telemetry_overhead_ratio", best.ratio, min_ratio, true),
        GateMargin::at_least(
            "instrumented_timed_buffers",
            best.on.sample_latency.count as f64,
            1.0,
            true,
        ),
        GateMargin::conformance(
            "publish_histogram_matches_counter",
            best.on.publish_latency.count == best.on.publishes,
            true,
        ),
        GateMargin::conformance(
            "one_in_one_engine_observed",
            publish_count == 16 && draw_count == 16 && journal_publishes == 16,
            true,
        ),
        GateMargin::conformance("exporters_emit_catalogue", exporters_ok, true),
    ];
    print_margins(&margins);

    if options.contains("json") {
        let report = ObsReport {
            pairs_run,
            timing_every: timing_every as u64,
            min_ratio,
            best_off_samples_per_sec: best.off.samples_per_sec,
            best_on_samples_per_sec: best.on.samples_per_sec,
            overhead_ratio: best.ratio,
            journal_events: obs.events_recorded(),
            instrumented: best.on.clone(),
            margins: margins.clone(),
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("report serialisation cannot fail")
        );
    }

    let mut failed = false;
    if best.ratio < min_ratio {
        eprintln!(
            "FAIL: instrumented throughput {:.4} of baseline (gate: >= {min_ratio})",
            best.ratio
        );
        failed = true;
    }
    if best.on.sample_latency.count == 0 {
        eprintln!("FAIL: the instrumented driver arm timed no reader buffers");
        failed = true;
    }
    if best.on.publish_latency.count != best.on.publishes {
        eprintln!(
            "FAIL: publish histogram ({}) disagrees with the publish counter ({})",
            best.on.publish_latency.count, best.on.publishes
        );
        failed = true;
    }
    if publish_count != 16 || draw_count != 16 {
        eprintln!(
            "FAIL: 1-in-1 engine recorded {publish_count} publish spans and \
             {draw_count} timed buffers (expected 16 of each)"
        );
        failed = true;
    }
    if journal_publishes != 16 {
        eprintln!("FAIL: journal holds {journal_publishes} Publish events (expected 16)");
        failed = true;
    }
    for series in [
        "lrb_publishes_total",
        "lrb_publish_ns{quantile=\"0.5\"}",
        "lrb_reader_draw_ns_count",
        "lrb_simd_lanes",
    ] {
        if !prometheus.contains(series) {
            eprintln!("FAIL: Prometheus exposition is missing `{series}`");
            failed = true;
        }
    }
    if !json_ok {
        eprintln!("FAIL: the JSON metrics snapshot does not parse");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("OK");
}
