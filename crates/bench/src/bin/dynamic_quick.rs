//! Quick comparison of the dynamic engines at `n = 2^16` with a 1:1
//! update:sample ratio — the headline number for the `lrb-dynamic` crate:
//! the Fenwick tree pays `O(log n)` per round where the alias table pays
//! `O(n)` for its rebuild, so the speedup is expected to be well over 10×.
//!
//! ```text
//! cargo run -p lrb-bench --release --bin dynamic_quick \
//!     [-- --n 65536 --rounds 2000 --min-speedup 10 --json 1]
//! ```
//!
//! Exits non-zero if the Fenwick engine fails to beat the alias rebuild by
//! at least `--min-speedup` (default 10×), so CI can use it as a regression
//! gate. A thin-margin miss is re-measured once (the better run counts),
//! and the measured-vs-threshold margin is recorded as a [`GateMargin`] in
//! the `--json 1` report, the `BENCH_dynamic.json` baseline.

use lrb_bench::cli::{Options, OrExit};
use lrb_bench::dynamic_workload::{time_churn, workload};
use lrb_bench::gate::{print_margins, GateMargin};
use lrb_dynamic::{FenwickSampler, RebuildingAliasSampler, ShardedArena};
use serde::Serialize;

/// The machine-readable report (`--json 1`), recorded as the
/// `BENCH_dynamic.json` baseline.
#[derive(Debug, Serialize)]
struct QuickReport {
    n: u64,
    rounds: u64,
    min_speedup: f64,
    fenwick_us_per_round: f64,
    arena_us_per_round: f64,
    alias_us_per_round: f64,
    speedup: f64,
    margins: Vec<GateMargin>,
}

/// One full churn comparison: per-round seconds for the three engines plus
/// the fenwick-vs-alias gate ratio.
fn measure(n: usize, rounds: usize) -> (f64, f64, f64, f64) {
    let mut fenwick = FenwickSampler::from_weights(workload(n)).expect("valid workload");
    let fenwick_s = time_churn(&mut fenwick, rounds, 1);

    let mut arena = ShardedArena::from_weights(workload(n), 16).expect("valid workload");
    let arena_s = time_churn(&mut arena, rounds, 1);

    // The alias engine rebuilds per round; keep its round count sane.
    let alias_rounds = rounds.min(400);
    let mut alias = RebuildingAliasSampler::from_weights(workload(n)).expect("valid workload");
    let alias_s = time_churn(&mut alias, alias_rounds, 1) * (rounds as f64 / alias_rounds as f64);

    (fenwick_s, arena_s, alias_s, alias_s / fenwick_s)
}

fn main() {
    let options = Options::from_env();
    let n = options.usize_or("n", 1 << 16).or_exit();
    let rounds = options.usize_or("rounds", 2_000).or_exit();
    let min_speedup = options.f64_or("min-speedup", 10.0).or_exit();

    println!("dynamic engines, n = {n}, {rounds} rounds of 1 update + 1 sample\n");

    let (mut fenwick_s, mut arena_s, mut alias_s, mut speedup) = measure(n, rounds);
    // Thin-margin hardening: a miss is re-measured once and the better run
    // kept — a scheduler hiccup passes on retry, a real regression fails
    // twice.
    if speedup < min_speedup {
        eprintln!("  (speedup {speedup:.1}x under the bar; re-measuring once)");
        let retry = measure(n, rounds);
        if retry.3 > speedup {
            (fenwick_s, arena_s, alias_s, speedup) = retry;
        }
    }

    let per_round = |secs: f64| format!("{:>10.2} µs/round", secs / rounds as f64 * 1e6);
    println!("  fenwick        {}", per_round(fenwick_s));
    println!("  sharded-arena  {}", per_round(arena_s));
    println!(
        "  alias-rebuild  {}   (extrapolated from {} rounds)",
        per_round(alias_s),
        rounds.min(400)
    );

    println!("\nfenwick vs alias-rebuild speedup at 1:1 update:sample — {speedup:.1}x");
    let margins = vec![GateMargin::at_least(
        "fenwick_vs_alias_speedup",
        speedup,
        min_speedup,
        true,
    )];
    print_margins(&margins);

    if options.contains("json") {
        let report = QuickReport {
            n: n as u64,
            rounds: rounds as u64,
            min_speedup,
            fenwick_us_per_round: fenwick_s / rounds as f64 * 1e6,
            arena_us_per_round: arena_s / rounds as f64 * 1e6,
            alias_us_per_round: alias_s / rounds as f64 * 1e6,
            speedup,
            margins: margins.clone(),
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("report serialisation cannot fail")
        );
    }

    if speedup < min_speedup {
        eprintln!("FAIL: expected >= {min_speedup}x");
        std::process::exit(1);
    }
    println!("OK (>= {min_speedup}x)");
}
