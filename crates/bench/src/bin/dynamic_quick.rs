//! Quick comparison of the dynamic engines at `n = 2^16` with a 1:1
//! update:sample ratio — the headline number for the `lrb-dynamic` crate:
//! the Fenwick tree pays `O(log n)` per round where the alias table pays
//! `O(n)` for its rebuild, so the speedup is expected to be well over 10×.
//!
//! ```text
//! cargo run -p lrb-bench --release --bin dynamic_quick [-- --n 65536 --rounds 2000]
//! ```
//!
//! Exits non-zero if the Fenwick engine fails to beat the alias rebuild by
//! at least 10×, so CI can use it as a regression gate.

use lrb_bench::cli::{Options, OrExit};
use lrb_bench::dynamic_workload::{time_churn, workload};
use lrb_dynamic::{FenwickSampler, RebuildingAliasSampler, ShardedArena};

fn main() {
    let options = Options::from_env();
    let n = options.usize_or("n", 1 << 16).or_exit();
    let rounds = options.usize_or("rounds", 2_000).or_exit();

    println!("dynamic engines, n = {n}, {rounds} rounds of 1 update + 1 sample\n");

    let mut fenwick = FenwickSampler::from_weights(workload(n)).expect("valid workload");
    let fenwick_s = time_churn(&mut fenwick, rounds, 1);

    let mut arena = ShardedArena::from_weights(workload(n), 16).expect("valid workload");
    let arena_s = time_churn(&mut arena, rounds, 1);

    // The alias engine rebuilds per round; keep its round count sane.
    let alias_rounds = rounds.min(400);
    let mut alias = RebuildingAliasSampler::from_weights(workload(n)).expect("valid workload");
    let alias_s = time_churn(&mut alias, alias_rounds, 1) * (rounds as f64 / alias_rounds as f64);

    let per_round = |secs: f64| format!("{:>10.2} µs/round", secs / rounds as f64 * 1e6);
    println!("  fenwick        {}", per_round(fenwick_s));
    println!("  sharded-arena  {}", per_round(arena_s));
    println!(
        "  alias-rebuild  {}   (extrapolated from {alias_rounds} rounds)",
        per_round(alias_s)
    );

    let speedup = alias_s / fenwick_s;
    println!("\nfenwick vs alias-rebuild speedup at 1:1 update:sample — {speedup:.1}x");
    if speedup < 10.0 {
        eprintln!("FAIL: expected >= 10x");
        std::process::exit(1);
    }
    println!("OK (>= 10x)");
}
