//! Measures the quantity bounded by the paper's **Theorem 1**: the expected
//! number of while-loop iterations of the CRCW logarithmic random bidding as
//! a function of `k` (the number of non-zero fitness values), and the `O(1)`
//! shared-memory footprint.
//!
//! ```text
//! cargo run -p lrb-bench --release --bin theorem1 -- --n 16384 --max-k 4096 --trials 30
//! ```
//!
//! The printed `2*ceil(log2 k)` column is the paper's reference bound; the
//! measured means should sit well below it and grow logarithmically in `k`
//! while the memory column stays at 2 cells.

use lrb_bench::cli::{Options, OrExit};
use lrb_bench::run_theorem1_experiment;

fn main() {
    let options = Options::from_env();
    let n = options.usize_or("n", 16_384).or_exit();
    let max_k = options.usize_or("max-k", 4_096).or_exit().min(n);
    let trials = options.usize_or("trials", 30).or_exit();
    let seed = options.u64_or("seed", 2024).or_exit();

    let report = run_theorem1_experiment(n, max_k, trials, seed);
    println!(
        "Theorem 1 experiment: CRCW logarithmic random bidding, n = {n}, trials per k = {trials}"
    );
    println!("{}", report.render());
    println!("shared-memory footprint is the paper's O(1): 2 cells (champion bid + output index)");
    if options.contains("json") {
        println!("{}", report.to_json());
    }
}
