//! Quick gate for the `lrb-durable` write-ahead log as wired through the
//! engine's publish path.
//!
//! ```text
//! cargo run -p lrb-bench --release --bin durable_quick \
//!     [-- --n 4096 --ratio 1024 --duration-ms 250 --pairs 4 \
//!         --min-ratio 0.97 --recovery-publishes 20000 --json 1]
//! ```
//!
//! Three checks:
//!
//! 1. **Overhead** — durability must be cheap enough to leave on in the
//!    engine's natural regime (draws dominate publishes; `--ratio` draws
//!    per publish, default 1024 to match the engine's cost-model prior).
//!    Runs `--pairs` back-to-back pairs of a closed-loop draw+publish
//!    driver, [`Durability::Off`] then [`Durability::Wal`] (fsync off —
//!    the gate prices the *append*, not the disk), and takes the **best
//!    pair ratio** of draw throughput, which must be `>= --min-ratio`
//!    (default 0.97). The two runs of a pair are temporally adjacent, so
//!    frequency and scheduler drift cancel; a failing first round is
//!    retried once with the pair count doubled. The raw publish-path
//!    ratio (publishes/s with the WAL over without, no draw
//!    amortisation) is reported unenforced — it prices one `write(2)`
//!    plus framing against an in-memory rebuild and is expected well
//!    below 1.0.
//! 2. **Recovery speed** — a WAL of `--recovery-publishes` batches is
//!    written without intermediate checkpoints, then reopened; replay
//!    must restore the exact last version (enforced) and its
//!    milliseconds-per-MB figure is recorded (unenforced — host disk
//!    caches vary).
//! 3. **Function** — the durable arm actually logged: WAL append
//!    histogram count equals the publish count, WAL bytes grew, and the
//!    recovered engine journals a `Recovered` event.
//!
//! `--json 1` appends a machine-readable report (`BENCH_durable.json`
//! records the baseline host's numbers).

use std::path::PathBuf;
use std::time::Instant;

use lrb_bench::cli::{Options, OrExit};
use lrb_bench::gate::{print_margins, GateMargin};
use lrb_engine::{
    BackendChoice, Durability, EngineConfig, EngineEvent, FsyncPolicy, PatchPolicy,
    SelectionEngine, WalOptions,
};
use lrb_rng::Philox4x32;
use serde::Serialize;

/// Machine-readable outcome (`--json 1`).
#[derive(Debug, Serialize)]
struct DurableReport {
    pairs_run: u64,
    min_ratio: f64,
    best_off_samples_per_sec: f64,
    best_wal_samples_per_sec: f64,
    overhead_ratio: f64,
    publish_path_ratio: f64,
    wal_records: u64,
    wal_bytes: u64,
    recovery_publishes: u64,
    recovery_wal_mb: f64,
    recovery_ms: f64,
    recovery_ms_per_mb: f64,
    margins: Vec<GateMargin>,
}

/// One closed-loop run: `ratio` draws then one 16-override publish, for
/// `duration_ms`.
#[derive(Debug, Clone, Copy)]
struct DriverOutcome {
    samples_per_sec: f64,
    publishes_per_sec: f64,
    wal_records: u64,
    wal_bytes: u64,
}

/// A scratch directory under the system temp dir, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("lrb-durable-quick-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        Self(path)
    }

    /// Total bytes of every file under the directory (WAL + checkpoints).
    fn bytes(&self) -> u64 {
        std::fs::read_dir(&self.0)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok()?.metadata().ok())
                    .filter(|m| m.is_file())
                    .map(|m| m.len())
                    .sum()
            })
            .unwrap_or(0)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Deterministic engine config for one arm. Fixed backend + no patches,
/// so both arms of a pair do identical in-memory work and the ratio
/// isolates the WAL append.
fn arm_config(durability: Durability) -> EngineConfig {
    EngineConfig {
        backend: BackendChoice::Fixed("fenwick"),
        patch: PatchPolicy::Never,
        calibrate: false,
        durability,
        ..EngineConfig::default()
    }
}

/// Run the closed loop: `ratio` draws (64 at a time), 16 overrides, one
/// publish, repeat until `duration_ms` elapses.
fn run_driver(
    n: usize,
    ratio: u64,
    duration_ms: u64,
    seed: u64,
    durability: Durability,
) -> DriverOutcome {
    let weights: Vec<f64> = (1..=n).map(|i| 1.0 + (i % 97) as f64).collect();
    let engine = SelectionEngine::new(weights, arm_config(durability)).expect("driver engine");
    let mut rng = Philox4x32::for_substream(seed, 1);
    let mut buffer = vec![0usize; 64];
    let budget = std::time::Duration::from_millis(duration_ms);
    let started = Instant::now();
    let mut samples = 0u64;
    let mut publishes = 0u64;
    let mut round = 0u64;
    while started.elapsed() < budget {
        let mut drawn = 0u64;
        while drawn < ratio {
            let chunk = buffer.len().min((ratio - drawn) as usize);
            engine
                .read(|snapshot| snapshot.sample_into(&mut rng, &mut buffer[..chunk]))
                .expect("positive weights sample");
            drawn += chunk as u64;
        }
        samples += drawn;
        for i in 0..16u64 {
            let index = ((round * 16 + i) % n as u64) as usize;
            engine
                .enqueue(index, 1.0 + ((round + i) % 251) as f64)
                .expect("index in range");
        }
        engine.publish().expect("weights stay valid");
        publishes += 1;
        round += 1;
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    let obs = engine.observability();
    DriverOutcome {
        samples_per_sec: samples as f64 / elapsed,
        publishes_per_sec: publishes as f64 / elapsed,
        wal_records: obs.wal_records(),
        wal_bytes: obs.wal_bytes(),
    }
}

/// One off/wal pair, back-to-back (drift cancels inside a pair).
struct PairOutcome {
    off: DriverOutcome,
    wal: DriverOutcome,
    ratio: f64,
}

fn run_pairs(
    n: usize,
    ratio: u64,
    duration_ms: u64,
    pairs: u64,
    seed_offset: u64,
) -> Vec<PairOutcome> {
    (0..pairs)
        .map(|pair| {
            let seed = 2024 + seed_offset + pair;
            let off = run_driver(n, ratio, duration_ms, seed, Durability::Off);
            let dir = ScratchDir::new(&format!("pair-{}", seed_offset + pair));
            let wal = run_driver(
                n,
                ratio,
                duration_ms,
                seed,
                Durability::Wal(WalOptions {
                    dir: dir.0.clone(),
                    fsync: FsyncPolicy::Off,
                    checkpoint_every: 0,
                }),
            );
            let ratio = wal.samples_per_sec / off.samples_per_sec.max(1.0);
            PairOutcome { off, wal, ratio }
        })
        .collect()
}

fn best_pair(outcomes: Vec<PairOutcome>) -> PairOutcome {
    outcomes
        .into_iter()
        .max_by(|a, b| a.ratio.total_cmp(&b.ratio))
        .expect("at least one pair ran")
}

fn main() {
    let options = Options::from_env();
    let n = options.usize_or("n", 4096).or_exit();
    let ratio = options.u64_or("ratio", 1024).or_exit().max(1);
    let duration_ms = options.u64_or("duration-ms", 250).or_exit();
    let pairs = options.u64_or("pairs", 4).or_exit().max(1);
    let min_ratio = options.f64_or("min-ratio", 0.97).or_exit();
    let recovery_publishes = options
        .u64_or("recovery-publishes", 20_000)
        .or_exit()
        .max(1);

    println!(
        "durable_quick: n = {n}, {ratio} draws per publish, {duration_ms} ms windows, \
         fsync off (pricing the append, not the disk)\n"
    );

    // ---- Check 1: WAL overhead in the draw-dominated regime -------------
    println!("WAL overhead ({pairs} back-to-back off/wal pairs, best pair ratio):");
    let outcomes = run_pairs(n, ratio, duration_ms, pairs, 0);
    for outcome in &outcomes {
        println!(
            "  off {:>12.0} draws/s   wal {:>12.0} draws/s   ratio {:.4}",
            outcome.off.samples_per_sec, outcome.wal.samples_per_sec, outcome.ratio
        );
    }
    let mut best = best_pair(outcomes);
    let mut pairs_run = pairs;
    if best.ratio < min_ratio {
        println!(
            "  first round best ratio {:.4} below the gate; retrying wider",
            best.ratio
        );
        let retry = best_pair(run_pairs(n, ratio, duration_ms, pairs * 2, pairs));
        pairs_run += pairs * 2;
        if retry.ratio > best.ratio {
            best = retry;
        }
    }
    // The raw publish-path cost, no draw amortisation: a publish-only
    // storm (1 draw per publish) prices the append against the rebuild.
    let publish_only = best_pair(run_pairs(n, 1, duration_ms.min(100), 1, 1000));
    let publish_path_ratio =
        publish_only.wal.publishes_per_sec / publish_only.off.publishes_per_sec.max(1.0);
    println!(
        "  best pair ratio {:.4} (gate: >= {min_ratio:.2}); publish-only ratio {:.4} (unenforced)",
        best.ratio, publish_path_ratio
    );
    println!(
        "  durable arm logged {} records, {} bytes",
        best.wal.wal_records, best.wal.wal_bytes
    );

    // ---- Check 2: recovery speed ----------------------------------------
    let dir = ScratchDir::new("recovery");
    let wal_options = WalOptions {
        dir: dir.0.clone(),
        fsync: FsyncPolicy::Off,
        checkpoint_every: 0, // genesis checkpoint only: recovery replays the whole WAL
    };
    {
        let engine = SelectionEngine::new(
            (1..=n).map(|i| i as f64).collect(),
            arm_config(Durability::Wal(wal_options.clone())),
        )
        .expect("recovery writer");
        for round in 0..recovery_publishes {
            for i in 0..16u64 {
                let index = ((round * 16 + i) % n as u64) as usize;
                engine
                    .enqueue(index, 1.0 + ((round + i) % 251) as f64)
                    .expect("index in range");
            }
            engine.publish().expect("weights stay valid");
        }
    }
    let wal_mb = dir.bytes() as f64 / (1024.0 * 1024.0);
    let reopen_started = Instant::now();
    let recovered = SelectionEngine::new(
        (1..=n).map(|i| i as f64).collect(),
        arm_config(Durability::Wal(wal_options)),
    )
    .expect("recovery reopen");
    let recovery_ms = reopen_started.elapsed().as_secs_f64() * 1e3;
    let recovery_ms_per_mb = recovery_ms / wal_mb.max(1e-9);
    let recovered_ok = recovered.version() == recovery_publishes;
    let journaled_recovery = recovered
        .observability()
        .journal()
        .iter()
        .any(|entry| matches!(entry.event, EngineEvent::Recovered { .. }));
    println!("\nrecovery: {recovery_publishes} publishes, {wal_mb:.2} MB of WAL");
    println!(
        "  replayed to version {} in {recovery_ms:.1} ms ({recovery_ms_per_mb:.1} ms/MB)",
        recovered.version()
    );

    // ---- Verdict ---------------------------------------------------------
    let margins = vec![
        GateMargin::at_least("wal_overhead_ratio", best.ratio, min_ratio, true),
        GateMargin::at_least("publish_path_ratio", publish_path_ratio, 0.0, false),
        GateMargin::conformance(
            "durable_arm_logged_every_publish",
            best.wal.wal_records > 0 && best.wal.wal_bytes > 0,
            true,
        ),
        GateMargin::conformance("recovery_restores_last_version", recovered_ok, true),
        GateMargin::conformance("recovery_journaled", journaled_recovery, true),
        GateMargin::at_most("recovery_ms_per_mb", recovery_ms_per_mb, 10_000.0, false),
    ];
    print_margins(&margins);

    if options.contains("json") {
        let report = DurableReport {
            pairs_run,
            min_ratio,
            best_off_samples_per_sec: best.off.samples_per_sec,
            best_wal_samples_per_sec: best.wal.samples_per_sec,
            overhead_ratio: best.ratio,
            publish_path_ratio,
            wal_records: best.wal.wal_records,
            wal_bytes: best.wal.wal_bytes,
            recovery_publishes,
            recovery_wal_mb: wal_mb,
            recovery_ms,
            recovery_ms_per_mb,
            margins: margins.clone(),
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("report serialisation cannot fail")
        );
    }

    let mut failed = false;
    if best.ratio < min_ratio {
        eprintln!(
            "FAIL: durable draw throughput {:.4} of baseline (gate: >= {min_ratio})",
            best.ratio
        );
        failed = true;
    }
    if best.wal.wal_records == 0 || best.wal.wal_bytes == 0 {
        eprintln!("FAIL: the durable arm logged nothing");
        failed = true;
    }
    if !recovered_ok {
        eprintln!(
            "FAIL: recovery replayed to version {} (expected {recovery_publishes})",
            recovered.version()
        );
        failed = true;
    }
    if !journaled_recovery {
        eprintln!("FAIL: the recovered engine journaled no Recovered event");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("OK");
}
