//! Regenerates the paper's **Table I**: selection probabilities of the
//! roulette wheel selection algorithms with `f_i = i` for `0 ≤ i ≤ 9`.
//!
//! ```text
//! cargo run -p lrb-bench --release --bin table1 -- --trials 1000000 --seed 2024
//! ```
//!
//! The paper uses 10⁹ iterations; pass `--trials 1000000000` to match it
//! exactly (the default of 10⁶ already reproduces every entry to ~3 decimal
//! places). Pass `--json 1` to also print the machine-readable report.

use lrb_bench::cli::{Options, OrExit};
use lrb_bench::run_probability_experiment;
use lrb_core::parallel::{
    CrcwLogBiddingSelector, IndependentRouletteSelector, LogBiddingSelector,
    ParallelLogBiddingSelector,
};
use lrb_core::{Fitness, Selector};

fn main() {
    let options = Options::from_env();
    let trials = options.u64_or("trials", 1_000_000).or_exit();
    let seed = options.u64_or("seed", 2024).or_exit();

    let selectors: Vec<Box<dyn Selector>> = vec![
        Box::new(IndependentRouletteSelector),
        Box::new(LogBiddingSelector::default()),
        Box::new(ParallelLogBiddingSelector::default()),
        Box::new(CrcwLogBiddingSelector),
    ];
    // The CRCW-PRAM simulation is orders of magnitude slower per trial than
    // the direct implementations; give it a proportionally smaller budget so
    // the binary finishes promptly while still printing a meaningful column.
    let (fast, slow): (Vec<_>, Vec<_>) = selectors
        .into_iter()
        .partition(|s| s.name() != "log-bidding-crcw-pram");

    let fitness = Fitness::table1();
    let mut report = run_probability_experiment(
        "Table I (f_i = i, 0 <= i <= 9)",
        &fitness,
        &fast,
        trials,
        seed,
    );
    let crcw_trials = trials.min(20_000);
    let crcw_report = run_probability_experiment("crcw", &fitness, &slow, crcw_trials, seed);
    report.columns.extend(crcw_report.columns);

    println!("{}", report.render(10));
    println!(
        "(CRCW-PRAM column measured over {} simulated trials; all others over {} trials)",
        crcw_trials, trials
    );
    if options.contains("json") {
        println!("{}", report.to_json());
    }
}
