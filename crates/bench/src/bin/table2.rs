//! Regenerates the paper's **Table II**: selection probabilities of the first
//! 10 processors with `n = 100`, `f_0 = 1`, `f_1 = … = f_99 = 2`.
//!
//! ```text
//! cargo run -p lrb-bench --release --bin table2 -- --trials 1000000 --seed 2024
//! ```
//!
//! The headline of this table is index 0: its exact probability is
//! `1/199 ≈ 0.005025`, the logarithmic random bidding reproduces it, and the
//! independent roulette's analytic probability is `(1/2)⁹⁹/100 ≈ 1.58·10⁻³²`
//! — it never selects index 0 in any feasible number of trials.

use lrb_bench::cli::{Options, OrExit};
use lrb_bench::run_probability_experiment;
use lrb_core::parallel::{
    IndependentRouletteSelector, LogBiddingSelector, ParallelLogBiddingSelector,
};
use lrb_core::{Fitness, Selector};

fn main() {
    let options = Options::from_env();
    let trials = options.u64_or("trials", 1_000_000).or_exit();
    let seed = options.u64_or("seed", 2024).or_exit();

    let selectors: Vec<Box<dyn Selector>> = vec![
        Box::new(IndependentRouletteSelector),
        Box::new(LogBiddingSelector::default()),
        Box::new(ParallelLogBiddingSelector::default()),
    ];

    let fitness = Fitness::table2();
    let report = run_probability_experiment(
        "Table II (n = 100, f_0 = 1, f_1..99 = 2) — first 10 processors",
        &fitness,
        &selectors,
        trials,
        seed,
    );

    println!("{}", report.render(10));
    println!(
        "analytic independent-roulette probability of index 0: {:.6e} (paper: ~1.57772e-32)",
        report.independent_analytic[0]
    );
    if options.contains("json") {
        println!("{}", report.to_json());
    }
}
