//! Closed-loop reader/writer throughput driver for the `lrb-engine`
//! serving layer — the workload behind the `engine_quick` gate and the
//! `BENCH_engine.json` baseline.
//!
//! N reader threads sample as fast as they can, each against its own cloned
//! snapshot (re-snapshotting every few draws); writer threads pace
//! themselves off the global sample counter to hold a configured
//! update:sample ratio, enqueue coalescing weight overrides and publish
//! snapshots in batches. Because readers never lock anything after cloning
//! the `Arc`, sample throughput should scale with reader threads while the
//! writer publishes concurrently — the property the `engine_quick` gate
//! checks.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use lrb_engine::{BackendChoice, EngineConfig, SelectionEngine};
use lrb_rng::{Philox4x32, RandomSource};
use serde::Serialize;

/// Workload shape for one driver run.
#[derive(Debug, Clone, Copy)]
pub struct DriverConfig {
    /// Number of weight categories `n`.
    pub categories: usize,
    /// Reader (sampling) threads.
    pub readers: usize,
    /// Writer (updating/publishing) threads.
    pub writers: usize,
    /// Target update:sample ratio, expressed as samples per update
    /// (`16` means a 1:16 update:sample mix).
    pub samples_per_update: u64,
    /// Coalesced updates folded into each published snapshot.
    pub updates_per_publish: u64,
    /// Draws a reader serves from one snapshot before re-snapshotting.
    pub snapshot_every: u64,
    /// Wall-clock measurement window.
    pub duration_ms: u64,
    /// Category skew: `0.0` for uniform initial weights, `s > 0` for
    /// Zipf-distributed weights `w_i ∝ 1/(i+1)^s`.
    pub zipf_exponent: f64,
    /// Snapshot backend selection.
    pub backend: BackendChoice,
    /// Master seed for every thread's Philox stream.
    pub seed: u64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        Self {
            categories: 4096,
            readers: 1,
            writers: 1,
            samples_per_update: 16,
            updates_per_publish: 32,
            snapshot_every: 64,
            duration_ms: 250,
            zipf_exponent: 0.0,
            backend: BackendChoice::Auto,
            seed: 2024,
        }
    }
}

/// Measured outcome of one driver run (serialisable for
/// `BENCH_engine.json`).
#[derive(Debug, Clone, Serialize)]
pub struct DriverReport {
    /// Number of categories.
    pub categories: u64,
    /// Reader threads that ran.
    pub readers: u64,
    /// Writer threads that ran.
    pub writers: u64,
    /// Configured samples-per-update target.
    pub samples_per_update: u64,
    /// Zipf exponent of the initial weights (0 = uniform).
    pub zipf_exponent: f64,
    /// Backend of the final published snapshot.
    pub backend: String,
    /// Measured wall-clock seconds.
    pub duration_s: f64,
    /// Total draws served.
    pub samples: u64,
    /// Total weight overrides enqueued.
    pub updates: u64,
    /// Overrides coalesced away before publication.
    pub coalesced: u64,
    /// Snapshots published.
    pub publishes: u64,
    /// Draws per second across all readers.
    pub samples_per_sec: f64,
    /// Achieved samples-per-update ratio (≈ the configured target once the
    /// loop warms up).
    pub achieved_samples_per_update: f64,
}

/// Initial weights for a skew setting: uniform at `zipf_exponent == 0`,
/// otherwise the Zipf family `w_i = 1/(i+1)^s`.
pub fn initial_weights(categories: usize, zipf_exponent: f64) -> Vec<f64> {
    if zipf_exponent <= 0.0 {
        return vec![1.0; categories];
    }
    (0..categories)
        .map(|i| ((i + 1) as f64).powf(-zipf_exponent))
        .collect()
}

/// Run one closed-loop measurement. Spawns `readers + writers` scoped
/// threads for `duration_ms`, then reports aggregate throughput.
pub fn run_driver(config: &DriverConfig) -> DriverReport {
    assert!(config.categories > 0, "need at least one category");
    assert!(config.readers > 0, "need at least one reader");
    assert!(config.samples_per_update > 0, "ratio must be positive");
    let weights = initial_weights(config.categories, config.zipf_exponent);
    let engine = SelectionEngine::new(
        weights.clone(),
        EngineConfig {
            backend: config.backend,
            expected_draws_per_publish: (config.samples_per_update
                * config.updates_per_publish.max(1)) as f64,
        },
    )
    .expect("driver weights are valid");

    let stop = AtomicBool::new(false);
    let samples_total = AtomicU64::new(0);
    let updates_claimed = AtomicU64::new(0);
    let started = Instant::now();

    std::thread::scope(|scope| {
        for reader in 0..config.readers {
            let engine = &engine;
            let stop = &stop;
            let samples_total = &samples_total;
            scope.spawn(move || {
                let mut rng = Philox4x32::for_substream(config.seed, 1_000 + reader as u64);
                let mut sink = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let snapshot = engine.snapshot();
                    let mut served = 0u64;
                    for _ in 0..config.snapshot_every {
                        match snapshot.sample(&mut rng) {
                            Ok(index) => {
                                sink ^= index;
                                served += 1;
                            }
                            Err(_) => break, // all-zero interregnum
                        }
                    }
                    samples_total.fetch_add(served, Ordering::Relaxed);
                }
                std::hint::black_box(sink);
            });
        }
        for writer in 0..config.writers {
            let engine = &engine;
            let stop = &stop;
            let samples_total = &samples_total;
            let updates_claimed = &updates_claimed;
            let family = &weights;
            scope.spawn(move || {
                let mut rng = Philox4x32::for_substream(config.seed, 2_000_000 + writer as u64);
                let n = config.categories as u64;
                let mut since_publish = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Pace updates off the sample counter so the measured
                    // mix tracks the configured update:sample ratio.
                    let target = samples_total.load(Ordering::Relaxed) / config.samples_per_update;
                    if updates_claimed.load(Ordering::Relaxed) >= target {
                        if since_publish > 0 {
                            engine.publish().expect("driver weights stay valid");
                            since_publish = 0;
                        }
                        std::thread::yield_now();
                        continue;
                    }
                    updates_claimed.fetch_add(1, Ordering::Relaxed);
                    let index = rng.next_u64_below(n) as usize;
                    // New weights come from the same family (a uniformly
                    // chosen rank's weight), so the skew profile persists.
                    let new_weight = family[rng.next_u64_below(n) as usize];
                    engine.enqueue(index, new_weight).expect("index in range");
                    since_publish += 1;
                    if since_publish >= config.updates_per_publish.max(1) {
                        engine.publish().expect("driver weights stay valid");
                        since_publish = 0;
                    }
                }
                if since_publish > 0 {
                    engine.publish().expect("driver weights stay valid");
                }
            });
        }
        std::thread::sleep(Duration::from_millis(config.duration_ms));
        stop.store(true, Ordering::Relaxed);
    });

    let duration_s = started.elapsed().as_secs_f64();
    let samples = samples_total.load(Ordering::Relaxed);
    let stats = engine.stats();
    DriverReport {
        categories: config.categories as u64,
        readers: config.readers as u64,
        writers: config.writers as u64,
        samples_per_update: config.samples_per_update,
        zipf_exponent: config.zipf_exponent,
        backend: engine.snapshot().backend().name().to_string(),
        duration_s,
        samples,
        updates: stats.enqueued,
        coalesced: stats.coalesced,
        publishes: stats.publishes,
        samples_per_sec: samples as f64 / duration_s.max(1e-9),
        achieved_samples_per_update: samples as f64 / (stats.enqueued.max(1)) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_and_zipf_weights_have_the_right_shape() {
        let uniform = initial_weights(100, 0.0);
        assert_eq!(uniform, vec![1.0; 100]);
        let zipf = initial_weights(100, 1.0);
        assert_eq!(zipf.len(), 100);
        assert!((zipf[0] - 1.0).abs() < 1e-12);
        assert!((zipf[9] - 0.1).abs() < 1e-12);
        assert!(zipf.windows(2).all(|w| w[0] >= w[1]), "zipf is decreasing");
    }

    #[test]
    fn a_short_run_samples_and_publishes() {
        let report = run_driver(&DriverConfig {
            categories: 256,
            readers: 2,
            duration_ms: 60,
            samples_per_update: 4,
            updates_per_publish: 8,
            ..DriverConfig::default()
        });
        assert!(report.samples > 0, "no draws served");
        assert!(report.updates > 0, "writer never ran");
        assert!(report.publishes > 0, "nothing published");
        assert!(report.samples_per_sec > 0.0);
        assert_eq!(report.readers, 2);
        // The pacing loop keeps the achieved mix within a factor of the
        // target (exact convergence needs a longer window).
        assert!(
            report.achieved_samples_per_update >= 1.0,
            "more updates than samples at a 1:4 target: {report:?}"
        );
    }

    #[test]
    fn zipf_runs_use_the_skewed_family() {
        let report = run_driver(&DriverConfig {
            categories: 128,
            readers: 1,
            duration_ms: 40,
            zipf_exponent: 1.2,
            ..DriverConfig::default()
        });
        assert!(report.samples > 0);
        assert_eq!(report.zipf_exponent, 1.2);
    }
}
