//! Closed-loop reader/writer throughput driver for the `lrb-engine`
//! serving layer — the workload behind the `engine_quick` gate and the
//! `BENCH_engine.json` baseline.
//!
//! N reader threads sample as fast as they can, each against its own cloned
//! snapshot (re-snapshotting every few draws); writer threads pace
//! themselves off the global sample counter to hold a configured
//! update:sample ratio, enqueue coalescing weight overrides and publish
//! snapshots in batches. Because readers never lock anything after cloning
//! the `Arc`, sample throughput should scale with reader threads while the
//! writer publishes concurrently — the property the `engine_quick` gate
//! checks.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// One cache line per counter: readers bump private cells, the writer sums
/// them — mirroring the engine's sharded served counter so the measurement
/// harness itself does not introduce the bounce it is measuring.
#[repr(align(64))]
struct PaddedCounter(AtomicU64);

use lrb_engine::{BackendChoice, EngineConfig, SelectionEngine};
use lrb_obs::HistogramSnapshot;
use lrb_rng::{Philox4x32, RandomSource};
use lrb_stats::chi_square_gof;
use serde::Serialize;

/// Workload shape for one driver run.
#[derive(Debug, Clone, Copy)]
pub struct DriverConfig {
    /// Number of weight categories `n`.
    pub categories: usize,
    /// Reader (sampling) threads.
    pub readers: usize,
    /// Writer (updating/publishing) threads.
    pub writers: usize,
    /// Target update:sample ratio, expressed as samples per update
    /// (`16` means a 1:16 update:sample mix).
    pub samples_per_update: u64,
    /// Coalesced updates folded into each published snapshot.
    pub updates_per_publish: u64,
    /// Draws a reader serves from one snapshot before re-snapshotting.
    pub snapshot_every: u64,
    /// Wall-clock measurement window.
    pub duration_ms: u64,
    /// Category skew: `0.0` for uniform initial weights, `s > 0` for
    /// Zipf-distributed weights `w_i ∝ 1/(i+1)^s`.
    pub zipf_exponent: f64,
    /// Snapshot backend selection.
    pub backend: BackendChoice,
    /// Run the engine's startup micro-calibration and per-publish cost
    /// telemetry (host-measured constants instead of the unit model).
    pub calibrate: bool,
    /// Sampled reader timing: each reader thread times one in this many
    /// snapshot acquisitions (`0` disables, the uninstrumented baseline;
    /// see `EngineConfig::reader_timing_every`).
    pub reader_timing_every: u32,
    /// Master seed for every thread's Philox stream.
    pub seed: u64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        Self {
            categories: 4096,
            readers: 1,
            writers: 1,
            samples_per_update: 16,
            updates_per_publish: 32,
            snapshot_every: 64,
            duration_ms: 250,
            zipf_exponent: 0.0,
            backend: BackendChoice::Auto,
            calibrate: false,
            reader_timing_every: 0,
            seed: 2024,
        }
    }
}

/// Percentile summary of one engine latency histogram (serialisable for
/// `BENCH_engine.json`).
#[derive(Debug, Clone, Serialize)]
pub struct LatencySummary {
    /// Spans recorded.
    pub count: u64,
    /// Mean nanoseconds.
    pub mean_ns: f64,
    /// Median nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile nanoseconds.
    pub p999_ns: u64,
    /// Largest recorded span, nanoseconds.
    pub max_ns: u64,
}

impl LatencySummary {
    /// Summarise an observability histogram snapshot.
    pub fn from_snapshot(snapshot: &HistogramSnapshot) -> Self {
        Self {
            count: snapshot.count,
            mean_ns: snapshot.mean(),
            p50_ns: snapshot.p50(),
            p99_ns: snapshot.p99(),
            p999_ns: snapshot.p999(),
            max_ns: snapshot.max,
        }
    }
}

/// Measured outcome of one driver run (serialisable for
/// `BENCH_engine.json`).
#[derive(Debug, Clone, Serialize)]
pub struct DriverReport {
    /// Number of categories.
    pub categories: u64,
    /// Reader threads that ran.
    pub readers: u64,
    /// Writer threads that ran.
    pub writers: u64,
    /// Configured samples-per-update target.
    pub samples_per_update: u64,
    /// Zipf exponent of the initial weights (0 = uniform).
    pub zipf_exponent: f64,
    /// Backend of the final published snapshot.
    pub backend: String,
    /// Measured wall-clock seconds.
    pub duration_s: f64,
    /// Total draws served.
    pub samples: u64,
    /// Total weight overrides enqueued.
    pub updates: u64,
    /// Overrides coalesced away before publication.
    pub coalesced: u64,
    /// Snapshots published.
    pub publishes: u64,
    /// Publishes whose backend differed from the previous snapshot's.
    pub backend_switches: u64,
    /// Draws per second across all readers.
    pub samples_per_sec: f64,
    /// Achieved samples-per-update ratio (≈ the configured target once the
    /// loop warms up).
    pub achieved_samples_per_update: f64,
    /// Full `publish()` span distribution (nanoseconds).
    pub publish_latency: LatencySummary,
    /// Sampled per-draw reader latency (nanoseconds, amortised over each
    /// timed buffer; all-zero when `reader_timing_every` was 0).
    pub sample_latency: LatencySummary,
}

/// Initial weights for a skew setting: uniform at `zipf_exponent == 0`,
/// otherwise the Zipf family `w_i = 1/(i+1)^s`.
pub fn initial_weights(categories: usize, zipf_exponent: f64) -> Vec<f64> {
    if zipf_exponent <= 0.0 {
        return vec![1.0; categories];
    }
    (0..categories)
        .map(|i| ((i + 1) as f64).powf(-zipf_exponent))
        .collect()
}

/// Run one closed-loop measurement. Spawns `readers + writers` scoped
/// threads for `duration_ms`, then reports aggregate throughput.
pub fn run_driver(config: &DriverConfig) -> DriverReport {
    assert!(config.categories > 0, "need at least one category");
    assert!(config.readers > 0, "need at least one reader");
    assert!(config.samples_per_update > 0, "ratio must be positive");
    let weights = initial_weights(config.categories, config.zipf_exponent);
    let engine = SelectionEngine::new(
        weights.clone(),
        EngineConfig {
            backend: config.backend,
            expected_draws_per_publish: (config.samples_per_update
                * config.updates_per_publish.max(1)) as f64,
            calibrate: config.calibrate,
            reader_timing_every: config.reader_timing_every,
            ..EngineConfig::default()
        },
    )
    .expect("driver weights are valid");

    let stop = AtomicBool::new(false);
    let sample_cells: Vec<PaddedCounter> = (0..config.readers)
        .map(|_| PaddedCounter(AtomicU64::new(0)))
        .collect();
    let updates_claimed = AtomicU64::new(0);
    let started = Instant::now();

    std::thread::scope(|scope| {
        for (reader, samples_total) in sample_cells.iter().enumerate() {
            let engine = &engine;
            let stop = &stop;
            scope.spawn(move || {
                let mut rng = Philox4x32::for_substream(config.seed, 1_000 + reader as u64);
                let mut sink = 0usize;
                // One buffer per snapshot hold: readers fill it lock-free
                // through `SelectionEngine::read` — on the steady state
                // that is one relaxed generation probe, a thread-local
                // cache hit and the backend's tight-loop primitive, with
                // no shared RMW and no allocation per buffer.
                let mut buffer = vec![0usize; config.snapshot_every.max(1) as usize];
                while !stop.load(Ordering::Relaxed) {
                    match engine.read(|snapshot| snapshot.sample_into(&mut rng, &mut buffer)) {
                        Ok(()) => {
                            for &index in &buffer {
                                sink ^= index;
                            }
                            samples_total
                                .0
                                .fetch_add(buffer.len() as u64, Ordering::Relaxed);
                        }
                        Err(_) => std::thread::yield_now(), // all-zero interregnum
                    }
                }
                std::hint::black_box(sink);
            });
        }
        for writer in 0..config.writers {
            let engine = &engine;
            let stop = &stop;
            let sample_cells = &sample_cells;
            let updates_claimed = &updates_claimed;
            let family = &weights;
            scope.spawn(move || {
                let mut rng = Philox4x32::for_substream(config.seed, 2_000_000 + writer as u64);
                let n = config.categories as u64;
                let mut since_publish = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Pace updates off the sample counters so the measured
                    // mix tracks the configured update:sample ratio.
                    let sampled: u64 = sample_cells
                        .iter()
                        .map(|cell| cell.0.load(Ordering::Relaxed))
                        .sum();
                    let target = sampled / config.samples_per_update;
                    if updates_claimed.load(Ordering::Relaxed) >= target {
                        if since_publish > 0 {
                            engine.publish().expect("driver weights stay valid");
                            since_publish = 0;
                        }
                        std::thread::yield_now();
                        continue;
                    }
                    updates_claimed.fetch_add(1, Ordering::Relaxed);
                    let index = rng.next_u64_below(n) as usize;
                    // New weights come from the same family (a uniformly
                    // chosen rank's weight), so the skew profile persists.
                    let new_weight = family[rng.next_u64_below(n) as usize];
                    engine.enqueue(index, new_weight).expect("index in range");
                    since_publish += 1;
                    if since_publish >= config.updates_per_publish.max(1) {
                        engine.publish().expect("driver weights stay valid");
                        since_publish = 0;
                    }
                }
                if since_publish > 0 {
                    engine.publish().expect("driver weights stay valid");
                }
            });
        }
        std::thread::sleep(Duration::from_millis(config.duration_ms));
        stop.store(true, Ordering::Relaxed);
    });

    let duration_s = started.elapsed().as_secs_f64();
    let samples: u64 = sample_cells
        .iter()
        .map(|cell| cell.0.load(Ordering::Relaxed))
        .sum();
    let stats = engine.stats();
    let obs = engine.observability();
    DriverReport {
        categories: config.categories as u64,
        readers: config.readers as u64,
        writers: config.writers as u64,
        samples_per_update: config.samples_per_update,
        zipf_exponent: config.zipf_exponent,
        backend: engine.snapshot().backend().to_string(),
        duration_s,
        samples,
        updates: stats.enqueued,
        coalesced: stats.coalesced,
        publishes: stats.publishes,
        backend_switches: stats.backend_switches,
        samples_per_sec: samples as f64 / duration_s.max(1e-9),
        achieved_samples_per_update: samples as f64 / (stats.enqueued.max(1)) as f64,
        publish_latency: LatencySummary::from_snapshot(&obs.publish_latency()),
        sample_latency: LatencySummary::from_snapshot(&obs.reader_draw_latency()),
    }
}

/// Shape of the deterministic skew-shifting scenario behind the adaptive
/// `engine_quick` gate.
#[derive(Debug, Clone, Copy)]
pub struct SkewShiftConfig {
    /// Number of weight categories `n`.
    pub categories: usize,
    /// Conformance draws served (and chi-square-tested) per phase.
    pub trials: u64,
    /// Spike publishes in the write-heavy phase (each publishes a handful
    /// of overrides and serves no draws, so the observed draw rate decays).
    pub spike_publishes: u64,
    /// Master seed for the per-phase conformance batches.
    pub seed: u64,
    /// Whether the engine measures real per-op costs (host-calibrated
    /// constants) or scores the closed-form model at unit cost.
    pub calibrate: bool,
}

impl Default for SkewShiftConfig {
    fn default() -> Self {
        Self {
            categories: 4096,
            trials: 120_000,
            // Enough zero-draw publishes that the draws-per-publish EWMA
            // (alpha 0.2, seeded at `trials` by the uniform phase) decays
            // to where the arg-min is build-cost-dominated. The EWMA after
            // k spike publishes is `trials · 0.8^(k-1)`; the switch off the
            // alias table needs it below ~0.3 draws (where even stochastic
            // acceptance's degenerate-skew draw term stops masking its
            // build advantage over the three-pass alias build), first true
            // near k = 62. Running to 80 leaves the EWMA ≈ 0.005, so the
            // final publishes demand a switch with an ~2x margin on the
            // measured constants — the gate must not hinge on knife-edge
            // build-time ratios that drift with ambient CPU state.
            spike_publishes: 80,
            seed: 2024,
            calibrate: true,
        }
    }
}

/// One phase of the skew-shift scenario: which backend served it and how
/// the served draws conformed to the exact distribution.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseReport {
    /// Phase name (`uniform`, `spike`, `recover`).
    pub phase: String,
    /// Backend of the snapshot that served this phase's draws.
    pub backend: String,
    /// Conformance draws served.
    pub trials: u64,
    /// Chi-square goodness-of-fit p-value of the served draws against the
    /// snapshot's exact probabilities (best of two seeds, so an unlucky
    /// seed cannot fail a healthy sampler; a genuinely biased one fails
    /// both).
    pub chi_square_p: f64,
}

/// One recorded backend switch (mirror of `lrb_engine::BackendSwitch`,
/// serialisable for `BENCH_engine.json`).
#[derive(Debug, Clone, Serialize)]
pub struct SwitchReport {
    /// Version that introduced the new backend.
    pub version: u64,
    /// Previous backend.
    pub from: String,
    /// New backend.
    pub to: String,
    /// Draws the outgoing snapshot had served.
    pub draws_served: u64,
    /// Whether the decider moved mid-stream (no pending writes).
    pub mid_stream: bool,
}

/// Calibrated cost constants of one backend (mirror of
/// `lrb_engine::CostConstants`, serialisable).
#[derive(Debug, Clone, Serialize)]
pub struct CostConstantsReport {
    /// Backend name.
    pub backend: String,
    /// EWMA nanoseconds per abstract build op.
    pub build_ns_per_op: f64,
    /// EWMA nanoseconds per abstract draw op.
    pub draw_ns_per_op: f64,
    /// EWMA nanoseconds per abstract incremental-patch op.
    pub patch_ns_per_op: f64,
}

/// Outcome of [`run_skew_shift`].
#[derive(Debug, Clone, Serialize)]
pub struct SkewShiftReport {
    /// Per-phase backends and conformance.
    pub phases: Vec<PhaseReport>,
    /// Every backend switch the decider made, oldest first.
    pub switches: Vec<SwitchReport>,
    /// The decider's cost constants at the end of the run.
    pub cost_constants: Vec<CostConstantsReport>,
    /// The observed draws-per-publish EWMA at the end of the run.
    pub observed_draws_per_publish: f64,
}

/// Serve one conformance phase: deterministic batch draws against the
/// current snapshot, chi-square-tested against its exact probabilities.
fn conformance_phase(engine: &SelectionEngine, phase: &str, trials: u64, seed: u64) -> PhaseReport {
    let snapshot = engine.snapshot();
    let probs = snapshot.probabilities();
    // Best of two seeds: the gate should flag a biased sampler (which fails
    // every seed), not an unlucky 1%-tail draw.
    let p = [seed, seed ^ 0x9E37_79B9]
        .iter()
        .map(|&s| {
            let counts = snapshot
                .batch_counts(trials, s)
                .expect("phase weights have positive mass");
            chi_square_gof(&counts, &probs).p_value
        })
        .fold(0.0f64, f64::max);
    PhaseReport {
        phase: phase.to_string(),
        backend: snapshot.backend().to_string(),
        trials,
        chi_square_p: p,
    }
}

/// Run the skew-shifting workload that the adaptive gate checks: a
/// draw-heavy uniform phase, a write-heavy phase that spikes a handful of
/// categories to degenerate skew while the observed draw rate decays, a
/// mid-stream rebalance opportunity once draws resume, and a draw-heavy
/// uniform recovery. The decider must switch backends at least once, and
/// every phase's served draws must stay chi-square-consistent with the
/// exact probabilities — conformance is maintained **across** the
/// switches.
pub fn run_skew_shift(config: &SkewShiftConfig) -> SkewShiftReport {
    let n = config.categories;
    assert!(n >= 16, "the scenario needs a non-trivial category count");
    let engine = SelectionEngine::new(
        vec![1.0; n],
        EngineConfig {
            backend: BackendChoice::Auto,
            expected_draws_per_publish: config.trials as f64,
            calibrate: config.calibrate,
            ..EngineConfig::default()
        },
    )
    .expect("scenario weights are valid");

    let mut phases = Vec::new();

    // Phase 1 — draw-heavy, uniform: cheap-draw backends win.
    phases.push(conformance_phase(
        &engine,
        "uniform",
        config.trials,
        config.seed,
    ));

    // Phase 2 — write-heavy skew shift: eight fixed categories spike to
    // `n/2`-fold weight (skew `≈ n/10`, far past where stochastic
    // acceptance pays) while publishes serve no draws, so the
    // draws-per-publish EWMA collapses and cheap builds win. The spike set
    // is small and the weight moderate so every base category's expected
    // conformance count stays at or above the chi-square validity floor.
    // Then serve conformance draws from whatever backend the decider
    // landed on.
    let spike_weight = (n / 2) as f64;
    let mut spike_rng = Philox4x32::for_substream(config.seed, 7_000);
    let spike_set: Vec<usize> = (0..8)
        .map(|_| spike_rng.next_u64_below(n as u64) as usize)
        .collect();
    for step in 0..config.spike_publishes {
        for lane in 0..2 {
            let index = spike_set[((2 * step + lane) % 8) as usize];
            // Jitter keeps every publish a real weight change.
            let weight = spike_weight + (step % 5) as f64;
            engine.enqueue(index, weight).expect("index in range");
        }
        engine.publish().expect("spike weights stay valid");
    }
    phases.push(conformance_phase(
        &engine,
        "spike",
        config.trials,
        config.seed + 1,
    ));

    // Mid-stream opportunity: the spike phase's conformance draws all hit
    // the current snapshot with no publish in sight — exactly the drift the
    // sunk-cost decider exists for.
    let _ = engine
        .maybe_rebalance()
        .expect("rebalance cannot fail here");

    // Phase 3 — recovery: restore uniform weights and serve draw-heavy
    // windows again; the observed rate climbs back and cheap draws win.
    let restore: Vec<(usize, f64)> = (0..n).map(|i| (i, 1.0)).collect();
    engine.enqueue_many(&restore).expect("restore is in range");
    engine.publish().expect("restore weights are valid");
    phases.push(conformance_phase(
        &engine,
        "recover",
        config.trials,
        config.seed + 2,
    ));

    SkewShiftReport {
        phases,
        switches: engine
            .switch_history()
            .into_iter()
            .map(|s| SwitchReport {
                version: s.version,
                from: s.from.to_string(),
                to: s.to.to_string(),
                draws_served: s.draws_served,
                mid_stream: s.mid_stream,
            })
            .collect(),
        cost_constants: engine
            .cost_constants()
            .into_iter()
            .map(|c| CostConstantsReport {
                backend: c.backend.to_string(),
                build_ns_per_op: c.build_ns_per_op,
                draw_ns_per_op: c.draw_ns_per_op,
                patch_ns_per_op: c.patch_ns_per_op,
            })
            .collect(),
        observed_draws_per_publish: engine.observed_draws_per_publish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_and_zipf_weights_have_the_right_shape() {
        let uniform = initial_weights(100, 0.0);
        assert_eq!(uniform, vec![1.0; 100]);
        let zipf = initial_weights(100, 1.0);
        assert_eq!(zipf.len(), 100);
        assert!((zipf[0] - 1.0).abs() < 1e-12);
        assert!((zipf[9] - 0.1).abs() < 1e-12);
        assert!(zipf.windows(2).all(|w| w[0] >= w[1]), "zipf is decreasing");
    }

    #[test]
    fn a_short_run_samples_and_publishes() {
        let report = run_driver(&DriverConfig {
            categories: 256,
            readers: 2,
            duration_ms: 60,
            samples_per_update: 4,
            updates_per_publish: 8,
            ..DriverConfig::default()
        });
        assert!(report.samples > 0, "no draws served");
        assert!(report.updates > 0, "writer never ran");
        assert!(report.publishes > 0, "nothing published");
        assert!(report.samples_per_sec > 0.0);
        assert_eq!(report.readers, 2);
        // The pacing loop keeps the achieved mix within a factor of the
        // target (exact convergence needs a longer window).
        assert!(
            report.achieved_samples_per_update >= 1.0,
            "more updates than samples at a 1:4 target: {report:?}"
        );
    }

    #[test]
    fn skew_shift_scenario_switches_backends_and_stays_conformant() {
        // Unit-cost decider for determinism in tests; the engine_quick gate
        // runs the same scenario calibrated.
        let report = run_skew_shift(&SkewShiftConfig {
            categories: 1024,
            trials: 30_000,
            spike_publishes: 25,
            seed: 7,
            calibrate: false,
        });
        assert_eq!(report.phases.len(), 3);
        assert!(
            !report.switches.is_empty(),
            "the decider never switched: {report:?}"
        );
        for phase in &report.phases {
            assert!(
                phase.chi_square_p > 0.01,
                "{} phase lost conformance: p = {}",
                phase.phase,
                phase.chi_square_p
            );
        }
        assert_eq!(report.cost_constants.len(), 3);
        // Unit costs: the constants stay at the 1 ns/op seed.
        assert!(report
            .cost_constants
            .iter()
            .all(|c| c.build_ns_per_op == 1.0 && c.draw_ns_per_op == 1.0));
    }

    #[test]
    fn instrumented_runs_record_latency_distributions() {
        let report = run_driver(&DriverConfig {
            categories: 256,
            duration_ms: 60,
            samples_per_update: 4,
            updates_per_publish: 8,
            reader_timing_every: 2,
            ..DriverConfig::default()
        });
        // The publish histogram and the publish counter are bumped together
        // under the pending lock, so they agree exactly.
        assert_eq!(report.publish_latency.count, report.publishes);
        assert!(report.publish_latency.p50_ns > 0, "publish spans take time");
        assert!(report.publish_latency.p999_ns >= report.publish_latency.p50_ns);
        assert!(
            report.sample_latency.count > 0,
            "1-in-2 reader timing recorded nothing: {report:?}"
        );
        assert!(report.sample_latency.max_ns >= report.sample_latency.p50_ns);

        // The uninstrumented baseline keeps the reader histogram empty.
        let baseline = run_driver(&DriverConfig {
            categories: 256,
            duration_ms: 40,
            ..DriverConfig::default()
        });
        assert_eq!(baseline.sample_latency.count, 0);
    }

    #[test]
    fn zipf_runs_use_the_skewed_family() {
        let report = run_driver(&DriverConfig {
            categories: 128,
            readers: 1,
            duration_ms: 40,
            zipf_exponent: 1.2,
            ..DriverConfig::default()
        });
        assert!(report.samples > 0);
        assert_eq!(report.zipf_exponent, 1.2);
    }
}
