//! The Monte-Carlo probability experiment behind Table I and Table II.
//!
//! For a fitness workload the experiment runs `trials` independent selections
//! with each configured selector, counts the selection frequencies, and puts
//! them side by side with the exact `F_i` and (for the independent roulette)
//! the analytic probability it actually follows. The paper uses 10⁹
//! iterations and a Mersenne Twister; we default to 10⁶ (configurable up to
//! the paper's budget) with the same generator family, which already pins
//! every table entry to about three decimal places.

use lrb_core::analysis::independent_roulette_probabilities;
use lrb_core::{Fitness, Selector};
use lrb_rng::{MersenneTwister64, SeedableSource};
use lrb_stats::EmpiricalDistribution;
use serde::{Deserialize, Serialize};

/// Empirical results for one selector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelectorColumn {
    /// The selector's reporting name.
    pub name: String,
    /// Whether the selector is supposed to follow `F_i` exactly.
    pub exact: bool,
    /// Empirical selection frequencies per index.
    pub frequencies: Vec<f64>,
    /// Largest absolute deviation from the exact `F_i`.
    pub max_abs_deviation: f64,
    /// Total-variation distance from the exact distribution.
    pub tv_distance: f64,
    /// Chi-square goodness-of-fit p-value against the exact distribution.
    pub p_value: f64,
}

/// A complete probability table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProbabilityReport {
    /// Human-readable name of the workload ("Table I", "Table II", …).
    pub workload: String,
    /// The fitness values of the workload.
    pub fitness: Vec<f64>,
    /// Number of Monte-Carlo trials per selector.
    pub trials: u64,
    /// The exact target probabilities `F_i`.
    pub exact: Vec<f64>,
    /// The closed-form probabilities of the independent roulette.
    pub independent_analytic: Vec<f64>,
    /// One column per selector.
    pub columns: Vec<SelectorColumn>,
}

/// Run the probability experiment.
///
/// `selectors` are run one after another, each with its own Mersenne Twister
/// stream derived from `seed`, so adding or removing a selector does not
/// perturb the others' results.
pub fn run_probability_experiment(
    workload: &str,
    fitness: &Fitness,
    selectors: &[Box<dyn Selector>],
    trials: u64,
    seed: u64,
) -> ProbabilityReport {
    let exact = fitness.probabilities();
    let independent_analytic = independent_roulette_probabilities(fitness);

    let columns = selectors
        .iter()
        .enumerate()
        .map(|(which, selector)| {
            let mut rng = MersenneTwister64::seed_from_u64(seed ^ ((which as u64 + 1) << 32));
            let mut dist = EmpiricalDistribution::new(fitness.len());
            for _ in 0..trials {
                match selector.select(fitness, &mut rng) {
                    Ok(index) => dist.record(index),
                    Err(_) => dist.record_none(),
                }
            }
            // A degenerate all-zero workload has no target distribution to
            // test against; report p = 1 (nothing to reject) in that case.
            let p_value = if fitness.is_all_zero() {
                1.0
            } else {
                dist.goodness_of_fit(&exact).p_value
            };
            SelectorColumn {
                name: selector.name().to_string(),
                exact: selector.is_exact(),
                frequencies: dist.frequencies(),
                max_abs_deviation: dist.max_abs_deviation(&exact),
                tv_distance: dist.tv_distance(&exact),
                p_value,
            }
        })
        .collect();

    ProbabilityReport {
        workload: workload.to_string(),
        fitness: fitness.values().to_vec(),
        trials,
        exact,
        independent_analytic,
        columns,
    }
}

impl ProbabilityReport {
    /// Render the report as a paper-style text table, showing the first
    /// `max_rows` indices (Table II prints only the first 10 of 100).
    pub fn render(&self, max_rows: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} — {} trials per selector\n",
            self.workload, self.trials
        ));
        out.push_str(&format!(
            "{:>4} {:>10} {:>12} {:>12}",
            "i", "f_i", "F_i (exact)", "indep.(analytic)"
        ));
        for column in &self.columns {
            out.push_str(&format!(" {:>28}", column.name));
        }
        out.push('\n');
        let rows = self.fitness.len().min(max_rows);
        for i in 0..rows {
            out.push_str(&format!(
                "{:>4} {:>10.4} {:>12.6} {:>12.6}",
                i, self.fitness[i], self.exact[i], self.independent_analytic[i]
            ));
            for column in &self.columns {
                out.push_str(&format!(" {:>28.6}", column.frequencies[i]));
            }
            out.push('\n');
        }
        out.push_str("summary:\n");
        for column in &self.columns {
            out.push_str(&format!(
                "  {:<28} max|Δ|={:.6}  TV={:.6}  chi2 p={:.4}  ({})\n",
                column.name,
                column.max_abs_deviation,
                column.tv_distance,
                column.p_value,
                if column.exact {
                    "exact by design"
                } else {
                    "biased by design"
                }
            ));
        }
        out
    }

    /// Serialise the report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialisation cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_core::parallel::{IndependentRouletteSelector, LogBiddingSelector};

    fn selectors() -> Vec<Box<dyn Selector>> {
        vec![
            Box::new(IndependentRouletteSelector),
            Box::new(LogBiddingSelector::default()),
        ]
    }

    #[test]
    fn table1_shape_is_reproduced_even_with_modest_trials() {
        let report =
            run_probability_experiment("Table I", &Fitness::table1(), &selectors(), 60_000, 1);
        assert_eq!(report.columns.len(), 2);
        let independent = &report.columns[0];
        let logarithmic = &report.columns[1];
        // Logarithmic bidding matches F_i closely; independent roulette does not.
        assert!(logarithmic.max_abs_deviation < 0.01);
        assert!(independent.max_abs_deviation > 0.1);
        assert!(logarithmic.p_value > 0.001);
        assert!(independent.p_value < 1e-6);
        // Index 9's exact probability is 0.2; the independent roulette gives ~0.39.
        assert!((report.exact[9] - 0.2).abs() < 1e-12);
        assert!(independent.frequencies[9] > 0.35);
        // The analytic column matches the empirical independent column.
        for i in 0..10 {
            assert!(
                (report.independent_analytic[i] - independent.frequencies[i]).abs() < 0.01,
                "index {i}"
            );
        }
    }

    #[test]
    fn table2_shape_is_reproduced() {
        let report =
            run_probability_experiment("Table II", &Fitness::table2(), &selectors(), 40_000, 2);
        let independent = &report.columns[0];
        let logarithmic = &report.columns[1];
        // Index 0: exact 1/199, log-bidding close to it, independent never.
        assert!((report.exact[0] - 1.0 / 199.0).abs() < 1e-9);
        assert_eq!(independent.frequencies[0], 0.0);
        assert!((logarithmic.frequencies[0] - 1.0 / 199.0).abs() < 0.003);
        assert!(report.independent_analytic[0] < 1e-30);
    }

    #[test]
    fn render_contains_the_headline_numbers() {
        let report =
            run_probability_experiment("Table I", &Fitness::table1(), &selectors(), 5_000, 3);
        let text = report.render(10);
        assert!(text.contains("Table I"));
        assert!(text.contains("independent-roulette-sequential"));
        assert!(text.contains("log-bidding-sequential"));
        assert!(text.contains("max|Δ|"));
        // One line per index plus headers/summary.
        assert!(text.lines().count() >= 13);
    }

    #[test]
    fn render_truncates_to_max_rows() {
        let report =
            run_probability_experiment("Table II", &Fitness::table2(), &selectors(), 1_000, 4);
        let text = report.render(10);
        // Row for index 9 present, index 10 absent.
        assert!(text.lines().any(|l| l.trim_start().starts_with("9 ")));
        assert!(!text.lines().any(|l| l.trim_start().starts_with("10 ")));
    }

    #[test]
    fn json_round_trip() {
        let report =
            run_probability_experiment("Table I", &Fitness::table1(), &selectors(), 1_000, 5);
        let json = report.to_json();
        let parsed: ProbabilityReport = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.workload, "Table I");
        assert_eq!(parsed.columns.len(), 2);
        assert_eq!(parsed.trials, 1_000);
    }

    #[test]
    fn all_zero_trials_record_nothing_but_do_not_crash() {
        let fitness = Fitness::new(vec![0.0, 0.0, 0.0]).unwrap();
        let report = run_probability_experiment("degenerate", &fitness, &selectors(), 100, 6);
        for column in &report.columns {
            assert!(column.frequencies.iter().all(|&f| f == 0.0));
        }
    }
}
