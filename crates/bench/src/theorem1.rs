//! The Theorem 1 experiment: measure the expected number of while-loop
//! iterations of the CRCW logarithmic bidding as a function of `k`, the
//! number of non-zero fitness values, and confirm the `O(1)` shared-memory
//! footprint.
//!
//! The paper proves the expectation is `O(log k)` (at most `2⌈log₂ k⌉`
//! success-halving rounds plus lower-order terms). The experiment sweeps `k`
//! over powers of two inside a fixed processor count `n`, runs many
//! independent selections per point, and reports mean / p95 / max iteration
//! counts together with the theorem's `2⌈log₂ k⌉` reference line.

use lrb_core::parallel::CrcwLogBiddingSelector;
use lrb_core::Fitness;
use lrb_rng::{MersenneTwister64, SeedableSource};
use lrb_stats::Summary;
use serde::{Deserialize, Serialize};

/// Measurements for one value of `k`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Theorem1Row {
    /// Total number of processors (fitness entries).
    pub n: usize,
    /// Number of non-zero fitness entries.
    pub k: usize,
    /// Number of independent selections measured.
    pub trials: usize,
    /// Mean while-loop iterations.
    pub mean_iterations: f64,
    /// 95th-percentile iterations.
    pub p95_iterations: f64,
    /// Maximum iterations observed.
    pub max_iterations: f64,
    /// The paper's reference bound `2·⌈log₂ k⌉` (1 for `k = 1`).
    pub reference_bound: f64,
    /// Largest shared-memory footprint observed (must stay at 2 cells).
    pub max_memory_cells: usize,
}

/// The full sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Theorem1Report {
    /// One row per `k` value.
    pub rows: Vec<Theorem1Row>,
}

/// Run the sweep: `k` takes powers of two from 1 up to `max_k` (inclusive if
/// it is itself a power of two), inside fitness vectors of length `n`.
pub fn run_theorem1_experiment(n: usize, max_k: usize, trials: usize, seed: u64) -> Theorem1Report {
    assert!(n >= 1 && max_k >= 1 && max_k <= n && trials >= 1);
    let selector = CrcwLogBiddingSelector;
    let mut rows = Vec::new();

    let mut k = 1usize;
    while k <= max_k {
        let fitness = Fitness::sparse(n, k, 1.0).expect("sparse workload is valid");
        let mut rng = MersenneTwister64::seed_from_u64(seed ^ (k as u64));
        let mut iterations = Vec::with_capacity(trials);
        let mut max_memory = 0usize;
        for _ in 0..trials {
            let outcome = selector
                .select_with_stats(&fitness, &mut rng)
                .expect("k >= 1 so selection succeeds");
            iterations.push(outcome.while_iterations as f64);
            max_memory = max_memory.max(outcome.cost.memory_footprint);
            debug_assert!(fitness.values()[outcome.selected.unwrap()] > 0.0);
        }
        let summary = Summary::of(&iterations);
        let reference_bound = if k == 1 {
            1.0
        } else {
            2.0 * (k as f64).log2().ceil()
        };
        rows.push(Theorem1Row {
            n,
            k,
            trials,
            mean_iterations: summary.mean,
            p95_iterations: summary.p95,
            max_iterations: summary.max,
            reference_bound,
            max_memory_cells: max_memory,
        });
        k *= 2;
    }

    Theorem1Report { rows }
}

impl Theorem1Report {
    /// Render as a text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>8} {:>8} {:>8} {:>12} {:>12} {:>12} {:>14} {:>10}\n",
            "n",
            "k",
            "trials",
            "mean iters",
            "p95 iters",
            "max iters",
            "2*ceil(log2 k)",
            "mem cells"
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "{:>8} {:>8} {:>8} {:>12.3} {:>12.1} {:>12.0} {:>14.0} {:>10}\n",
                row.n,
                row.k,
                row.trials,
                row.mean_iterations,
                row.p95_iterations,
                row.max_iterations,
                row.reference_bound,
                row.max_memory_cells
            ));
        }
        out
    }

    /// Serialise as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialisation cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_one_row_per_power_of_two() {
        let report = run_theorem1_experiment(64, 32, 10, 1);
        let ks: Vec<usize> = report.rows.iter().map(|r| r.k).collect();
        assert_eq!(ks, vec![1, 2, 4, 8, 16, 32]);
        assert!(report.rows.iter().all(|r| r.n == 64));
    }

    #[test]
    fn memory_footprint_is_always_two_cells() {
        let report = run_theorem1_experiment(128, 64, 15, 2);
        assert!(report.rows.iter().all(|r| r.max_memory_cells == 2));
    }

    #[test]
    fn k_equals_one_always_takes_exactly_one_iteration() {
        let report = run_theorem1_experiment(256, 1, 20, 3);
        let row = &report.rows[0];
        assert_eq!(row.mean_iterations, 1.0);
        assert_eq!(row.max_iterations, 1.0);
    }

    #[test]
    fn mean_iterations_grow_logarithmically_not_linearly() {
        let report = run_theorem1_experiment(512, 256, 25, 4);
        let last = report.rows.last().unwrap();
        // With k = 256, a linear-growth algorithm would need ~128 expected
        // iterations; the logarithmic one stays near log2(256) = 8 and below
        // the paper's 2·log2(k) = 16 reference.
        assert!(
            last.mean_iterations < last.reference_bound,
            "mean {} exceeds the reference bound {}",
            last.mean_iterations,
            last.reference_bound
        );
        assert!(last.mean_iterations < 20.0);
        // Monotone-ish growth in k: the k=256 mean exceeds the k=2 mean.
        assert!(last.mean_iterations > report.rows[1].mean_iterations);
    }

    #[test]
    fn iterations_never_exceed_k() {
        // The champion bid strictly increases each iteration, so the count is
        // bounded by the number of distinct active bids, i.e. by k.
        let report = run_theorem1_experiment(128, 32, 20, 5);
        for row in &report.rows {
            assert!(
                row.max_iterations <= row.k as f64,
                "k={} saw {} iterations",
                row.k,
                row.max_iterations
            );
        }
    }

    #[test]
    fn render_and_json_round_trip() {
        let report = run_theorem1_experiment(32, 8, 5, 6);
        let text = report.render();
        assert!(text.contains("mean iters"));
        assert!(text.lines().count() >= 5);
        let parsed: Theorem1Report = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(parsed.rows.len(), report.rows.len());
    }
}
