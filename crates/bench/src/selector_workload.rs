//! Single-selection throughput driver for the one-shot selectors — the
//! workload behind the `selector_quick` gate and the `BENCH_selectors.json`
//! baseline.
//!
//! The interesting comparison is constant factors at fixed `n`: the
//! block-Philox bid kernel (`ParallelLogBiddingSelector`, stream layout v2)
//! against the legacy per-index substream path
//! (`PerIndexLogBiddingSelector`, layout v1). Both are exact, both do `Θ(n)`
//! work per selection; the kernel's win is purely the purged constants (one
//! key schedule per chunk, two uniforms per counter bump, lazy `ln`).

use std::time::Instant;

use lrb_core::{Fitness, Selector};
use lrb_rng::Philox4x32;
use serde::Serialize;

/// One measured selector at one problem size (serialisable for
/// `BENCH_selectors.json`).
#[derive(Debug, Clone, Serialize)]
pub struct SelectorReport {
    /// Selector name (its [`Selector::name`]).
    pub selector: String,
    /// Fitness vector length.
    pub n: u64,
    /// Selections timed.
    pub draws: u64,
    /// Wall-clock seconds for all draws.
    pub duration_s: f64,
    /// Selections per second.
    pub selects_per_sec: f64,
    /// Nanoseconds per selected index.
    pub ns_per_select: f64,
}

/// The mildly varied fitness family used by every selector measurement:
/// weights `(i · 7) mod 13 + 1`, so no backend-friendly structure, no zero
/// weights, and the same vector for every selector at a given `n`.
pub fn bench_fitness(n: usize) -> Fitness {
    Fitness::new((0..n).map(|i| ((i * 7) % 13 + 1) as f64).collect()).expect("weights are valid")
}

/// Time `draws` one-shot selections as a [`Selector::select`] loop — one
/// master draw and one full kernel pass per selection. This is the per-draw
/// baseline the fused batch path is gated against (it is exactly what
/// `select_into` compiled to before the fused kernel existed).
pub fn bench_selector_per_draw(
    selector: &dyn Selector,
    fitness: &Fitness,
    draws: u64,
    seed: u64,
) -> SelectorReport {
    let mut rng = Philox4x32::for_substream(seed, 0);
    let mut out = vec![0usize; draws as usize];
    let _ = selector
        .select(fitness, &mut rng)
        .expect("bench fitness has positive mass");
    let started = Instant::now();
    for slot in out.iter_mut() {
        *slot = selector
            .select(fitness, &mut rng)
            .expect("bench fitness has positive mass");
    }
    let duration_s = started.elapsed().as_secs_f64();
    std::hint::black_box(&out);
    SelectorReport {
        selector: selector.name().to_string(),
        n: fitness.len() as u64,
        draws,
        duration_s,
        selects_per_sec: draws as f64 / duration_s.max(1e-9),
        ns_per_select: duration_s * 1e9 / draws.max(1) as f64,
    }
}

/// Time `draws` one-shot selections through `selector.select_into` (one
/// buffer fill — the tight-loop entry point callers should use), driven by
/// a deterministic Philox stream.
pub fn bench_selector(
    selector: &dyn Selector,
    fitness: &Fitness,
    draws: u64,
    seed: u64,
) -> SelectorReport {
    let mut rng = Philox4x32::for_substream(seed, 0);
    let mut out = vec![0usize; draws as usize];
    // Warm-up: touch the fitness vector and fault in the buffer.
    let warm = out.len().min(1);
    selector
        .select_into(fitness, &mut rng, &mut out[..warm])
        .expect("bench fitness has positive mass");
    let started = Instant::now();
    selector
        .select_into(fitness, &mut rng, &mut out)
        .expect("bench fitness has positive mass");
    let duration_s = started.elapsed().as_secs_f64();
    std::hint::black_box(&out);
    SelectorReport {
        selector: selector.name().to_string(),
        n: fitness.len() as u64,
        draws,
        duration_s,
        selects_per_sec: draws as f64 / duration_s.max(1e-9),
        ns_per_select: duration_s * 1e9 / draws.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_core::parallel::{ParallelLogBiddingSelector, PerIndexLogBiddingSelector};

    #[test]
    fn reports_measure_positive_throughput() {
        let fitness = bench_fitness(512);
        for selector in [
            &ParallelLogBiddingSelector::default() as &dyn Selector,
            &PerIndexLogBiddingSelector::default(),
        ] {
            let report = bench_selector(selector, &fitness, 50, 7);
            assert_eq!(report.n, 512);
            assert_eq!(report.draws, 50);
            assert!(report.selects_per_sec > 0.0, "{report:?}");
            assert!(report.ns_per_select > 0.0);
        }
    }

    #[test]
    fn bench_fitness_has_full_support() {
        let fitness = bench_fitness(100);
        assert_eq!(fitness.len(), 100);
        assert!(fitness.values().iter().all(|&w| w >= 1.0));
    }
}
