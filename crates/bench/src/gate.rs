//! Self-describing gate outcomes for the quick perf-smoke binaries.
//!
//! Every `*_quick` gate used to print its measured value and threshold in
//! free text only; a flaky gate then left no machine-readable trace of
//! *how close* it was. [`GateMargin`] records the measured value, the
//! threshold, the headroom ratio and whether the gate was enforced on this
//! host, and every quick binary embeds a `margins` array in its
//! `BENCH_*.json` report — so a regression shows up as a shrinking margin
//! long before it becomes a red build, and a flake investigation starts
//! from numbers instead of CI log archaeology.

use serde::Serialize;

/// One gate's measured-vs-threshold outcome.
#[derive(Debug, Clone, Serialize)]
pub struct GateMargin {
    /// Which gate (stable identifier, e.g. `"fenwick_patch_speedup"`).
    pub gate: String,
    /// The measured value.
    pub measured: f64,
    /// The pass threshold.
    pub threshold: f64,
    /// Headroom as a ratio: > 1.0 means the gate passed with that much
    /// slack (2.0 = twice the required bar), 1.0 is exactly at the bar.
    pub margin: f64,
    /// Whether the gate is enforced (exit code) on this host, or advisory
    /// (e.g. a scaling gate on a host with too few cores).
    pub enforced: bool,
    /// Whether the measured value clears the threshold.
    pub passed: bool,
}

impl GateMargin {
    /// A gate that passes when `measured >= threshold` (speedups, scaling
    /// factors). `margin` is `measured / threshold`.
    pub fn at_least(gate: &str, measured: f64, threshold: f64, enforced: bool) -> Self {
        Self {
            gate: gate.to_string(),
            measured,
            threshold,
            margin: if threshold > 0.0 {
                measured / threshold
            } else {
                f64::INFINITY
            },
            enforced,
            passed: measured >= threshold,
        }
    }

    /// A gate that passes when `measured <= threshold` (latency bounds,
    /// overhead ratios). `margin` is `threshold / measured`.
    pub fn at_most(gate: &str, measured: f64, threshold: f64, enforced: bool) -> Self {
        Self {
            gate: gate.to_string(),
            measured,
            threshold,
            margin: if measured > 0.0 {
                threshold / measured
            } else {
                f64::INFINITY
            },
            enforced,
            passed: measured <= threshold,
        }
    }

    /// A boolean conformance gate (chi-square consistency and similar):
    /// `measured`/`threshold` encode pass as 1.0 vs 1.0.
    pub fn conformance(gate: &str, passed: bool, enforced: bool) -> Self {
        Self {
            gate: gate.to_string(),
            measured: if passed { 1.0 } else { 0.0 },
            threshold: 1.0,
            margin: if passed { 1.0 } else { 0.0 },
            enforced,
            passed,
        }
    }

    /// One human line for the gate summary block.
    pub fn describe(&self) -> String {
        format!(
            "  gate {:<28} measured {:>12.4} vs {:>10.4}  margin {:>6.2}x  [{}{}]",
            self.gate,
            self.measured,
            self.threshold,
            self.margin,
            if self.passed { "pass" } else { "FAIL" },
            if self.enforced {
                ", enforced"
            } else {
                ", advisory"
            },
        )
    }
}

/// Print the standard margin block (one line per gate).
pub fn print_margins(margins: &[GateMargin]) {
    println!("\ngate margins (measured vs threshold):");
    for margin in margins {
        println!("{}", margin.describe());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_least_margins_are_headroom_ratios() {
        let margin = GateMargin::at_least("speedup", 6.0, 5.0, true);
        assert!(margin.passed && margin.enforced);
        assert!((margin.margin - 1.2).abs() < 1e-12);
        let failing = GateMargin::at_least("speedup", 4.0, 5.0, true);
        assert!(!failing.passed);
        assert!(failing.margin < 1.0);
    }

    #[test]
    fn at_most_margins_invert_the_ratio() {
        let margin = GateMargin::at_most("p99_us", 500.0, 5_000.0, true);
        assert!(margin.passed);
        assert!((margin.margin - 10.0).abs() < 1e-12);
        assert!(!GateMargin::at_most("p99_us", 6_000.0, 5_000.0, true).passed);
    }

    #[test]
    fn conformance_is_binary() {
        assert!(GateMargin::conformance("chi2", true, true).passed);
        let failing = GateMargin::conformance("chi2", false, true);
        assert!(!failing.passed);
        assert_eq!(failing.margin, 0.0);
    }
}
