//! A minimal `--key value` argument parser for the experiment binaries
//! (no external CLI dependency needed for a handful of flags).
//!
//! Malformed input is reported through [`lrb_core::error::ConfigError`]
//! rather than panicking, so library callers get a typed error and the
//! binaries exit with a clean message (see [`OrExit`]).

use std::collections::HashMap;

use lrb_core::error::ConfigError;

/// Parsed command-line options.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Options {
    values: HashMap<String, String>,
}

impl Options {
    /// Parse `--key value` pairs from an iterator of arguments (the program
    /// name should already be stripped). Unknown keys are collected verbatim;
    /// a trailing key without a value is an error.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ConfigError> {
        let mut values = HashMap::new();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let key = arg
                .strip_prefix("--")
                .ok_or(ConfigError::NotAFlag {
                    argument: arg.clone(),
                })?
                .to_string();
            let value = iter
                .next()
                .ok_or_else(|| ConfigError::MissingValue { key: key.clone() })?;
            values.insert(key, value);
        }
        Ok(Self { values })
    }

    /// Parse the process arguments (skipping the program name), exiting with
    /// a message on malformed input.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(options) => options,
            Err(error) => exit_with(&error),
        }
    }

    /// Look up an integer flag, falling back to `default`. A present but
    /// non-integer value is a [`ConfigError::InvalidValue`].
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, ConfigError> {
        match self.values.get(key) {
            None => Ok(default),
            Some(value) => value.parse::<u64>().map_err(|_| ConfigError::InvalidValue {
                key: key.to_string(),
                value: value.clone(),
                expected: "an unsigned integer",
            }),
        }
    }

    /// Look up a usize flag, falling back to `default`.
    pub fn usize_or(&self, key: &str, default: usize) -> Result<usize, ConfigError> {
        self.u64_or(key, default as u64).map(|v| v as usize)
    }

    /// Look up a floating-point flag, falling back to `default`. Rejects
    /// non-finite values (a NaN bound or budget is always a typo).
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, ConfigError> {
        match self.values.get(key) {
            None => Ok(default),
            Some(value) => match value.parse::<f64>() {
                Ok(parsed) if parsed.is_finite() => Ok(parsed),
                _ => Err(ConfigError::InvalidValue {
                    key: key.to_string(),
                    value: value.clone(),
                    expected: "a finite number",
                }),
            },
        }
    }

    /// Whether a flag was supplied at all.
    pub fn contains(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }
}

/// Print a configuration error and terminate with the conventional usage
/// exit code.
fn exit_with(error: &ConfigError) -> ! {
    eprintln!("error: {error}");
    eprintln!("usage: --key value pairs only (e.g. --trials 1000000 --seed 7)");
    std::process::exit(2);
}

/// Binary-side sugar: unwrap a flag lookup or exit(2) with the message.
/// Library callers should match on the [`ConfigError`] instead.
pub trait OrExit<T> {
    /// Return the value or terminate the process with a clean message.
    fn or_exit(self) -> T;
}

impl<T> OrExit<T> for Result<T, ConfigError> {
    fn or_exit(self) -> T {
        match self {
            Ok(value) => value,
            Err(error) => exit_with(&error),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, ConfigError> {
        Options::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_key_value_pairs() {
        let o = parse(&["--trials", "1000", "--seed", "7"]).unwrap();
        assert_eq!(o.u64_or("trials", 5).unwrap(), 1000);
        assert_eq!(o.u64_or("seed", 0).unwrap(), 7);
        assert_eq!(o.u64_or("missing", 42).unwrap(), 42);
        assert!(o.contains("trials"));
        assert!(!o.contains("missing"));
    }

    #[test]
    fn empty_arguments_are_fine() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.usize_or("trials", 9).unwrap(), 9);
        assert_eq!(o.f64_or("ratio", 0.5).unwrap(), 0.5);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert_eq!(
            parse(&["--trials"]),
            Err(ConfigError::MissingValue {
                key: "trials".into()
            })
        );
    }

    #[test]
    fn non_flag_argument_is_an_error() {
        assert_eq!(
            parse(&["trials", "7"]),
            Err(ConfigError::NotAFlag {
                argument: "trials".into()
            })
        );
    }

    #[test]
    fn non_integer_value_is_a_typed_error_not_a_panic() {
        let o = parse(&["--trials", "abc"]).unwrap();
        assert_eq!(
            o.u64_or("trials", 1),
            Err(ConfigError::InvalidValue {
                key: "trials".into(),
                value: "abc".into(),
                expected: "an unsigned integer",
            })
        );
        // A negative count is rejected by the same path.
        let o = parse(&["--trials", "-3"]).unwrap();
        assert!(o.u64_or("trials", 1).is_err());
        // The error carries enough to render a useful message.
        let message = o.u64_or("trials", 1).unwrap_err().to_string();
        assert!(message.contains("--trials"));
        assert!(message.contains("-3"));
    }

    #[test]
    fn float_flags_parse_and_reject_non_finite() {
        let o = parse(&["--ratio", "2.5", "--bad", "nan"]).unwrap();
        assert_eq!(o.f64_or("ratio", 1.0).unwrap(), 2.5);
        assert!(o.f64_or("bad", 1.0).is_err());
    }
}
