//! A minimal `--key value` argument parser for the experiment binaries
//! (no external CLI dependency needed for three flags).

use std::collections::HashMap;

/// Parsed command-line options.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Options {
    values: HashMap<String, String>,
}

impl Options {
    /// Parse `--key value` pairs from an iterator of arguments (the program
    /// name should already be stripped). Unknown keys are collected verbatim;
    /// a trailing key without a value is an error.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut values = HashMap::new();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --key, got '{arg}'"))?
                .to_string();
            let value = iter
                .next()
                .ok_or_else(|| format!("missing value for --{key}"))?;
            values.insert(key, value);
        }
        Ok(Self { values })
    }

    /// Parse the process arguments (skipping the program name), exiting with
    /// a message on malformed input.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(options) => options,
            Err(message) => {
                eprintln!("error: {message}");
                eprintln!("usage: --trials N --seed N (all optional)");
                std::process::exit(2);
            }
        }
    }

    /// Look up an integer flag, falling back to `default`.
    pub fn u64_or(&self, key: &str, default: u64) -> u64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse::<u64>()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer, got '{v}'"))
            })
            .unwrap_or(default)
    }

    /// Look up a usize flag, falling back to `default`.
    pub fn usize_or(&self, key: &str, default: usize) -> usize {
        self.u64_or(key, default as u64) as usize
    }

    /// Whether a flag was supplied at all.
    pub fn contains(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        Options::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_key_value_pairs() {
        let o = parse(&["--trials", "1000", "--seed", "7"]).unwrap();
        assert_eq!(o.u64_or("trials", 5), 1000);
        assert_eq!(o.u64_or("seed", 0), 7);
        assert_eq!(o.u64_or("missing", 42), 42);
        assert!(o.contains("trials"));
        assert!(!o.contains("missing"));
    }

    #[test]
    fn empty_arguments_are_fine() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.usize_or("trials", 9), 9);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&["--trials"]).is_err());
    }

    #[test]
    fn non_flag_argument_is_an_error() {
        assert!(parse(&["trials", "7"]).is_err());
    }

    #[test]
    #[should_panic]
    fn non_integer_value_panics_on_lookup() {
        let o = parse(&["--trials", "abc"]).unwrap();
        o.u64_or("trials", 1);
    }
}
