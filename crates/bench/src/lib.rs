//! # lrb-bench — the experiment harness
//!
//! Everything needed to regenerate the paper's evaluation:
//!
//! * [`probability_table`] — runs the Monte-Carlo probability experiments
//!   behind **Table I** and **Table II**: for a fitness workload and a trial
//!   budget, it tabulates the exact `F_i`, the analytic independent-roulette
//!   probability, and the empirical frequencies of the independent roulette
//!   and the logarithmic random bidding.
//! * [`theorem1`] — measures the while-loop iteration count and shared-memory
//!   footprint of the CRCW logarithmic bidding as a function of `k`, the
//!   number of non-zero fitness values (the quantity bounded by Theorem 1).
//! * [`cli`] — a tiny argument parser shared by the three experiment
//!   binaries (`table1`, `table2`, `theorem1`).
//! * [`dynamic_workload`] — the shared mutate-and-sample churn workload
//!   behind the dynamic benches, the `dynamic_quick` gate and the
//!   `dynamic_updates` example.
//! * [`engine_workload`] — the closed-loop reader/writer throughput driver
//!   for the `lrb-engine` serving layer, behind the `engine_quick` gate and
//!   the `BENCH_engine.json` baseline.
//! * [`service_workload`] — the **open-loop** socket load driver for the
//!   `lrb-service` sharded selection service, behind the `service_quick`
//!   gate and the `BENCH_service.json` baseline. Latency is measured from
//!   each request's *scheduled* issue time, so queueing delay is charged to
//!   the service instead of being hidden by coordinated omission.
//! * [`gate`] — the [`GateMargin`](gate::GateMargin) record every quick
//!   binary embeds in its `BENCH_*.json`: measured value, threshold and
//!   headroom ratio per gate, so flake investigations start from numbers.
//!
//! The Criterion benches under `benches/` cover the supplementary wall-clock
//! comparisons and the ablations listed in `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod dynamic_workload;
pub mod engine_workload;
pub mod gate;
pub mod probability_table;
pub mod publish_workload;
pub mod selector_workload;
pub mod service_workload;
pub mod theorem1;

pub use probability_table::{run_probability_experiment, ProbabilityReport, SelectorColumn};
pub use theorem1::{run_theorem1_experiment, Theorem1Report, Theorem1Row};
