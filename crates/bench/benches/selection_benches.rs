//! Criterion benches: the supplementary wall-clock measurements and the
//! ablations called out in DESIGN.md.
//!
//! Groups:
//! * `table_workloads`       — one selection on the Table I / Table II
//!   workloads, every algorithm (the wall-clock
//!   companion to the probability tables).
//! * `selection_throughput`  — one selection as a function of `n` for the
//!   paper's three algorithms plus the sequential
//!   ground truth.
//! * `sparse_scaling`        — one selection as a function of `k` at fixed
//!   `n` (the regime Theorem 1 targets), including
//!   the CRCW-PRAM simulation's iteration behaviour.
//! * `bid_formula`           — ablation: `ln(u)/f` vs Ziggurat exponential vs
//!   Gumbel keys.
//! * `rng_cost`              — ablation: MT19937-64 vs xoshiro256++ vs Philox
//!   as the uniform source.
//! * `prepared_samplers`     — alias method and CDF binary search, the
//!   "sample many times from a fixed distribution"
//!   baselines.
//! * `aco_construction`      — one ant tour construction per selection
//!   strategy (the end-to-end application cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use lrb_aco::{construct_tour, AntParams, PheromoneMatrix, TspInstance};
use lrb_core::parallel::{
    CrcwLogBiddingSelector, GumbelMaxSelector, IndependentRouletteSelector, LogBiddingSelector,
    ParallelLogBiddingSelector, PrefixSumSelector,
};
use lrb_core::sequential::{AliasSampler, CdfSampler, LinearScanSelector};
use lrb_core::{Fitness, PreparedSampler, Selector};
use lrb_rng::exponential::ExponentialSampler;
use lrb_rng::{
    standard_exponential, MersenneTwister64, Philox4x32, SeedableSource, Xoshiro256PlusPlus,
};

fn quick(c: &mut Criterion) -> &mut Criterion {
    c
}

fn configure_group<'a, M: criterion::measurement::Measurement>(
    group: &mut criterion::BenchmarkGroup<'a, M>,
) {
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
}

fn bench_table_workloads(c: &mut Criterion) {
    let mut group = quick(c).benchmark_group("table_workloads");
    configure_group(&mut group);
    let workloads = [("table1", Fitness::table1()), ("table2", Fitness::table2())];
    let selectors: Vec<Box<dyn Selector>> = vec![
        Box::new(LinearScanSelector),
        Box::new(IndependentRouletteSelector),
        Box::new(LogBiddingSelector::default()),
        Box::new(PrefixSumSelector::default()),
    ];
    for (name, fitness) in &workloads {
        for selector in &selectors {
            let mut rng = MersenneTwister64::seed_from_u64(1);
            group.bench_with_input(
                BenchmarkId::new(selector.name(), name),
                fitness,
                |b, fitness| {
                    b.iter(|| selector.select(fitness, &mut rng).unwrap());
                },
            );
        }
    }
    group.finish();
}

fn bench_selection_throughput(c: &mut Criterion) {
    let mut group = quick(c).benchmark_group("selection_throughput");
    configure_group(&mut group);
    for &n in &[100usize, 1_000, 10_000, 100_000] {
        let fitness = Fitness::from_fn(n, |i| ((i % 97) + 1) as f64).unwrap();
        let selectors: Vec<Box<dyn Selector>> = vec![
            Box::new(LinearScanSelector),
            Box::new(IndependentRouletteSelector),
            Box::new(LogBiddingSelector::default()),
            Box::new(ParallelLogBiddingSelector::default()),
            Box::new(PrefixSumSelector::default()),
        ];
        for selector in &selectors {
            let mut rng = MersenneTwister64::seed_from_u64(2);
            group.bench_with_input(BenchmarkId::new(selector.name(), n), &fitness, |b, f| {
                b.iter(|| selector.select(f, &mut rng).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_sparse_scaling(c: &mut Criterion) {
    let mut group = quick(c).benchmark_group("sparse_scaling");
    configure_group(&mut group);
    let n = 4_096usize;
    for &k in &[1usize, 16, 256, 4_096] {
        let fitness = Fitness::sparse(n, k, 1.0).unwrap();
        let selectors: Vec<Box<dyn Selector>> = vec![
            Box::new(LogBiddingSelector::default()),
            Box::new(PrefixSumSelector::default()),
            Box::new(LinearScanSelector),
        ];
        for selector in &selectors {
            let mut rng = MersenneTwister64::seed_from_u64(3);
            group.bench_with_input(
                BenchmarkId::new(selector.name(), format!("n{n}_k{k}")),
                &fitness,
                |b, f| {
                    b.iter(|| selector.select(f, &mut rng).unwrap());
                },
            );
        }
        // The CRCW-PRAM simulation is far slower per selection (it simulates
        // every processor); bench it only at small k so the group stays fast,
        // reporting the simulated-machine cost trend rather than raw speed.
        if k <= 16 {
            let selector = CrcwLogBiddingSelector;
            let mut rng = MersenneTwister64::seed_from_u64(3);
            group.bench_with_input(
                BenchmarkId::new("log-bidding-crcw-pram-sim", format!("n{n}_k{k}")),
                &fitness,
                |b, f| {
                    b.iter(|| selector.select(f, &mut rng).unwrap());
                },
            );
        }
    }
    group.finish();
}

fn bench_bid_formula(c: &mut Criterion) {
    let mut group = quick(c).benchmark_group("bid_formula");
    configure_group(&mut group);
    let fitness = Fitness::from_fn(10_000, |i| (i % 53 + 1) as f64).unwrap();

    let inverse = LogBiddingSelector {
        sampler: ExponentialSampler::InverseCdf,
    };
    let ziggurat = LogBiddingSelector {
        sampler: ExponentialSampler::Ziggurat,
    };
    let gumbel = GumbelMaxSelector;

    let mut rng = MersenneTwister64::seed_from_u64(4);
    group.bench_function("ln_u_over_f", |b| {
        b.iter(|| inverse.select(&fitness, &mut rng).unwrap())
    });
    group.bench_function("ziggurat_exponential", |b| {
        b.iter(|| ziggurat.select(&fitness, &mut rng).unwrap())
    });
    group.bench_function("gumbel_keys", |b| {
        b.iter(|| gumbel.select(&fitness, &mut rng).unwrap())
    });
    group.finish();
}

fn bench_rng_cost(c: &mut Criterion) {
    let mut group = quick(c).benchmark_group("rng_cost");
    configure_group(&mut group);
    let draws = 10_000usize;

    let mut mt = MersenneTwister64::seed_from_u64(5);
    group.bench_function("mt19937_64_exponential", |b| {
        b.iter(|| {
            (0..draws)
                .map(|_| standard_exponential(&mut mt))
                .sum::<f64>()
        })
    });
    let mut xo = Xoshiro256PlusPlus::seed_from_u64(5);
    group.bench_function("xoshiro256pp_exponential", |b| {
        b.iter(|| {
            (0..draws)
                .map(|_| standard_exponential(&mut xo))
                .sum::<f64>()
        })
    });
    let mut philox = Philox4x32::seed_from_u64(5);
    group.bench_function("philox4x32_exponential", |b| {
        b.iter(|| {
            (0..draws)
                .map(|_| standard_exponential(&mut philox))
                .sum::<f64>()
        })
    });
    group.finish();
}

fn bench_prepared_samplers(c: &mut Criterion) {
    let mut group = quick(c).benchmark_group("prepared_samplers");
    configure_group(&mut group);
    let fitness = Fitness::from_fn(10_000, |i| ((i * 31) % 101 + 1) as f64).unwrap();
    let alias = AliasSampler::new(&fitness).unwrap();
    let cdf = CdfSampler::new(&fitness).unwrap();

    let mut rng = MersenneTwister64::seed_from_u64(6);
    group.bench_function("alias_sample", |b| b.iter(|| alias.sample(&mut rng)));
    group.bench_function("cdf_binary_search_sample", |b| {
        b.iter(|| cdf.sample(&mut rng))
    });
    group.bench_function("alias_build", |b| {
        b.iter(|| AliasSampler::new(&fitness).unwrap())
    });
    group.bench_function("cdf_build", |b| {
        b.iter(|| CdfSampler::new(&fitness).unwrap())
    });
    group.finish();
}

fn bench_aco_construction(c: &mut Criterion) {
    let mut group = quick(c).benchmark_group("aco_construction");
    configure_group(&mut group);
    let instance = TspInstance::random_euclidean(100, 7);
    let pheromone = PheromoneMatrix::new(100, 1.0);
    let params = AntParams::default();

    let selectors: Vec<Box<dyn Selector>> = vec![
        Box::new(LinearScanSelector),
        Box::new(LogBiddingSelector::default()),
        Box::new(IndependentRouletteSelector),
    ];
    for selector in &selectors {
        let mut rng = MersenneTwister64::seed_from_u64(8);
        group.bench_function(BenchmarkId::new("tour_100_cities", selector.name()), |b| {
            b.iter(|| {
                construct_tour(
                    &instance,
                    &pheromone,
                    &params,
                    selector.as_ref(),
                    0,
                    &mut rng,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_argmax_strategies(c: &mut Criterion) {
    // Ablation: the three PRAM maximum-finding strategies on the same bid
    // vector (simulated machine cost, so the numbers compare algorithmic
    // structure rather than silicon).
    let mut group = quick(c).benchmark_group("argmax_strategies");
    configure_group(&mut group);
    let n = 256usize;
    let bids: Vec<f64> = {
        let mut rng = MersenneTwister64::seed_from_u64(9);
        let fitness = Fitness::uniform(n, 1.0).unwrap();
        fitness
            .values()
            .iter()
            .map(|&f| lrb_rng::exponential::log_bid(&mut rng, f))
            .collect()
    };
    group.bench_function("crcw_bid_loop", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            lrb_pram::algorithms::bid_max(&bids, seed).unwrap().unwrap()
        })
    });
    group.bench_function("erew_reduction_tree", |b| {
        b.iter(|| lrb_pram::algorithms::reduce_max(&bids).unwrap())
    });
    group.bench_function("crcw_n_squared_constant_time", |b| {
        b.iter(|| {
            lrb_pram::algorithms::constant_time_max(&bids)
                .unwrap()
                .unwrap()
        })
    });
    group.finish();
}

fn bench_zero_fitness_handling(c: &mut Criterion) {
    // Ablation: handle sparsity by (a) letting zero-fitness processors sit
    // out of the bid loop (the paper's approach), or (b) compacting the live
    // indices first and selecting over the dense array.
    let mut group = quick(c).benchmark_group("zero_fitness_handling");
    configure_group(&mut group);
    let n = 2_048usize;
    for &k in &[4usize, 64, 1_024] {
        let fitness = Fitness::sparse(n, k, 1.0).unwrap();
        let values = fitness.values().to_vec();
        group.bench_with_input(
            BenchmarkId::new("bid_loop_ignores_zeros", k),
            &fitness,
            |b, f| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    lrb_pram::algorithms::log_bidding_selection(f.values(), seed).unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("compact_then_select", k),
            &values,
            |b, values| {
                let mut rng = MersenneTwister64::seed_from_u64(13);
                b.iter(|| {
                    let compaction = lrb_pram::algorithms::compact_non_zero(values).unwrap();
                    let dense: Vec<f64> =
                        compaction.live_indices.iter().map(|&i| values[i]).collect();
                    let dense_fitness = Fitness::new(dense).unwrap();
                    let winner = LinearScanSelector.select(&dense_fitness, &mut rng).unwrap();
                    compaction.live_indices[winner]
                })
            },
        );
    }
    group.finish();
}

fn bench_batch_selection(c: &mut Criterion) {
    // Throughput of the trial-parallel batch API used by the table harness.
    let mut group = quick(c).benchmark_group("batch_selection");
    configure_group(&mut group);
    let fitness = Fitness::table1();
    for &trials in &[1_000u64, 10_000] {
        group.bench_with_input(
            BenchmarkId::new("log_bidding_batch", trials),
            &trials,
            |b, &trials| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    lrb_core::batch::batch_select_counts(
                        &LogBiddingSelector::default(),
                        &fitness,
                        trials,
                        seed,
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_table_workloads,
    bench_selection_throughput,
    bench_sparse_scaling,
    bench_bid_formula,
    bench_rng_cost,
    bench_prepared_samplers,
    bench_aco_construction,
    bench_argmax_strategies,
    bench_zero_fitness_handling,
    bench_batch_selection
);
criterion_main!(benches);
