//! Benches for the dynamic-selection engines (`lrb-dynamic`): sweep the
//! category count `n` over powers of two and the update:sample ratio over
//! {sample-only, 1:1, update-heavy}, comparing
//!
//! * `fenwick` — [`FenwickSampler`], `O(log n)` update and draw,
//! * `alias-rebuild` — [`RebuildingAliasSampler`], `O(1)` draws but an
//!   `O(n)` rebuild after any update,
//! * `sharded-arena` — [`ShardedArena`] with 16 shards,
//! * `one-shot` — the paper's `LogBiddingSelector` re-scanning the
//!   fitness vector per draw (no auxiliary structure).
//!
//! The headline expectation (asserted by the `dynamic_quick` binary): at
//! `n = 2^16` with a 1:1 update:sample ratio the Fenwick engine beats the
//! alias rebuild by well over an order of magnitude, because the alias
//! sampler pays `O(n)` per round.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use lrb_bench::dynamic_workload::{mixed_round, workload};
use lrb_core::parallel::LogBiddingSelector;
use lrb_core::{Fitness, Selector};
use lrb_dynamic::{FenwickSampler, RebuildingAliasSampler, ShardedArena};
use lrb_rng::{MersenneTwister64, RandomSource, SeedableSource};

fn bench_dynamic_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic_engines");
    group.warm_up_time(Duration::from_millis(150));
    group.measurement_time(Duration::from_millis(400));

    // 2^8 … 2^20; alias-rebuild is skipped at the largest sizes × heavy
    // ratios where a single measurement would take minutes.
    for &n in &[1usize << 8, 1 << 12, 1 << 16, 1 << 20] {
        for &updates in &[0usize, 1, 8] {
            let label = format!("n{n}_u{updates}");

            let mut fenwick = FenwickSampler::from_weights(workload(n)).unwrap();
            let mut rng = MersenneTwister64::seed_from_u64(1);
            group.bench_with_input(BenchmarkId::new("fenwick", &label), &(), |b, _| {
                b.iter(|| mixed_round(&mut fenwick, updates, &mut rng))
            });

            let mut arena = ShardedArena::from_weights(workload(n), 16).unwrap();
            let mut rng = MersenneTwister64::seed_from_u64(2);
            group.bench_with_input(BenchmarkId::new("sharded-arena", &label), &(), |b, _| {
                b.iter(|| mixed_round(&mut arena, updates, &mut rng))
            });

            // The O(n)-per-update engines get too slow to time in-bench at
            // n = 2^20 with updates in the loop.
            if n <= 1 << 16 || updates == 0 {
                let mut alias = RebuildingAliasSampler::from_weights(workload(n)).unwrap();
                let mut rng = MersenneTwister64::seed_from_u64(3);
                group.bench_with_input(BenchmarkId::new("alias-rebuild", &label), &(), |b, _| {
                    b.iter(|| mixed_round(&mut alias, updates, &mut rng))
                });
            }

            if n <= 1 << 16 {
                // One-shot baseline: mutate the raw weights, then run the
                // paper's log-bidding scan over a revalidated vector.
                let mut weights = workload(n);
                let selector = LogBiddingSelector::default();
                let mut rng = MersenneTwister64::seed_from_u64(4);
                group.bench_with_input(BenchmarkId::new("one-shot", &label), &(), |b, _| {
                    b.iter(|| {
                        for _ in 0..updates {
                            let index = (rng.next_u64() % n as u64) as usize;
                            weights[index] = (rng.next_u64() % 100) as f64 + 1.0;
                        }
                        let fitness = Fitness::new(weights.clone()).unwrap();
                        selector.select(&fitness, &mut rng).unwrap()
                    })
                });
            }
        }
    }
    group.finish();
}

fn bench_batch_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic_batch");
    group.warm_up_time(Duration::from_millis(150));
    group.measurement_time(Duration::from_millis(400));
    let n = 1usize << 14;
    let arena = ShardedArena::from_weights(workload(n), 16).unwrap();
    let fenwick = FenwickSampler::from_weights(workload(n)).unwrap();
    for &trials in &[1_000u64, 10_000] {
        group.bench_with_input(
            BenchmarkId::new("arena_batch", trials),
            &trials,
            |b, &trials| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    lrb_dynamic::batch_sample_counts(&arena, trials, seed).unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fenwick_batch", trials),
            &trials,
            |b, &trials| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    lrb_dynamic::batch_sample_counts(&fenwick, trials, seed).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dynamic_engines, bench_batch_sampling);
criterion_main!(benches);
