//! The length-prefixed binary wire protocol, shared by server and client.
//!
//! Every frame in either direction is
//!
//! ```text
//! [u32 LE length][body: length bytes]
//! ```
//!
//! A **request** body is `[u8 opcode][payload]`; a **response** body is
//! `[u8 status][payload]` with status `0` = OK and `1` = error (payload
//! `[u8 code][UTF-8 message]`). All integers are little-endian; `f64`
//! values travel as their IEEE-754 bit patterns in `u64`.
//!
//! | opcode | request payload | OK response payload |
//! |---|---|---|
//! | `0x01` DRAW | — | `u64` global index |
//! | `0x02` DRAW_BATCH | `u32` count | `u32` count, then `count × u64` indices |
//! | `0x03` UPDATE | `u64` index, `f64` weight | — |
//! | `0x04` UPDATE_BATCH | `u32` count, then `count × (u64, f64)` | — |
//! | `0x05` SCALE | `f64` factor | — |
//! | `0x06` PUBLISH | — | `u32` shards, then `shards × u64` versions |
//! | `0x07` TOTALS | — | `u32` shards, then `shards × f64` totals |
//! | `0x08` METRICS | — | UTF-8 JSON metrics document |

use std::io::{self, Read, Write};

use lrb_core::SelectionError;

use crate::error::ServiceError;

/// Largest accepted frame body (requests and responses), a hard cap on
/// per-connection allocation. 4 MiB fits the largest legal batch with room
/// for the metrics document.
pub const MAX_FRAME: usize = 4 << 20;

/// Largest accepted `DRAW_BATCH` / `UPDATE_BATCH` count.
pub const MAX_BATCH: u32 = 1 << 16;

/// Request opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpCode {
    /// One draw (server-side RNG), coalesced by the aggregator.
    Draw = 0x01,
    /// `count` draws in one response.
    DrawBatch = 0x02,
    /// One weight override.
    Update = 0x03,
    /// Many weight overrides, all-or-nothing.
    UpdateBatch = 0x04,
    /// One multiplicative scale over every category.
    Scale = 0x05,
    /// Publish every shard's pending batch.
    Publish = 0x06,
    /// Read the per-shard totals.
    Totals = 0x07,
    /// Read the merged metrics document (JSON).
    Metrics = 0x08,
}

impl OpCode {
    /// Decode a wire opcode.
    pub fn from_u8(byte: u8) -> Option<Self> {
        Some(match byte {
            0x01 => OpCode::Draw,
            0x02 => OpCode::DrawBatch,
            0x03 => OpCode::Update,
            0x04 => OpCode::UpdateBatch,
            0x05 => OpCode::Scale,
            0x06 => OpCode::Publish,
            0x07 => OpCode::Totals,
            0x08 => OpCode::Metrics,
            _ => return None,
        })
    }
}

/// Wire error codes carried in an error response's first payload byte.
pub mod codes {
    /// [`SelectionError::EmptyFitness`](lrb_core::SelectionError::EmptyFitness).
    pub const EMPTY_FITNESS: u8 = 1;
    /// [`SelectionError::AllZeroFitness`](lrb_core::SelectionError::AllZeroFitness).
    pub const ALL_ZERO_FITNESS: u8 = 2;
    /// [`SelectionError::InvalidFitness`](lrb_core::SelectionError::InvalidFitness).
    pub const INVALID_FITNESS: u8 = 3;
    /// [`SelectionError::NotEnoughCandidates`](lrb_core::SelectionError::NotEnoughCandidates).
    pub const NOT_ENOUGH_CANDIDATES: u8 = 4;
    /// [`SelectionError::IndexOutOfRange`](lrb_core::SelectionError::IndexOutOfRange).
    pub const INDEX_OUT_OF_RANGE: u8 = 5;
    /// [`SelectionError::InvalidScale`](lrb_core::SelectionError::InvalidScale).
    pub const INVALID_SCALE: u8 = 6;
    /// [`SelectionError::UnknownBackend`](lrb_core::SelectionError::UnknownBackend).
    pub const UNKNOWN_BACKEND: u8 = 7;
    /// [`SelectionError::Durability`](lrb_core::SelectionError::Durability).
    pub const DURABILITY: u8 = 8;
    /// The request frame violated the protocol (bad opcode, bad length,
    /// oversized batch).
    pub const PROTOCOL: u8 = 20;
}

/// The wire error code for a selection failure.
pub fn error_code(error: &SelectionError) -> u8 {
    match error {
        SelectionError::EmptyFitness => codes::EMPTY_FITNESS,
        SelectionError::AllZeroFitness => codes::ALL_ZERO_FITNESS,
        SelectionError::InvalidFitness { .. } => codes::INVALID_FITNESS,
        SelectionError::NotEnoughCandidates { .. } => codes::NOT_ENOUGH_CANDIDATES,
        SelectionError::IndexOutOfRange { .. } => codes::INDEX_OUT_OF_RANGE,
        SelectionError::InvalidScale { .. } => codes::INVALID_SCALE,
        SelectionError::UnknownBackend { .. } => codes::UNKNOWN_BACKEND,
        SelectionError::Durability { .. } => codes::DURABILITY,
    }
}

/// One decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The raw opcode byte (may be unknown — the dispatcher answers with a
    /// protocol error instead of dropping the connection).
    pub opcode: u8,
    /// The opaque payload bytes after the opcode.
    pub payload: Vec<u8>,
}

/// Read one `[u32 LE length][body]` frame body.
fn read_body(reader: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    reader.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} outside 1..={MAX_FRAME}"),
        ));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(body)
}

/// Read one request frame (server side) from a blocking reader.
///
/// Not timeout-safe: on `WouldBlock`/`TimedOut` any partially consumed
/// bytes are lost, desynchronizing the stream. Connections that poll with
/// a read timeout must use [`FrameReader`] instead.
pub fn read_frame(reader: &mut impl Read) -> io::Result<Frame> {
    let mut body = read_body(reader)?;
    let opcode = body[0];
    body.remove(0);
    Ok(Frame {
        opcode,
        payload: body,
    })
}

/// Incremental request-frame reader that is safe under read timeouts.
///
/// A frame can arrive split across TCP segments, so a timed-out
/// `read_exact` may fail *after* consuming part of the length prefix or
/// body — those bytes would be lost and the stream desynchronized. This
/// reader accumulates partial progress across [`poll`](Self::poll) calls:
/// a `WouldBlock`/`TimedOut` mid-frame parks the state and resumes on the
/// next call, never discarding consumed bytes.
#[derive(Debug, Default)]
pub struct FrameReader {
    /// Accumulator for the 4-byte length prefix.
    len_bytes: [u8; 4],
    /// How many of the 4 prefix bytes have arrived.
    len_got: usize,
    /// Body accumulator, sized once the prefix is complete.
    body: Vec<u8>,
    /// How many body bytes have arrived.
    body_got: usize,
}

impl FrameReader {
    /// A reader with no partial frame buffered.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a partially received frame is buffered (a timeout now is a
    /// stalled peer, not an idle connection).
    pub fn mid_frame(&self) -> bool {
        self.len_got > 0
    }

    /// Advance the frame in progress. Returns `Ok(Some(frame))` once a
    /// whole frame has arrived, `Ok(None)` if the reader timed out
    /// (`WouldBlock`/`TimedOut`) with progress preserved for the next
    /// call, and `Err` on EOF, framing violation, or transport error.
    pub fn poll(&mut self, reader: &mut impl Read) -> io::Result<Option<Frame>> {
        loop {
            if self.len_got < 4 {
                match reader.read(&mut self.len_bytes[self.len_got..]) {
                    Ok(0) => {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            if self.len_got == 0 {
                                "connection closed between frames"
                            } else {
                                "connection closed inside a length prefix"
                            },
                        ))
                    }
                    Ok(n) => {
                        self.len_got += n;
                        if self.len_got == 4 {
                            let len = u32::from_le_bytes(self.len_bytes) as usize;
                            if len == 0 || len > MAX_FRAME {
                                return Err(io::Error::new(
                                    io::ErrorKind::InvalidData,
                                    format!("frame length {len} outside 1..={MAX_FRAME}"),
                                ));
                            }
                            self.body = vec![0u8; len];
                            self.body_got = 0;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                        ) =>
                    {
                        return Ok(None)
                    }
                    Err(e) => return Err(e),
                }
            } else if self.body_got < self.body.len() {
                match reader.read(&mut self.body[self.body_got..]) {
                    Ok(0) => {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed inside a frame body",
                        ))
                    }
                    Ok(n) => self.body_got += n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                        ) =>
                    {
                        return Ok(None)
                    }
                    Err(e) => return Err(e),
                }
            } else {
                let mut body = std::mem::take(&mut self.body);
                self.len_got = 0;
                self.body_got = 0;
                let opcode = body[0];
                body.remove(0);
                return Ok(Some(Frame {
                    opcode,
                    payload: body,
                }));
            }
        }
    }
}

/// Append one `[len][lead][payload]` frame to `out`. The append-to-buffer
/// form is what both the reactor's outbound write buffer and the client's
/// pipelined send buffer build on: many frames coalesce into one buffer and
/// leave in as few `write` syscalls as the socket accepts (a `writev`-style
/// gathering write without the extra iovec bookkeeping).
fn append_framed(out: &mut Vec<u8>, lead: &[u8], payload: &[u8]) {
    let len = lead.len() + payload.len();
    debug_assert!(len <= MAX_FRAME);
    out.reserve(4 + len);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    out.extend_from_slice(lead);
    out.extend_from_slice(payload);
}

/// Append one encoded request frame to a send buffer (client side).
pub fn encode_request(out: &mut Vec<u8>, opcode: OpCode, payload: &[u8]) {
    append_framed(out, &[opcode as u8], payload);
}

/// Append one encoded OK response (status `0`) to a response buffer.
pub fn encode_ok(out: &mut Vec<u8>, payload: &[u8]) {
    append_framed(out, &[0u8], payload);
}

/// Append one encoded error response (status `1`, payload
/// `[code][UTF-8 message]`) to a response buffer.
pub fn encode_err(out: &mut Vec<u8>, code: u8, message: &str) {
    append_framed(out, &[1u8, code], message.as_bytes());
}

/// Assemble and write one frame with a single `write_all`. This keeps small
/// frames to one syscall, but is **not** a delivery-atomicity guarantee —
/// TCP may still segment a large frame, so readers polling with a timeout
/// must tolerate partial arrival (see [`FrameReader`]).
fn write_framed(writer: &mut impl Write, lead: &[u8], payload: &[u8]) -> io::Result<()> {
    let mut frame = Vec::new();
    append_framed(&mut frame, lead, payload);
    writer.write_all(&frame)?;
    writer.flush()
}

/// Write one request frame (client side).
pub fn write_frame(writer: &mut impl Write, opcode: OpCode, payload: &[u8]) -> io::Result<()> {
    write_framed(writer, &[opcode as u8], payload)
}

/// Write an OK response (status `0`).
pub fn write_ok(writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    write_framed(writer, &[0u8], payload)
}

/// Write an error response (status `1`, payload `[code][UTF-8 message]`).
pub fn write_err(writer: &mut impl Write, code: u8, message: &str) -> io::Result<()> {
    write_framed(writer, &[1u8, code], message.as_bytes())
}

/// Read one response frame (client side): `Ok(payload)` on status `0`,
/// [`ServiceError::Remote`] on status `1`.
pub fn read_response(reader: &mut impl Read) -> Result<Vec<u8>, ServiceError> {
    let mut body = read_body(reader)?;
    match body[0] {
        0 => {
            body.remove(0);
            Ok(body)
        }
        1 => {
            if body.len() < 2 {
                return Err(ServiceError::Protocol(
                    "error response without a code byte".into(),
                ));
            }
            let code = body[1];
            let message = String::from_utf8_lossy(&body[2..]).into_owned();
            Err(ServiceError::Remote { code, message })
        }
        status => Err(ServiceError::Protocol(format!(
            "unknown response status {status}"
        ))),
    }
}

/// Little-endian payload cursor used by both ends to decode fields.
#[derive(Debug)]
pub struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    /// Start decoding `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ServiceError> {
        if self.at + n > self.bytes.len() {
            return Err(ServiceError::Protocol(format!(
                "payload truncated: wanted {n} bytes at offset {}, have {}",
                self.at,
                self.bytes.len()
            )));
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    /// Decode a `u32`.
    pub fn u32(&mut self) -> Result<u32, ServiceError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Decode a `u64`.
    pub fn u64(&mut self) -> Result<u64, ServiceError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Decode an `f64` (bit pattern).
    pub fn f64(&mut self) -> Result<f64, ServiceError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Require the payload to be fully consumed.
    pub fn done(&self) -> Result<(), ServiceError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(ServiceError::Protocol(format!(
                "{} trailing payload bytes",
                self.bytes.len() - self.at
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_through_a_byte_pipe() {
        let mut wire = Vec::new();
        write_frame(&mut wire, OpCode::Update, &7u64.to_le_bytes()).unwrap();
        let frame = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(frame.opcode, OpCode::Update as u8);
        assert_eq!(frame.payload, 7u64.to_le_bytes());
    }

    #[test]
    fn responses_roundtrip_ok_and_error() {
        let mut wire = Vec::new();
        write_ok(&mut wire, &[1, 2, 3]).unwrap();
        assert_eq!(read_response(&mut wire.as_slice()).unwrap(), vec![1, 2, 3]);

        let mut wire = Vec::new();
        write_err(&mut wire, codes::INDEX_OUT_OF_RANGE, "nope").unwrap();
        match read_response(&mut wire.as_slice()) {
            Err(ServiceError::Remote { code, message }) => {
                assert_eq!(code, codes::INDEX_OUT_OF_RANGE);
                assert_eq!(message, "nope");
            }
            other => panic!("expected a remote error, got {other:?}"),
        }
    }

    #[test]
    fn zero_and_oversized_lengths_are_rejected() {
        let wire = 0u32.to_le_bytes();
        assert!(read_frame(&mut wire.as_slice()).is_err());
        let wire = ((MAX_FRAME + 1) as u32).to_le_bytes();
        assert!(read_frame(&mut wire.as_slice()).is_err());
    }

    #[test]
    fn cursor_decodes_and_rejects_trailing_bytes() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&3u32.to_le_bytes());
        payload.extend_from_slice(&9u64.to_le_bytes());
        payload.extend_from_slice(&2.5f64.to_bits().to_le_bytes());
        let mut cursor = Cursor::new(&payload);
        assert_eq!(cursor.u32().unwrap(), 3);
        assert_eq!(cursor.u64().unwrap(), 9);
        assert_eq!(cursor.f64().unwrap(), 2.5);
        cursor.done().unwrap();

        let mut cursor = Cursor::new(&payload);
        cursor.u32().unwrap();
        assert!(cursor.done().is_err());
        assert!(Cursor::new(&payload[..2]).u32().is_err());
    }

    /// Delivers one byte per `read`, interleaving a timeout error before
    /// every byte — the worst-case TCP segmentation for a polling reader.
    struct Trickle {
        data: Vec<u8>,
        at: usize,
        starve_next: bool,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.starve_next {
                self.starve_next = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "starved"));
            }
            self.starve_next = true;
            if self.at == self.data.len() {
                return Ok(0); // EOF
            }
            buf[0] = self.data[self.at];
            self.at += 1;
            Ok(1)
        }
    }

    #[test]
    fn frame_reader_survives_timeouts_mid_frame() {
        let mut wire = Vec::new();
        write_frame(&mut wire, OpCode::Update, &7u64.to_le_bytes()).unwrap();
        write_frame(&mut wire, OpCode::Scale, &2.5f64.to_bits().to_le_bytes()).unwrap();
        let total = wire.len();
        let mut trickle = Trickle {
            data: wire,
            at: 0,
            starve_next: true,
        };
        let mut reader = FrameReader::new();
        let mut frames = Vec::new();
        let mut timeouts = 0usize;
        loop {
            match reader.poll(&mut trickle) {
                Ok(Some(frame)) => frames.push(frame),
                Ok(None) => timeouts += 1,
                Err(e) => {
                    assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof);
                    assert!(!reader.mid_frame(), "EOF must land between frames");
                    break;
                }
            }
        }
        // Every byte was preceded by a timeout; none may be dropped.
        assert!(timeouts > total, "{timeouts} timeouts for {total} bytes");
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].opcode, OpCode::Update as u8);
        assert_eq!(frames[0].payload, 7u64.to_le_bytes());
        assert_eq!(frames[1].opcode, OpCode::Scale as u8);
        assert_eq!(frames[1].payload, 2.5f64.to_bits().to_le_bytes());
    }

    #[test]
    fn frame_reader_rejects_bad_lengths_and_reports_mid_frame() {
        let mut reader = FrameReader::new();
        assert!(!reader.mid_frame());
        // Two bytes of the prefix, then starvation: state must persist.
        let mut partial = Trickle {
            data: 9u32.to_le_bytes()[..2].to_vec(),
            at: 0,
            starve_next: false,
        };
        assert!(matches!(reader.poll(&mut partial), Ok(None)));
        assert!(reader.mid_frame());

        let mut reader = FrameReader::new();
        let wire = 0u32.to_le_bytes();
        assert!(reader.poll(&mut wire.as_slice()).is_err());
        let mut reader = FrameReader::new();
        let wire = ((MAX_FRAME + 1) as u32).to_le_bytes();
        assert!(reader.poll(&mut wire.as_slice()).is_err());
    }

    #[test]
    fn every_opcode_roundtrips_and_unknowns_are_none() {
        for byte in 1u8..=8 {
            assert_eq!(OpCode::from_u8(byte).unwrap() as u8, byte);
        }
        assert_eq!(OpCode::from_u8(0), None);
        assert_eq!(OpCode::from_u8(9), None);
    }
}
