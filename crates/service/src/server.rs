//! The request layer: a thread-per-connection TCP/UDS server speaking the
//! length-prefixed binary protocol of [`crate::protocol`].
//!
//! Single draws (`DRAW`) go through the shared [`DrawAggregator`], so
//! concurrent clients are coalesced into batched two-level draws; batch
//! draws (`DRAW_BATCH`) use a per-connection RNG and hit
//! [`ServiceCore::draw_into`] directly. Every handled request lands in the
//! service's request-latency histogram.
//!
//! Connections poll with a short read timeout so a server shutdown
//! ([`ServiceServer::shutdown`] or drop) is observed within
//! [`READ_TIMEOUT`]; the accept loop is unblocked by a dummy connection.
//! Everything is plain `std::net` / `std::os::unix::net` — no async
//! runtime.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lrb_rng::{MersenneTwister64, SeedableSource, SplitMix64};

use crate::aggregator::DrawAggregator;
use crate::protocol::{
    codes, error_code, write_err, write_ok, Cursor, FrameReader, OpCode, MAX_BATCH,
};
use crate::sharded::ServiceCore;

/// Idle read timeout per connection: the shutdown-observation latency.
pub const READ_TIMEOUT: Duration = Duration::from_millis(100);

/// Back-off before retrying a failed `accept()` (e.g. fd exhaustion), so a
/// persistent error cannot busy-spin the accept loop.
const ACCEPT_RETRY_DELAY: Duration = Duration::from_millis(20);

/// Where a running server is listening.
#[derive(Debug, Clone)]
pub enum ServerAddr {
    /// A TCP socket address (use with [`crate::ServiceClient::connect_tcp`]).
    Tcp(SocketAddr),
    /// A Unix-domain socket path (use with
    /// [`crate::ServiceClient::connect_uds`]).
    #[cfg(unix)]
    Unix(PathBuf),
}

enum Incoming {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// A running selection server. Dropping it (or calling
/// [`shutdown`](Self::shutdown)) stops the accept loop, joins every
/// connection handler and, for UDS, removes the socket file.
pub struct ServiceServer {
    addr: ServerAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ServiceServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ServiceServer {
    /// Bind a TCP listener (e.g. `"127.0.0.1:0"` for an ephemeral port)
    /// and start serving `core`. `seed` keys the server-side RNGs.
    pub fn bind_tcp(
        core: Arc<ServiceCore>,
        addr: impl ToSocketAddrs,
        seed: u64,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        Self::start(core, Incoming::Tcp(listener), ServerAddr::Tcp(local), seed)
    }

    /// Bind a Unix-domain socket at `path` (removed on shutdown) and start
    /// serving `core`.
    #[cfg(unix)]
    pub fn bind_uds(
        core: Arc<ServiceCore>,
        path: impl Into<PathBuf>,
        seed: u64,
    ) -> std::io::Result<Self> {
        let path = path.into();
        // A stale socket file from a crashed predecessor would fail the
        // bind; remove it (ignoring "was not there").
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        Self::start(core, Incoming::Unix(listener), ServerAddr::Unix(path), seed)
    }

    fn start(
        core: Arc<ServiceCore>,
        listener: Incoming,
        addr: ServerAddr,
        seed: u64,
    ) -> std::io::Result<Self> {
        let stop = Arc::new(AtomicBool::new(false));
        let aggregator = Arc::new(DrawAggregator::new(Arc::clone(&core), seed));
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(listener, core, aggregator, stop, seed))
        };
        Ok(Self {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// Where the server is listening (for clients; the TCP variant carries
    /// the resolved ephemeral port).
    pub fn local_addr(&self) -> &ServerAddr {
        &self.addr
    }

    /// Stop accepting, wake the accept loop, join every handler thread and
    /// clean up the socket. Also runs on drop.
    pub fn shutdown(&mut self) {
        if self.accept.is_none() {
            return;
        }
        self.stop.store(true, Ordering::Release);
        // Unblock the blocking accept with a throwaway connection.
        match &self.addr {
            ServerAddr::Tcp(addr) => {
                let _ = TcpStream::connect_timeout(addr, READ_TIMEOUT);
            }
            #[cfg(unix)]
            ServerAddr::Unix(path) => {
                let _ = UnixStream::connect(path);
            }
        }
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        #[cfg(unix)]
        if let ServerAddr::Unix(path) = &self.addr {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for ServiceServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: Incoming,
    core: Arc<ServiceCore>,
    aggregator: Arc<DrawAggregator>,
    stop: Arc<AtomicBool>,
    seed: u64,
) {
    let workers: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    let connections = AtomicU64::new(0);
    loop {
        // Accept one connection (blocking); any accept error while stopping
        // means "time to exit".
        let stream: Result<Box<dyn Conn>, std::io::Error> = match &listener {
            Incoming::Tcp(l) => l.accept().map(|(s, _)| Box::new(s) as Box<dyn Conn>),
            #[cfg(unix)]
            Incoming::Unix(l) => l.accept().map(|(s, _)| Box::new(s) as Box<dyn Conn>),
        };
        if stop.load(Ordering::Acquire) {
            break;
        }
        let stream = match stream {
            Ok(stream) => stream,
            Err(_) => {
                // A persistent accept failure (e.g. EMFILE under fd
                // exhaustion) would otherwise busy-spin this loop at 100%
                // CPU; back off briefly before retrying.
                std::thread::sleep(ACCEPT_RETRY_DELAY);
                continue;
            }
        };
        let conn_id = connections.fetch_add(1, Ordering::Relaxed);
        let handler = {
            let core = Arc::clone(&core);
            let aggregator = Arc::clone(&aggregator);
            let stop = Arc::clone(&stop);
            // Derive a per-connection stream for DRAW_BATCH requests: the
            // SplitMix mixer keeps connection seeds decorrelated even for
            // adjacent ids.
            let mut mixer = SplitMix64::new(seed ^ conn_id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let rng_seed = lrb_rng::RandomSource::next_u64(&mut mixer);
            std::thread::spawn(move || serve_connection(stream, core, aggregator, stop, rng_seed))
        };
        let mut workers = workers.lock().expect("worker list poisoned");
        workers.push(handler);
        // Opportunistically reap finished handlers so a long-lived server
        // doesn't accumulate dead JoinHandles.
        workers.retain(|h| !h.is_finished());
    }
    for handle in workers.lock().expect("worker list poisoned").drain(..) {
        let _ = handle.join();
    }
}

/// A duplex connection with a settable read timeout.
trait Conn: Read + Write + Send {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()>;
}

impl Conn for TcpStream {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        TcpStream::set_read_timeout(self, timeout)
    }
}

#[cfg(unix)]
impl Conn for UnixStream {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        UnixStream::set_read_timeout(self, timeout)
    }
}

fn serve_connection(
    mut stream: Box<dyn Conn>,
    core: Arc<ServiceCore>,
    aggregator: Arc<DrawAggregator>,
    stop: Arc<AtomicBool>,
    rng_seed: u64,
) {
    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
        return;
    }
    let mut rng = MersenneTwister64::seed_from_u64(rng_seed);
    // A frame may arrive split across TCP segments, so a read timeout can
    // fire with part of a frame already consumed; the resumable reader
    // buffers that progress instead of discarding it (which would
    // desynchronize the stream and parse body bytes as a length/opcode).
    let mut reader = FrameReader::new();
    while !stop.load(Ordering::Acquire) {
        let frame = match reader.poll(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => continue, // idle or mid-frame; re-check the stop flag
            Err(_) => return,     // disconnect or framing violation
        };
        let started = Instant::now();
        let result = dispatch(&frame, &core, &aggregator, &mut rng, &mut stream);
        core.telemetry().record_request_span(started);
        if result.is_err() {
            return; // the response could not be written
        }
    }
}

/// Handle one decoded frame; `Err` only for transport failures (protocol
/// and selection errors are answered in-band).
fn dispatch(
    frame: &crate::protocol::Frame,
    core: &Arc<ServiceCore>,
    aggregator: &Arc<DrawAggregator>,
    rng: &mut MersenneTwister64,
    stream: &mut Box<dyn Conn>,
) -> std::io::Result<()> {
    let Some(opcode) = OpCode::from_u8(frame.opcode) else {
        return write_err(
            stream,
            codes::PROTOCOL,
            &format!("unknown opcode {:#04x}", frame.opcode),
        );
    };
    // Decode-and-execute; any ServiceError becomes an in-band error frame.
    let outcome: Result<Vec<u8>, (u8, String)> = match opcode {
        OpCode::Draw => aggregator
            .draw()
            .map(|index| (index as u64).to_le_bytes().to_vec())
            .map_err(|e| (error_code(&e), e.to_string())),
        OpCode::DrawBatch => decode_count(&frame.payload).and_then(|count| {
            core.draw_many(rng, count as usize)
                .map(|indices| {
                    let mut payload = Vec::with_capacity(4 + 8 * indices.len());
                    payload.extend_from_slice(&count.to_le_bytes());
                    for index in indices {
                        payload.extend_from_slice(&(index as u64).to_le_bytes());
                    }
                    payload
                })
                .map_err(|e| (error_code(&e), e.to_string()))
        }),
        OpCode::Update => decode_update(&frame.payload).and_then(|(index, weight)| {
            core.update(index, weight)
                .map(|()| Vec::new())
                .map_err(|e| (error_code(&e), e.to_string()))
        }),
        OpCode::UpdateBatch => decode_update_batch(&frame.payload).and_then(|updates| {
            core.update_many(&updates)
                .map(|()| Vec::new())
                .map_err(|e| (error_code(&e), e.to_string()))
        }),
        OpCode::Scale => decode_scale(&frame.payload).and_then(|factor| {
            core.scale_all(factor)
                .map(|()| Vec::new())
                .map_err(|e| (error_code(&e), e.to_string()))
        }),
        OpCode::Publish => core
            .publish_all()
            .map(|versions| {
                let mut payload = Vec::with_capacity(4 + 8 * versions.len());
                payload.extend_from_slice(&(versions.len() as u32).to_le_bytes());
                for version in versions {
                    payload.extend_from_slice(&version.to_le_bytes());
                }
                payload
            })
            .map_err(|e| (error_code(&e), e.to_string())),
        OpCode::Totals => {
            let totals = core.shard_totals();
            let mut payload = Vec::with_capacity(4 + 8 * totals.len());
            payload.extend_from_slice(&(totals.len() as u32).to_le_bytes());
            for total in totals {
                payload.extend_from_slice(&total.to_bits().to_le_bytes());
            }
            Ok(payload)
        }
        OpCode::Metrics => Ok(core.metrics().to_json().into_bytes()),
    };
    match outcome {
        Ok(payload) => write_ok(stream, &payload),
        Err((code, message)) => write_err(stream, code, &message),
    }
}

fn decode_count(payload: &[u8]) -> Result<u32, (u8, String)> {
    let mut cursor = Cursor::new(payload);
    let count = cursor
        .u32()
        .and_then(|c| cursor.done().map(|()| c))
        .map_err(|e| (codes::PROTOCOL, e.to_string()))?;
    if count > MAX_BATCH {
        return Err((
            codes::PROTOCOL,
            format!("batch count {count} exceeds {MAX_BATCH}"),
        ));
    }
    Ok(count)
}

fn decode_update(payload: &[u8]) -> Result<(usize, f64), (u8, String)> {
    fn inner(payload: &[u8]) -> Result<(usize, f64), crate::error::ServiceError> {
        let mut cursor = Cursor::new(payload);
        let index = cursor.u64()? as usize;
        let weight = cursor.f64()?;
        cursor.done()?;
        Ok((index, weight))
    }
    inner(payload).map_err(|e| (codes::PROTOCOL, e.to_string()))
}

fn decode_update_batch(payload: &[u8]) -> Result<Vec<(usize, f64)>, (u8, String)> {
    fn inner(payload: &[u8]) -> Result<Vec<(usize, f64)>, crate::error::ServiceError> {
        let mut cursor = Cursor::new(payload);
        let count = cursor.u32()?;
        if count > MAX_BATCH {
            return Err(crate::error::ServiceError::Protocol(format!(
                "batch count {count} exceeds {MAX_BATCH}"
            )));
        }
        let mut updates = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let index = cursor.u64()? as usize;
            let weight = cursor.f64()?;
            updates.push((index, weight));
        }
        cursor.done()?;
        Ok(updates)
    }
    inner(payload).map_err(|e| (codes::PROTOCOL, e.to_string()))
}

fn decode_scale(payload: &[u8]) -> Result<f64, (u8, String)> {
    fn inner(payload: &[u8]) -> Result<f64, crate::error::ServiceError> {
        let mut cursor = Cursor::new(payload);
        let factor = cursor.f64()?;
        cursor.done()?;
        Ok(factor)
    }
    inner(payload).map_err(|e| (codes::PROTOCOL, e.to_string()))
}
