//! The request layer: an event-driven TCP/UDS server speaking the
//! length-prefixed binary protocol of [`crate::protocol`].
//!
//! On Linux the server runs [`ServerConfig::reactors`] epoll reactor
//! threads (the private `reactor` module) multiplexing every connection, plus a
//! small worker pool that executes decoded frames against the shard /
//! aggregator machinery — total thread count is **O(reactors + workers +
//! shards)** regardless of how many connections are open. Connections are
//! nonblocking; idle ones cost nothing (no poll-loop wakeups, no thread
//! stacks). On other platforms a blocking thread-per-connection fallback
//! keeps the same wire behaviour.
//!
//! Request execution semantics per connection:
//!
//! * frames execute strictly in arrival order and responses are written in
//!   that order, so a pipelining client correlates by position;
//! * a **run** of consecutive `DRAW` frames from one connection coalesces
//!   into a single fused two-level batch ([`ServiceCore::draw_many`]) —
//!   pipelined single draws get batch-draw throughput automatically;
//! * a lone `DRAW` goes through the shared [`DrawAggregator`], so
//!   concurrent *connections* still coalesce with each other;
//! * at most [`ServerConfig::inflight_budget`] decoded-but-unanswered
//!   frames per connection; beyond that the reactor stops reading the
//!   connection (TCP flow control pushes back on the client);
//! * a connection whose buffered responses exceed
//!   [`ServerConfig::max_outbound_bytes`] is disconnected (slow-consumer
//!   policy) with a journaled [`ServiceEvent::SlowConsumer`] reason.
//!
//! [`ServiceEvent::SlowConsumer`]: crate::telemetry::ServiceEvent

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lrb_rng::MersenneTwister64;

use crate::aggregator::DrawAggregator;
use crate::protocol::{codes, encode_err, encode_ok, error_code, Cursor, Frame, OpCode, MAX_BATCH};
use crate::sharded::ServiceCore;

/// Back-off before retrying a failed `accept()` (e.g. fd exhaustion), so a
/// persistent error cannot busy-spin the accept loop.
const ACCEPT_RETRY_DELAY: Duration = Duration::from_millis(20);

/// Timeout on the throwaway connection that unblocks the accept loop at
/// shutdown.
const SHUTDOWN_CONNECT_TIMEOUT: Duration = Duration::from_secs(1);

/// Sizing and backpressure knobs for [`ServiceServer`].
///
/// The defaults suit a small host: reactors scale with cores up to 4
/// (thousands of mostly-idle connections per reactor are fine — each costs
/// one epoll registration and a couple of buffers, not a thread), workers
/// with cores up to 8 (workers run the actual draws; more than cores just
/// adds contention on the shard snapshots).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Reactor (event-loop) threads; `0` = `min(4, cores)`.
    pub reactors: usize,
    /// Worker (request-execution) threads; `0` = `max(2, min(8, cores))`.
    pub workers: usize,
    /// Max decoded-but-unanswered frames per connection before the server
    /// stops reading it (connection-level backpressure).
    pub inflight_budget: usize,
    /// Max buffered outbound response bytes per connection before the
    /// slow-consumer policy disconnects it.
    pub max_outbound_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            reactors: 0,
            workers: 0,
            inflight_budget: 64,
            max_outbound_bytes: 16 << 20,
        }
    }
}

impl ServerConfig {
    fn cores() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// The reactor-thread count after resolving the `0 = auto` default.
    pub fn resolved_reactors(&self) -> usize {
        if self.reactors > 0 {
            self.reactors
        } else {
            Self::cores().min(4)
        }
    }

    /// The worker-thread count after resolving the `0 = auto` default.
    pub fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            Self::cores().clamp(2, 8)
        }
    }
}

/// Where a running server is listening.
#[derive(Debug, Clone)]
pub enum ServerAddr {
    /// A TCP socket address (use with [`crate::ServiceClient::connect_tcp`]).
    Tcp(SocketAddr),
    /// A Unix-domain socket path (use with
    /// [`crate::ServiceClient::connect_uds`]).
    #[cfg(unix)]
    Unix(PathBuf),
}

enum Incoming {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// A running selection server. Dropping it (or calling
/// [`shutdown`](Self::shutdown)) stops the accept loop, the reactors and
/// the worker pool, closes every connection and, for UDS, removes the
/// socket file.
pub struct ServiceServer {
    addr: ServerAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    runtime: Runtime,
}

impl std::fmt::Debug for ServiceServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ServiceServer {
    /// Bind a TCP listener (e.g. `"127.0.0.1:0"` for an ephemeral port)
    /// and start serving `core` with default sizing. `seed` keys the
    /// server-side RNGs.
    pub fn bind_tcp(
        core: Arc<ServiceCore>,
        addr: impl ToSocketAddrs,
        seed: u64,
    ) -> std::io::Result<Self> {
        Self::bind_tcp_with(core, addr, seed, ServerConfig::default())
    }

    /// [`bind_tcp`](Self::bind_tcp) with explicit [`ServerConfig`] knobs.
    pub fn bind_tcp_with(
        core: Arc<ServiceCore>,
        addr: impl ToSocketAddrs,
        seed: u64,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        Self::start(
            core,
            Incoming::Tcp(listener),
            ServerAddr::Tcp(local),
            seed,
            config,
        )
    }

    /// Bind a Unix-domain socket at `path` (removed on shutdown) and start
    /// serving `core` with default sizing.
    #[cfg(unix)]
    pub fn bind_uds(
        core: Arc<ServiceCore>,
        path: impl Into<PathBuf>,
        seed: u64,
    ) -> std::io::Result<Self> {
        Self::bind_uds_with(core, path, seed, ServerConfig::default())
    }

    /// [`bind_uds`](Self::bind_uds) with explicit [`ServerConfig`] knobs.
    #[cfg(unix)]
    pub fn bind_uds_with(
        core: Arc<ServiceCore>,
        path: impl Into<PathBuf>,
        seed: u64,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let path = path.into();
        // A stale socket file from a crashed predecessor would fail the
        // bind; remove it (ignoring "was not there").
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        Self::start(
            core,
            Incoming::Unix(listener),
            ServerAddr::Unix(path),
            seed,
            config,
        )
    }

    fn start(
        core: Arc<ServiceCore>,
        listener: Incoming,
        addr: ServerAddr,
        seed: u64,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let stop = Arc::new(AtomicBool::new(false));
        let aggregator = Arc::new(DrawAggregator::new(Arc::clone(&core), seed));
        let (runtime, accept) =
            Runtime::start(core, aggregator, listener, Arc::clone(&stop), seed, config)?;
        Ok(Self {
            addr,
            stop,
            accept: Some(accept),
            runtime,
        })
    }

    /// Where the server is listening (for clients; the TCP variant carries
    /// the resolved ephemeral port).
    pub fn local_addr(&self) -> &ServerAddr {
        &self.addr
    }

    /// Stop accepting, wake and join the reactors and workers, close every
    /// connection and clean up the socket. Also runs on drop.
    ///
    /// This is the *abrupt* path: connections close regardless of
    /// in-flight work. For a graceful stop that lets in-flight requests
    /// finish and flushes their responses first, use
    /// [`shutdown_within`](Self::shutdown_within).
    pub fn shutdown(&mut self) {
        if self.stop_accepting() {
            self.runtime.shutdown();
            self.cleanup_socket();
        }
    }

    /// Gracefully drain and stop within `deadline`: stop accepting new
    /// connections, stop *reading* on existing ones, let every in-flight
    /// run complete and its response flush, then close. Connections still
    /// busy when the deadline expires are closed anyway and counted as
    /// abandoned in the journaled
    /// [`ServiceEvent::Drained`](crate::ServiceEvent::Drained) (one entry
    /// per reactor). Also safe to call after a shutdown (no-op).
    ///
    /// On non-Linux hosts (the thread-per-connection fallback) this is
    /// plain [`shutdown`](Self::shutdown): in-flight requests there
    /// complete on their own threads anyway.
    pub fn shutdown_within(&mut self, deadline: Duration) {
        if self.stop_accepting() {
            self.runtime.shutdown_within(deadline);
            self.cleanup_socket();
        }
    }

    /// Set the stop flag, unblock and join the accept thread. Returns
    /// false when shutdown already ran.
    fn stop_accepting(&mut self) -> bool {
        if self.accept.is_none() {
            return false;
        }
        self.stop.store(true, Ordering::Release);
        // Unblock the blocking accept with a throwaway connection.
        match &self.addr {
            ServerAddr::Tcp(addr) => {
                let _ = TcpStream::connect_timeout(addr, SHUTDOWN_CONNECT_TIMEOUT);
            }
            #[cfg(unix)]
            ServerAddr::Unix(path) => {
                let _ = UnixStream::connect(path);
            }
        }
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        true
    }

    fn cleanup_socket(&self) {
        #[cfg(unix)]
        if let ServerAddr::Unix(path) = &self.addr {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for ServiceServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Derive the per-connection RNG seed for connection `token` (SplitMix
/// keeps adjacent tokens decorrelated).
fn connection_seed(seed: u64, token: u64) -> u64 {
    let mut mixer = lrb_rng::SplitMix64::new(seed ^ token.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    lrb_rng::RandomSource::next_u64(&mut mixer)
}

// ---------------------------------------------------------------------------
// Linux: epoll reactor runtime.
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
struct Runtime {
    reactors: Vec<Arc<crate::reactor::ReactorShared>>,
    reactor_threads: Vec<JoinHandle<()>>,
    jobs: Arc<crate::reactor::JobQueue>,
    worker_threads: Vec<JoinHandle<()>>,
}

#[cfg(target_os = "linux")]
impl Runtime {
    fn start(
        core: Arc<ServiceCore>,
        aggregator: Arc<DrawAggregator>,
        listener: Incoming,
        stop: Arc<AtomicBool>,
        seed: u64,
        config: ServerConfig,
    ) -> std::io::Result<(Self, JoinHandle<()>)> {
        use crate::reactor::{JobQueue, ReactorContext, ReactorShared};

        let reactor_count = config.resolved_reactors();
        let worker_count = config.resolved_workers();
        let jobs = Arc::new(JobQueue::new());

        let mut reactors = Vec::with_capacity(reactor_count);
        for _ in 0..reactor_count {
            reactors.push(Arc::new(ReactorShared::new()?));
        }
        let reactors_shared = Arc::new(reactors.clone());

        let mut reactor_threads = Vec::with_capacity(reactor_count);
        for (index, shared) in reactors.iter().enumerate() {
            let ctx = ReactorContext {
                shared: Arc::clone(shared),
                index,
                core: Arc::clone(&core),
                jobs: Arc::clone(&jobs),
                budget: config.inflight_budget.max(1),
                max_outbound: config.max_outbound_bytes.max(1),
            };
            let pinner = Arc::clone(core.pinner());
            reactor_threads.push(std::thread::spawn(move || {
                pinner.pin_current();
                crate::reactor::run_reactor(ctx)
            }));
        }

        let mut worker_threads = Vec::with_capacity(worker_count);
        for _ in 0..worker_count {
            let jobs = Arc::clone(&jobs);
            let reactors = Arc::clone(&reactors_shared);
            let core = Arc::clone(&core);
            let aggregator = Arc::clone(&aggregator);
            worker_threads.push(std::thread::spawn(move || {
                core.pinner().pin_current();
                crate::reactor::run_worker(jobs, reactors, core, aggregator)
            }));
        }

        let accept = {
            let reactors = Arc::clone(&reactors_shared);
            std::thread::spawn(move || accept_loop(listener, reactors, stop, seed))
        };
        Ok((
            Self {
                reactors,
                reactor_threads,
                jobs,
                worker_threads,
            },
            accept,
        ))
    }

    fn shutdown(&mut self) {
        for reactor in &self.reactors {
            reactor.request_shutdown();
        }
        self.join_all();
    }

    /// Graceful drain: the reactors keep running (and the workers keep
    /// executing their in-flight runs) until every connection is idle or
    /// `deadline` elapses, then everything joins.
    fn shutdown_within(&mut self, deadline: Duration) {
        let by = std::time::Instant::now() + deadline;
        for reactor in &self.reactors {
            reactor.request_drain(by);
        }
        self.join_all();
    }

    fn join_all(&mut self) {
        for handle in self.reactor_threads.drain(..) {
            let _ = handle.join();
        }
        // Workers stop only after the reactors exit: a draining reactor
        // depends on them to finish the runs it is waiting on.
        self.jobs.shutdown();
        for handle in self.worker_threads.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(target_os = "linux")]
fn accept_loop(
    listener: Incoming,
    reactors: Arc<Vec<Arc<crate::reactor::ReactorShared>>>,
    stop: Arc<AtomicBool>,
    seed: u64,
) {
    use crate::reactor::{Registration, Socket};

    let mut next_token: u64 = 1; // u64::MAX is the reactors' wake token
    loop {
        let socket: std::io::Result<Socket> = match &listener {
            Incoming::Tcp(l) => l.accept().and_then(|(s, _)| {
                s.set_nodelay(true)?;
                s.set_nonblocking(true)?;
                Ok(Socket::Tcp(s))
            }),
            #[cfg(unix)]
            Incoming::Unix(l) => l.accept().and_then(|(s, _)| {
                s.set_nonblocking(true)?;
                Ok(Socket::Unix(s))
            }),
        };
        if stop.load(Ordering::Acquire) {
            break;
        }
        let socket = match socket {
            Ok(socket) => socket,
            Err(_) => {
                // A persistent accept failure (e.g. EMFILE under fd
                // exhaustion) would otherwise busy-spin this loop at 100%
                // CPU; back off briefly before retrying.
                std::thread::sleep(ACCEPT_RETRY_DELAY);
                continue;
            }
        };
        let token = next_token;
        next_token += 1;
        reactors[(token as usize) % reactors.len()].register(Registration {
            socket,
            token,
            rng_seed: connection_seed(seed, token),
        });
    }
}

// ---------------------------------------------------------------------------
// Fallback (non-Linux): blocking thread-per-connection, same wire
// behaviour, no backpressure beyond the socket buffers.
// ---------------------------------------------------------------------------

#[cfg(not(target_os = "linux"))]
struct Runtime {
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

#[cfg(not(target_os = "linux"))]
impl Runtime {
    fn start(
        core: Arc<ServiceCore>,
        aggregator: Arc<DrawAggregator>,
        listener: Incoming,
        stop: Arc<AtomicBool>,
        seed: u64,
        _config: ServerConfig,
    ) -> std::io::Result<(Self, JoinHandle<()>)> {
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let handlers = Arc::clone(&handlers);
            std::thread::spawn(move || {
                fallback_accept_loop(listener, core, aggregator, stop, seed, handlers)
            })
        };
        Ok((Self { handlers }, accept))
    }

    fn shutdown(&mut self) {
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.handlers.lock().expect("handler list poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// The fallback's handlers each complete their current request before
    /// observing the stop flag, so the plain shutdown already drains.
    fn shutdown_within(&mut self, _deadline: Duration) {
        self.shutdown();
    }
}

#[cfg(not(target_os = "linux"))]
fn fallback_accept_loop(
    listener: Incoming,
    core: Arc<ServiceCore>,
    aggregator: Arc<DrawAggregator>,
    stop: Arc<AtomicBool>,
    seed: u64,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    use std::io::Write;

    /// Shutdown-observation latency of the blocking fallback.
    const READ_TIMEOUT: Duration = Duration::from_millis(100);

    trait Conn: std::io::Read + Write + Send {}
    impl Conn for TcpStream {}
    #[cfg(unix)]
    impl Conn for UnixStream {}

    let mut next_token: u64 = 1;
    loop {
        let stream: std::io::Result<Box<dyn Conn>> = match &listener {
            Incoming::Tcp(l) => l.accept().and_then(|(s, _)| {
                s.set_nodelay(true)?;
                s.set_read_timeout(Some(READ_TIMEOUT))?;
                Ok(Box::new(s) as Box<dyn Conn>)
            }),
            #[cfg(unix)]
            Incoming::Unix(l) => l.accept().and_then(|(s, _)| {
                s.set_read_timeout(Some(READ_TIMEOUT))?;
                Ok(Box::new(s) as Box<dyn Conn>)
            }),
        };
        if stop.load(Ordering::Acquire) {
            break;
        }
        let mut stream = match stream {
            Ok(stream) => stream,
            Err(_) => {
                std::thread::sleep(ACCEPT_RETRY_DELAY);
                continue;
            }
        };
        let token = next_token;
        next_token += 1;
        let rng = Arc::new(Mutex::new(lrb_rng::SeedableSource::seed_from_u64(
            connection_seed(seed, token),
        )));
        let handler = {
            let core = Arc::clone(&core);
            let aggregator = Arc::clone(&aggregator);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut reader = crate::protocol::FrameReader::new();
                while !stop.load(Ordering::Acquire) {
                    let frame = match reader.poll(&mut stream) {
                        Ok(Some(frame)) => frame,
                        Ok(None) => continue,
                        Err(_) => return,
                    };
                    let bytes = execute_run(std::slice::from_ref(&frame), &core, &aggregator, &rng);
                    if stream.write_all(&bytes).is_err() {
                        return;
                    }
                }
            })
        };
        let mut handlers = handlers.lock().expect("handler list poisoned");
        handlers.push(handler);
        handlers.retain(|h| !h.is_finished());
    }
}

// ---------------------------------------------------------------------------
// Frame execution (shared by the reactor workers and the fallback).
// ---------------------------------------------------------------------------

/// Execute a run of frames from one connection, in order, and return the
/// encoded responses (one per frame, same order).
///
/// Consecutive `DRAW` frames coalesce into one fused two-level batch; a
/// lone `DRAW` rides the cross-connection [`DrawAggregator`]. Protocol and
/// selection errors are answered in-band, so this never fails — transport
/// problems are the caller's (the reactor's) concern.
pub(crate) fn execute_run(
    frames: &[Frame],
    core: &Arc<ServiceCore>,
    aggregator: &Arc<DrawAggregator>,
    rng: &Arc<Mutex<MersenneTwister64>>,
) -> Vec<u8> {
    let mut out = Vec::new();
    // Runs are serial per connection, so this lock is never contended.
    let mut rng = rng.lock().expect("connection rng poisoned");
    let telemetry = core.telemetry();
    let mut i = 0;
    while i < frames.len() {
        let started = Instant::now();
        // Coalesce a run of consecutive single draws into one fused batch.
        if frames[i].opcode == OpCode::Draw as u8 && frames[i].payload.is_empty() {
            let mut j = i + 1;
            while j < frames.len()
                && frames[j].opcode == OpCode::Draw as u8
                && frames[j].payload.is_empty()
            {
                j += 1;
            }
            let n = j - i;
            if n >= 2 {
                match core.draw_many(&mut *rng, n) {
                    Ok(indices) => {
                        for index in indices {
                            encode_ok(&mut out, &(index as u64).to_le_bytes());
                        }
                    }
                    Err(e) => {
                        let code = error_code(&e);
                        let message = e.to_string();
                        for _ in 0..n {
                            encode_err(&mut out, code, &message);
                        }
                    }
                }
                for _ in 0..n {
                    telemetry.record_request_span(started);
                }
                i = j;
                continue;
            }
        }
        execute_one(&frames[i], core, aggregator, &mut rng, &mut out);
        telemetry.record_request_span(started);
        i += 1;
    }
    out
}

/// Handle one decoded frame, appending its encoded response to `out`.
/// Protocol and selection errors are answered in-band.
fn execute_one(
    frame: &Frame,
    core: &Arc<ServiceCore>,
    aggregator: &Arc<DrawAggregator>,
    rng: &mut MersenneTwister64,
    out: &mut Vec<u8>,
) {
    let Some(opcode) = OpCode::from_u8(frame.opcode) else {
        encode_err(
            out,
            codes::PROTOCOL,
            &format!("unknown opcode {:#04x}", frame.opcode),
        );
        return;
    };
    // Decode-and-execute; any ServiceError becomes an in-band error frame.
    let outcome: Result<Vec<u8>, (u8, String)> = match opcode {
        OpCode::Draw => aggregator
            .draw()
            .map(|index| (index as u64).to_le_bytes().to_vec())
            .map_err(|e| (error_code(&e), e.to_string())),
        OpCode::DrawBatch => decode_count(&frame.payload).and_then(|count| {
            core.draw_many(rng, count as usize)
                .map(|indices| {
                    let mut payload = Vec::with_capacity(4 + 8 * indices.len());
                    payload.extend_from_slice(&count.to_le_bytes());
                    for index in indices {
                        payload.extend_from_slice(&(index as u64).to_le_bytes());
                    }
                    payload
                })
                .map_err(|e| (error_code(&e), e.to_string()))
        }),
        OpCode::Update => decode_update(&frame.payload).and_then(|(index, weight)| {
            core.update(index, weight)
                .map(|()| Vec::new())
                .map_err(|e| (error_code(&e), e.to_string()))
        }),
        OpCode::UpdateBatch => decode_update_batch(&frame.payload).and_then(|updates| {
            core.update_many(&updates)
                .map(|()| Vec::new())
                .map_err(|e| (error_code(&e), e.to_string()))
        }),
        OpCode::Scale => decode_scale(&frame.payload).and_then(|factor| {
            core.scale_all(factor)
                .map(|()| Vec::new())
                .map_err(|e| (error_code(&e), e.to_string()))
        }),
        OpCode::Publish => core
            .publish_all()
            .map(|versions| {
                let mut payload = Vec::with_capacity(4 + 8 * versions.len());
                payload.extend_from_slice(&(versions.len() as u32).to_le_bytes());
                for version in versions {
                    payload.extend_from_slice(&version.to_le_bytes());
                }
                payload
            })
            .map_err(|e| (error_code(&e), e.to_string())),
        OpCode::Totals => {
            let totals = core.shard_totals();
            let mut payload = Vec::with_capacity(4 + 8 * totals.len());
            payload.extend_from_slice(&(totals.len() as u32).to_le_bytes());
            for total in totals {
                payload.extend_from_slice(&total.to_bits().to_le_bytes());
            }
            Ok(payload)
        }
        OpCode::Metrics => Ok(core.metrics().to_json().into_bytes()),
    };
    match outcome {
        Ok(payload) => encode_ok(out, &payload),
        Err((code, message)) => encode_err(out, code, &message),
    }
}

fn decode_count(payload: &[u8]) -> Result<u32, (u8, String)> {
    let mut cursor = Cursor::new(payload);
    let count = cursor
        .u32()
        .and_then(|c| cursor.done().map(|()| c))
        .map_err(|e| (codes::PROTOCOL, e.to_string()))?;
    if count > MAX_BATCH {
        return Err((
            codes::PROTOCOL,
            format!("batch count {count} exceeds {MAX_BATCH}"),
        ));
    }
    Ok(count)
}

fn decode_update(payload: &[u8]) -> Result<(usize, f64), (u8, String)> {
    fn inner(payload: &[u8]) -> Result<(usize, f64), crate::error::ServiceError> {
        let mut cursor = Cursor::new(payload);
        let index = cursor.u64()? as usize;
        let weight = cursor.f64()?;
        cursor.done()?;
        Ok((index, weight))
    }
    inner(payload).map_err(|e| (codes::PROTOCOL, e.to_string()))
}

fn decode_update_batch(payload: &[u8]) -> Result<Vec<(usize, f64)>, (u8, String)> {
    fn inner(payload: &[u8]) -> Result<Vec<(usize, f64)>, crate::error::ServiceError> {
        let mut cursor = Cursor::new(payload);
        let count = cursor.u32()?;
        if count > MAX_BATCH {
            return Err(crate::error::ServiceError::Protocol(format!(
                "batch count {count} exceeds {MAX_BATCH}"
            )));
        }
        let mut updates = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let index = cursor.u64()? as usize;
            let weight = cursor.f64()?;
            updates.push((index, weight));
        }
        cursor.done()?;
        Ok(updates)
    }
    inner(payload).map_err(|e| (codes::PROTOCOL, e.to_string()))
}

fn decode_scale(payload: &[u8]) -> Result<f64, (u8, String)> {
    fn inner(payload: &[u8]) -> Result<f64, crate::error::ServiceError> {
        let mut cursor = Cursor::new(payload);
        let factor = cursor.f64()?;
        cursor.done()?;
        Ok(factor)
    }
    inner(payload).map_err(|e| (codes::PROTOCOL, e.to_string()))
}
