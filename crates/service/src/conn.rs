//! Per-connection state machine for the event-driven server: a resumable
//! [`FrameReader`] on the inbound side, an [`OutBuf`] write buffer with
//! partial-write handling on the outbound side, and the **bounded
//! in-flight budget** between them.
//!
//! The budget is the server's connection-level backpressure: a connection
//! may have at most [`ServerConfig::inflight_budget`] decoded frames that
//! have not yet been answered (queued + executing). Once the budget is
//! reached the reactor stops reading that connection — the `k+1`st frame
//! stays in the kernel socket buffer (and ultimately pushes back on the
//! client through TCP flow control) until responses drain. Thread-per-
//! connection needed an unbounded thread stack per client to get the same
//! effect; here it is one counter.
//!
//! Responses are correlated **by order**: frames execute strictly in the
//! order they arrived on the connection (one run of frames is in flight at
//! a time), so a pipelining client matches the `n`th response to the `n`th
//! request without any message ids on the wire.
//!
//! Everything here is transport-generic (`S: Read + Write`), so the budget
//! and partial-write behaviour are unit-tested against in-memory streams —
//! no sockets required — and the same state machine drives TCP and UDS
//! connections identically.
//!
//! [`ServerConfig::inflight_budget`]: crate::server::ServerConfig

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex};

use lrb_rng::{MersenneTwister64, SeedableSource};

use crate::protocol::{Frame, FrameReader};

/// Once this many already-written bytes accumulate at the front of the
/// outbound buffer, they are compacted away so a long-lived connection's
/// buffer does not grow monotonically.
const COMPACT_THRESHOLD: usize = 16 * 1024;

/// Outbound byte buffer with partial-write (`EWOULDBLOCK`) handling.
///
/// Responses for a connection append here (many frames coalesce into one
/// contiguous buffer, so a pipelined burst leaves in one `write` syscall
/// when the socket accepts it) and [`flush`](Self::flush) advances a write
/// cursor instead of draining, so a short write costs no memmove.
#[derive(Debug, Default)]
pub(crate) struct OutBuf {
    buf: Vec<u8>,
    /// Bytes before `pos` are already written to the socket.
    pos: usize,
}

impl OutBuf {
    /// Bytes still waiting to be written.
    pub(crate) fn len(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether anything is waiting to be written.
    pub(crate) fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Queue `bytes` behind whatever is still unwritten.
    pub(crate) fn append(&mut self, bytes: &[u8]) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= COMPACT_THRESHOLD {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Write as much as the sink accepts. Returns `Ok(true)` when the
    /// buffer fully drained, `Ok(false)` on `WouldBlock` with the cursor
    /// parked mid-frame (the reactor arms `EPOLLOUT` and resumes later),
    /// and `Err` on a transport failure.
    pub(crate) fn flush(&mut self, sink: &mut impl Write) -> io::Result<bool> {
        while self.pos < self.buf.len() {
            match sink.write(&self.buf[self.pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.pos += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.pos = 0;
        Ok(true)
    }
}

/// One multiplexed connection owned by a reactor thread.
///
/// The reactor does **all** socket I/O for the connection; workers only see
/// cloned handles to [`rng`](Self::rng) and post finished response bytes
/// back through the reactor's completion queue. That keeps every `read`/
/// `write` on a given fd on one thread — no fd races with teardown.
#[derive(Debug)]
pub(crate) struct Connection<S> {
    /// The nonblocking socket (TCP or UDS).
    pub(crate) sock: S,
    /// Resumable frame parser (survives frames split across segments).
    reader: FrameReader,
    /// Outbound responses, in request order.
    out: OutBuf,
    /// Decoded frames waiting for a worker (order preserved).
    pending: VecDeque<Frame>,
    /// Whether a run of frames is currently out with a worker.
    executing: bool,
    /// Decoded-but-unanswered frames (pending + executing run).
    inflight: usize,
    /// Per-connection RNG for `DRAW_BATCH` and coalesced draw runs;
    /// shared with the worker executing this connection's current run
    /// (runs are serial per connection, so the lock is never contended).
    pub(crate) rng: Arc<Mutex<MersenneTwister64>>,
    /// Reading is paused because the in-flight budget is exhausted.
    pub(crate) read_deferred: bool,
    /// The epoll interest mask currently registered for this connection.
    pub(crate) interest: u32,
}

impl<S: Read + Write> Connection<S> {
    /// A fresh connection over `sock`, drawing from an RNG seeded with
    /// `rng_seed`.
    pub(crate) fn new(sock: S, rng_seed: u64) -> Self {
        Self {
            sock,
            reader: FrameReader::new(),
            out: OutBuf::default(),
            pending: VecDeque::new(),
            executing: false,
            inflight: 0,
            rng: Arc::new(Mutex::new(MersenneTwister64::seed_from_u64(rng_seed))),
            read_deferred: false,
            interest: 0,
        }
    }

    /// Decoded-but-unanswered frames on this connection.
    pub(crate) fn inflight(&self) -> usize {
        self.inflight
    }

    /// Whether unwritten response bytes are buffered (the reactor keeps
    /// `EPOLLOUT` armed while true).
    pub(crate) fn wants_write(&self) -> bool {
        !self.out.is_empty()
    }

    /// Read and decode frames until the socket drains (`WouldBlock`) or
    /// the in-flight `budget` is reached. Returns `Ok(true)` if reading
    /// was *newly* deferred by the budget — the caller must drop read
    /// interest until [`complete`](Self::complete) frees budget —
    /// `Ok(false)` when the kernel buffer drained (or the deferral was
    /// already in force, so it must not be counted again), and `Err` on
    /// EOF / framing violation / transport error (the caller closes the
    /// connection).
    pub(crate) fn read_frames(&mut self, budget: usize) -> io::Result<bool> {
        if self.read_deferred {
            // EPOLLRDHUP stays armed while reads are deferred, so a
            // half-close can land here with the budget still exhausted;
            // the deferral is already accounted for.
            return Ok(false);
        }
        while self.inflight < budget {
            match self.reader.poll(&mut self.sock)? {
                Some(frame) => {
                    self.pending.push_back(frame);
                    self.inflight += 1;
                }
                None => return Ok(false),
            }
        }
        self.read_deferred = true;
        Ok(true)
    }

    /// Take the next run of frames for a worker: everything pending, in
    /// arrival order, if no run is already executing. At most one run per
    /// connection is in flight at a time, which is what makes response
    /// order == request order without sequence numbers.
    pub(crate) fn take_run(&mut self) -> Option<Vec<Frame>> {
        if self.executing || self.pending.is_empty() {
            return None;
        }
        self.executing = true;
        Some(self.pending.drain(..).collect())
    }

    /// Accept a finished run's response bytes: `frames` requests are now
    /// answered and their encoded responses queue for write. The caller
    /// flushes and then checks [`outbound_len`](Self::outbound_len)
    /// against the slow-consumer cap — the cap judges the backlog the
    /// socket refused, not the size of a single response.
    pub(crate) fn complete(&mut self, bytes: &[u8], frames: usize) {
        debug_assert!(self.executing, "completion without an executing run");
        self.executing = false;
        self.inflight = self.inflight.saturating_sub(frames);
        self.out.append(bytes);
    }

    /// Bytes buffered for write (the slow-consumer backlog).
    pub(crate) fn outbound_len(&self) -> usize {
        self.out.len()
    }

    /// Flush buffered responses; see [`OutBuf::flush`].
    pub(crate) fn flush(&mut self) -> io::Result<bool> {
        self.out.flush(&mut self.sock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{encode_request, OpCode};

    /// In-memory "socket": reads from `input` (then `WouldBlock`, like an
    /// idle nonblocking socket), writes into `written` accepting at most
    /// `write_cap` bytes per call with a `WouldBlock` interleaved after
    /// every accepted chunk — the worst-case slow peer.
    struct FakeSock {
        input: Vec<u8>,
        at: usize,
        written: Vec<u8>,
        write_cap: usize,
        starve_write: bool,
    }

    impl FakeSock {
        fn with_input(input: Vec<u8>) -> Self {
            Self {
                input,
                at: 0,
                written: Vec::new(),
                write_cap: usize::MAX,
                starve_write: false,
            }
        }
        fn unread(&self) -> usize {
            self.input.len() - self.at
        }
    }

    impl Read for FakeSock {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.at == self.input.len() {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "idle"));
            }
            let n = buf.len().min(self.input.len() - self.at);
            buf[..n].copy_from_slice(&self.input[self.at..self.at + n]);
            self.at += n;
            Ok(n)
        }
    }

    impl Write for FakeSock {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.starve_write {
                self.starve_write = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            let n = buf.len().min(self.write_cap);
            self.written.extend_from_slice(&buf[..n]);
            if self.write_cap != usize::MAX {
                self.starve_write = true;
            }
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn draw_frames(n: usize) -> Vec<u8> {
        let mut wire = Vec::new();
        for _ in 0..n {
            encode_request(&mut wire, OpCode::Draw, &[]);
        }
        wire
    }

    #[test]
    fn budget_defers_the_k_plus_first_frame_until_a_response_drains() {
        // Six frames arrive at once; with a budget of 4 the reactor must
        // decode exactly 4 and leave the rest unread in the "kernel".
        let sock = FakeSock::with_input(draw_frames(6));
        let mut conn = Connection::new(sock, 7);
        let deferred = conn.read_frames(4).unwrap();
        assert!(deferred, "budget was reached, reading must defer");
        assert!(conn.read_deferred);
        assert_eq!(conn.inflight(), 4);
        // A second readiness event while deferred (e.g. EPOLLRDHUP on a
        // half-close) must not report the deferral a second time.
        assert!(
            !conn.read_frames(4).unwrap(),
            "an in-force deferral is not a new deferral"
        );
        assert!(conn.read_deferred, "the deferral itself stays in force");
        assert_eq!(
            conn.sock.unread(),
            draw_frames(2).len(),
            "the 5th and 6th frames must stay unread in the socket buffer"
        );

        // A worker takes the run; nothing more is readable until it
        // completes.
        let run = conn.take_run().unwrap();
        assert_eq!(run.len(), 4);
        assert!(conn.take_run().is_none(), "one run in flight at a time");

        // Responses drain the budget: now (and only now) the remaining
        // frames may be read.
        let mut ok = Vec::new();
        crate::protocol::encode_ok(&mut ok, &0u64.to_le_bytes());
        let bytes: Vec<u8> = ok.repeat(4);
        conn.complete(&bytes, 4);
        conn.read_deferred = false;
        assert_eq!(conn.inflight(), 0);
        let deferred = conn.read_frames(4).unwrap();
        assert!(!deferred);
        assert_eq!(conn.inflight(), 2);
        assert_eq!(conn.sock.unread(), 0);
        assert_eq!(conn.take_run().unwrap().len(), 2);
    }

    #[test]
    fn torn_frames_resume_across_reads() {
        // A frame split at every byte must decode once the bytes arrive.
        let wire = draw_frames(2);
        let mut conn = Connection::new(FakeSock::with_input(Vec::new()), 1);
        for &byte in &wire {
            conn.sock.input.push(byte);
            let _ = conn.read_frames(64).unwrap();
        }
        assert_eq!(conn.inflight(), 2);
        assert_eq!(conn.take_run().unwrap().len(), 2);
    }

    #[test]
    fn out_buf_survives_partial_writes_and_compaction() {
        let mut out = OutBuf::default();
        let payload: Vec<u8> = (0..=255u8).cycle().take(40_000).collect();
        out.append(&payload);
        let mut sink = FakeSock::with_input(Vec::new());
        sink.write_cap = 3; // 3 bytes per write, WouldBlock in between
        let mut rounds = 0usize;
        while !out.flush(&mut sink).unwrap() {
            rounds += 1;
            assert!(rounds < 100_000, "flush never completed");
            if rounds == 5 {
                // Mid-flush append must not corrupt the stream.
                out.append(&[0xAA, 0xBB]);
            }
        }
        assert!(out.is_empty());
        let mut expected = payload.clone();
        expected.extend_from_slice(&[0xAA, 0xBB]);
        assert_eq!(sink.written, expected);
    }

    #[test]
    fn slow_consumer_backlog_is_what_the_socket_refused() {
        let sock = FakeSock::with_input(draw_frames(1));
        let mut conn = Connection::new(sock, 3);
        conn.read_frames(64).unwrap();
        conn.take_run().unwrap();
        // The peer accepts 100 bytes and then stalls: the backlog the cap
        // judges is what remains after flushing, not the response size.
        conn.sock.write_cap = 100;
        let big = vec![0u8; 4096];
        conn.complete(&big, 1);
        assert_eq!(conn.outbound_len(), 4096);
        assert!(
            !conn.flush().unwrap(),
            "stalled peer must report WouldBlock"
        );
        assert_eq!(conn.outbound_len(), 4096 - 100);
        assert!(conn.outbound_len() > 1024, "backlog exceeds a 1 KiB cap");
    }

    #[test]
    fn write_zero_is_a_transport_error() {
        struct Dead;
        impl Write for Dead {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut out = OutBuf::default();
        out.append(&[1, 2, 3]);
        assert_eq!(
            out.flush(&mut Dead).unwrap_err().kind(),
            io::ErrorKind::WriteZero
        );
    }
}
