//! The event-driven service front: N reactor threads multiplex every
//! connection over raw `epoll`, and a small worker pool executes decoded
//! frames — server threads are **O(reactors + workers)**, never
//! O(connections).
//!
//! ## Shape
//!
//! ```text
//!  accept thread ──round-robin──▶ reactor 0..R   (epoll_wait loop)
//!                                   │  ▲
//!                       decoded     │  │ completions (response bytes)
//!                       frame runs  ▼  │ + eventfd wakeup
//!                                 worker pool 0..W ──▶ ServiceCore /
//!                                                      DrawAggregator
//! ```
//!
//! Each reactor thread owns an epoll instance and the [`Connection`] state
//! of every socket registered with it. The loop is purely event-driven
//! (`epoll_wait` with no timeout): readable sockets feed the resumable
//! `FrameReader`, complete frames queue per connection, and a **run** of
//! consecutive frames goes to the worker pool as one job. Workers never
//! touch a socket — they post encoded response bytes back through the
//! reactor's completion queue and ring its eventfd, and the reactor alone
//! writes (so fd lifetime is single-threaded and teardown cannot race a
//! write). Backpressure, ordering and partial-write handling live in
//! [`crate::conn`]; this module is the readiness loop and the thread pool.
//!
//! ## Safety
//!
//! `std` exposes no epoll API and crates.io is unreachable, so the five
//! syscalls this module needs (`epoll_create1`, `epoll_ctl`, `epoll_wait`,
//! `eventfd`, `close`) are declared directly against libc, which `std`
//! already links. This is the crate's single audited `#[allow(unsafe_code)]`
//! island, confined to the [`sys`] submodule:
//!
//! * every fd is owned by exactly one wrapper ([`sys::Epoll`] or the
//!   eventfd's `File`) and closed exactly once on drop;
//! * `epoll_wait` writes at most `events.len()` entries and only entries
//!   `..n` are read back;
//! * `epoll_event` is declared `#[repr(C, packed)]` on x86-64 (the one
//!   architecture where the kernel packs it) and plain `#[repr(C)]`
//!   elsewhere, and its fields are only ever copied out, never
//!   referenced.

#[cfg(target_os = "linux")]
pub(crate) use imp::{
    run_reactor, run_worker, JobQueue, ReactorContext, ReactorShared, Registration, Socket,
};

#[cfg(target_os = "linux")]
mod imp {
    use std::collections::{HashMap, VecDeque};
    use std::fs::File;
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Instant;

    use lrb_rng::MersenneTwister64;

    use crate::aggregator::DrawAggregator;
    use crate::conn::Connection;
    use crate::protocol::Frame;
    use crate::server::execute_run;
    use crate::sharded::ServiceCore;

    use super::sys;

    /// Token reserved for the reactor's own eventfd.
    const WAKE_TOKEN: u64 = u64::MAX;

    /// `epoll_wait` batch size per loop iteration.
    const MAX_EVENTS: usize = 256;

    /// While draining, `epoll_wait` polls at this cadence so the loop can
    /// observe the drain deadline even with no socket activity.
    const DRAIN_POLL_MS: i32 = 10;

    /// A nonblocking accepted socket, TCP or UDS.
    #[derive(Debug)]
    pub(crate) enum Socket {
        /// A TCP connection.
        Tcp(TcpStream),
        /// A Unix-domain connection.
        Unix(UnixStream),
    }

    impl Socket {
        fn raw_fd(&self) -> i32 {
            match self {
                Socket::Tcp(s) => s.as_raw_fd(),
                Socket::Unix(s) => s.as_raw_fd(),
            }
        }
    }

    impl Read for Socket {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            match self {
                Socket::Tcp(s) => s.read(buf),
                Socket::Unix(s) => s.read(buf),
            }
        }
    }

    impl Write for Socket {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            match self {
                Socket::Tcp(s) => s.write(buf),
                Socket::Unix(s) => s.write(buf),
            }
        }
        fn flush(&mut self) -> std::io::Result<()> {
            match self {
                Socket::Tcp(s) => s.flush(),
                Socket::Unix(s) => s.flush(),
            }
        }
    }

    /// A new connection handed from the accept thread to a reactor.
    pub(crate) struct Registration {
        /// The accepted socket, already nonblocking.
        pub(crate) socket: Socket,
        /// The connection's epoll token (process-unique, never reused).
        pub(crate) token: u64,
        /// Seed for the connection's server-side RNG stream.
        pub(crate) rng_seed: u64,
    }

    /// A finished run's response bytes, posted by a worker.
    pub(crate) struct Completion {
        /// The connection the run belonged to.
        pub(crate) token: u64,
        /// Encoded response frames, in request order.
        pub(crate) bytes: Vec<u8>,
        /// How many requests the run answered.
        pub(crate) frames: usize,
    }

    /// One frame run headed for the worker pool.
    pub(crate) struct Job {
        /// Index of the reactor that owns the connection.
        pub(crate) reactor: usize,
        /// The connection's token.
        pub(crate) token: u64,
        /// The frames to execute, in arrival order.
        pub(crate) frames: Vec<Frame>,
        /// The connection's RNG (uncontended: one run per connection).
        pub(crate) rng: Arc<Mutex<MersenneTwister64>>,
    }

    /// The shared face of one reactor thread: its epoll instance, its
    /// eventfd, and the queues other threads feed it through.
    pub(crate) struct ReactorShared {
        epoll: sys::Epoll,
        /// Nonblocking eventfd; any writer rings it to wake `epoll_wait`.
        wake: File,
        registrations: Mutex<Vec<Registration>>,
        completions: Mutex<Vec<Completion>>,
        shutdown: AtomicBool,
        /// Graceful-drain mode: stop reading new requests, let in-flight
        /// runs complete and responses flush, then exit.
        draining: AtomicBool,
        /// Wall-clock bound on the drain; connections still busy past it
        /// are abandoned.
        drain_deadline: Mutex<Option<Instant>>,
    }

    impl ReactorShared {
        pub(crate) fn new() -> std::io::Result<Self> {
            Ok(Self {
                epoll: sys::Epoll::new()?,
                wake: sys::new_eventfd()?,
                registrations: Mutex::new(Vec::new()),
                completions: Mutex::new(Vec::new()),
                shutdown: AtomicBool::new(false),
                draining: AtomicBool::new(false),
                drain_deadline: Mutex::new(None),
            })
        }

        /// Ring the reactor's eventfd (never blocks: the counter saturates).
        pub(crate) fn wake(&self) {
            let _ = (&self.wake).write(&1u64.to_ne_bytes());
        }

        /// Hand the reactor a new connection.
        pub(crate) fn register(&self, registration: Registration) {
            self.registrations
                .lock()
                .expect("registration queue poisoned")
                .push(registration);
            self.wake();
        }

        /// Post a finished run's responses.
        pub(crate) fn post_completion(&self, completion: Completion) {
            self.completions
                .lock()
                .expect("completion queue poisoned")
                .push(completion);
            self.wake();
        }

        /// Ask the reactor thread to exit (it closes every connection).
        pub(crate) fn request_shutdown(&self) {
            self.shutdown.store(true, Ordering::Release);
            self.wake();
        }

        /// Ask the reactor to drain gracefully: stop reading requests,
        /// complete in-flight runs, flush responses, then exit — or
        /// abandon whatever is still busy at `deadline`.
        pub(crate) fn request_drain(&self, deadline: Instant) {
            *self.drain_deadline.lock().expect("drain deadline poisoned") = Some(deadline);
            self.draining.store(true, Ordering::Release);
            self.wake();
        }

        fn is_draining(&self) -> bool {
            self.draining.load(Ordering::Acquire)
        }

        fn deadline(&self) -> Option<Instant> {
            *self.drain_deadline.lock().expect("drain deadline poisoned")
        }
    }

    /// The worker pool's shared injection queue. FIFO, so a burst of
    /// arrivals cannot starve the oldest waiting connection.
    pub(crate) struct JobQueue {
        queue: Mutex<VecDeque<Job>>,
        available: Condvar,
        stop: AtomicBool,
    }

    impl JobQueue {
        pub(crate) fn new() -> Self {
            Self {
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                stop: AtomicBool::new(false),
            }
        }

        fn push(&self, job: Job) {
            self.queue
                .lock()
                .expect("job queue poisoned")
                .push_back(job);
            self.available.notify_one();
        }

        fn pop(&self) -> Option<Job> {
            let mut queue = self.queue.lock().expect("job queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    return Some(job);
                }
                if self.stop.load(Ordering::Acquire) {
                    return None;
                }
                queue = self.available.wait(queue).expect("job queue wait poisoned");
            }
        }

        /// Stop every worker once the queue drains.
        pub(crate) fn shutdown(&self) {
            self.stop.store(true, Ordering::Release);
            self.available.notify_all();
        }
    }

    /// Everything one reactor thread needs.
    pub(crate) struct ReactorContext {
        /// This reactor's shared face.
        pub(crate) shared: Arc<ReactorShared>,
        /// This reactor's index (stamped into jobs for completion routing).
        pub(crate) index: usize,
        /// The service core (telemetry only, on this thread).
        pub(crate) core: Arc<ServiceCore>,
        /// The worker pool's injection queue.
        pub(crate) jobs: Arc<JobQueue>,
        /// Per-connection in-flight frame budget.
        pub(crate) budget: usize,
        /// Slow-consumer cap on buffered outbound bytes per connection.
        pub(crate) max_outbound: usize,
    }

    /// Worker-pool thread body: pop a run, execute it against the core,
    /// post the encoded responses back to the owning reactor.
    pub(crate) fn run_worker(
        jobs: Arc<JobQueue>,
        reactors: Arc<Vec<Arc<ReactorShared>>>,
        core: Arc<ServiceCore>,
        aggregator: Arc<DrawAggregator>,
    ) {
        while let Some(job) = jobs.pop() {
            let bytes = execute_run(&job.frames, &core, &aggregator, &job.rng);
            let frames = job.frames.len();
            reactors[job.reactor].post_completion(Completion {
                token: job.token,
                bytes,
                frames,
            });
        }
    }

    /// What an I/O step decided about a connection's fate.
    enum Fate {
        Keep,
        Close,
    }

    /// Reactor thread body: the epoll readiness loop.
    pub(crate) fn run_reactor(ctx: ReactorContext) {
        let mut conns: HashMap<u64, Connection<Socket>> = HashMap::new();
        if ctx
            .shared
            .epoll
            .add(ctx.shared.wake.as_raw_fd(), sys::EPOLLIN, WAKE_TOKEN)
            .is_err()
        {
            return; // nothing can wake us; the server start aborts
        }
        let mut events = vec![sys::EpollEvent::zeroed(); MAX_EVENTS];
        // Whether the one-shot entry into drain mode has run (read
        // interest dropped on every connection).
        let mut drain_started = false;
        loop {
            // Draining polls so the deadline is observed even when every
            // socket is quiet; normal operation blocks indefinitely.
            let timeout = if drain_started { DRAIN_POLL_MS } else { -1 };
            let Ok(n) = ctx.shared.epoll.wait_timeout(&mut events, timeout) else {
                break;
            };
            for event in &events[..n] {
                let (bits, token) = event.parts();
                if token == WAKE_TOKEN {
                    // Drain the eventfd counter; queues are drained below.
                    let mut scratch = [0u8; 8];
                    let _ = (&ctx.shared.wake).read(&mut scratch);
                    continue;
                }
                let fate = handle_io(&ctx, &mut conns, token, bits);
                if matches!(fate, Fate::Close) {
                    close_conn(&ctx, &mut conns, token);
                }
            }
            if ctx.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            // New connections and finished runs arrive through the queues;
            // drain them every iteration (they are usually empty, and the
            // eventfd guarantees a wakeup whenever they are not).
            let registrations: Vec<Registration> = std::mem::take(
                &mut ctx
                    .shared
                    .registrations
                    .lock()
                    .expect("registration queue poisoned"),
            );
            for registration in registrations {
                install(&ctx, &mut conns, registration);
            }
            let completions: Vec<Completion> = std::mem::take(
                &mut ctx
                    .shared
                    .completions
                    .lock()
                    .expect("completion queue poisoned"),
            );
            for completion in completions {
                let token = completion.token;
                if matches!(handle_completion(&ctx, &mut conns, completion), Fate::Close) {
                    close_conn(&ctx, &mut conns, token);
                }
            }
            if ctx.shared.is_draining() {
                if !drain_started {
                    drain_started = true;
                    // Stop reading everywhere: update_interest excludes
                    // EPOLLIN while draining, so one reconcile pass drops
                    // read interest from every connection.
                    for (&token, conn) in conns.iter_mut() {
                        update_interest(&ctx, conn, token);
                    }
                }
                let busy = conns
                    .values()
                    .filter(|conn| conn.inflight() > 0 || conn.wants_write())
                    .count();
                let expired = ctx
                    .shared
                    .deadline()
                    .is_some_and(|deadline| Instant::now() >= deadline);
                if busy == 0 || expired {
                    ctx.core
                        .telemetry()
                        .record_drained(conns.len() as u64, busy as u64);
                    break;
                }
            }
        }
        // Teardown: every connection's socket closes when the map drops;
        // peers observe EOF.
        let telemetry = ctx.core.telemetry();
        for _ in conns.drain() {
            telemetry.record_disconnect();
        }
    }

    /// Register a freshly accepted connection with epoll.
    fn install(
        ctx: &ReactorContext,
        conns: &mut HashMap<u64, Connection<Socket>>,
        registration: Registration,
    ) {
        let mut conn = Connection::new(registration.socket, registration.rng_seed);
        let interest = sys::EPOLLIN | sys::EPOLLRDHUP;
        if ctx
            .shared
            .epoll
            .add(conn.sock.raw_fd(), interest, registration.token)
            .is_err()
        {
            return; // fd exhausted or dead socket; drop it
        }
        conn.interest = interest;
        ctx.core.telemetry().record_connect();
        conns.insert(registration.token, conn);
    }

    /// React to readiness bits on a connection.
    fn handle_io(
        ctx: &ReactorContext,
        conns: &mut HashMap<u64, Connection<Socket>>,
        token: u64,
        bits: u32,
    ) -> Fate {
        let Some(conn) = conns.get_mut(&token) else {
            return Fate::Keep; // closed earlier this iteration
        };
        if bits & (sys::EPOLLHUP | sys::EPOLLERR) != 0 {
            return Fate::Close;
        }
        if bits & sys::EPOLLOUT != 0 && conn.flush().is_err() {
            return Fate::Close;
        }
        // While draining, requests still sitting in the kernel buffer are
        // not accepted — the drain completes what is in flight, nothing
        // more. (A peer hangup still closes via EPOLLHUP/EPOLLERR above.)
        if bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0 && !ctx.shared.is_draining() {
            match conn.read_frames(ctx.budget) {
                Ok(deferred) => {
                    if deferred {
                        ctx.core.telemetry().record_read_deferred();
                    }
                }
                // EOF, framing violation or transport error: the protocol
                // has no half-close, so any pending responses die with the
                // connection.
                Err(_) => return Fate::Close,
            }
            submit_run(ctx, conn, token);
        }
        update_interest(ctx, conn, token);
        Fate::Keep
    }

    /// Hand the connection's next pending run to the worker pool.
    fn submit_run(ctx: &ReactorContext, conn: &mut Connection<Socket>, token: u64) {
        let depth = conn.inflight();
        if let Some(frames) = conn.take_run() {
            ctx.core.telemetry().record_submit_depth(depth as u64);
            ctx.jobs.push(Job {
                reactor: ctx.index,
                token,
                frames,
                rng: Arc::clone(&conn.rng),
            });
        }
    }

    /// Fold a finished run back into its connection: queue the responses,
    /// flush, re-open the read side if the budget freed, start the next
    /// run.
    fn handle_completion(
        ctx: &ReactorContext,
        conns: &mut HashMap<u64, Connection<Socket>>,
        completion: Completion,
    ) -> Fate {
        let Some(conn) = conns.get_mut(&completion.token) else {
            return Fate::Keep; // connection died while the run executed
        };
        conn.complete(&completion.bytes, completion.frames);
        if conn.flush().is_err() {
            return Fate::Close;
        }
        // The slow-consumer cap judges the backlog the socket refused to
        // take, so a fast consumer may receive responses of any size while
        // a stalled one cannot pin unbounded memory.
        if conn.outbound_len() > ctx.max_outbound {
            ctx.core
                .telemetry()
                .record_slow_consumer(completion.token, conn.outbound_len() as u64);
            return Fate::Close;
        }
        if conn.read_deferred && conn.inflight() < ctx.budget {
            // Budget freed: re-arm EPOLLIN below. Level-triggered epoll
            // re-fires immediately if the kernel buffer still holds the
            // frames we deferred.
            conn.read_deferred = false;
        }
        submit_run(ctx, conn, completion.token);
        update_interest(ctx, conn, completion.token);
        Fate::Keep
    }

    /// Reconcile the connection's epoll interest mask with its state:
    /// read interest unless the budget deferred it (or a drain closed the
    /// read side for good), write interest while responses are buffered.
    fn update_interest(ctx: &ReactorContext, conn: &mut Connection<Socket>, token: u64) {
        let mut desired = sys::EPOLLRDHUP;
        if !conn.read_deferred && !ctx.shared.is_draining() {
            desired |= sys::EPOLLIN;
        }
        if conn.wants_write() {
            desired |= sys::EPOLLOUT;
        }
        if desired != conn.interest
            && ctx
                .shared
                .epoll
                .modify(conn.sock.raw_fd(), desired, token)
                .is_ok()
        {
            conn.interest = desired;
        }
    }

    /// Drop a connection: deregister, close the socket, count it.
    fn close_conn(ctx: &ReactorContext, conns: &mut HashMap<u64, Connection<Socket>>, token: u64) {
        if let Some(conn) = conns.remove(&token) {
            let _ = ctx.shared.epoll.delete(conn.sock.raw_fd());
            ctx.core.telemetry().record_disconnect();
        }
    }
}

/// Raw epoll/eventfd syscall surface — the audited unsafe island (see the
/// module docs for the safety argument).
#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
pub(crate) mod sys {
    use std::fs::File;
    use std::io;
    use std::os::raw::{c_int, c_uint};
    use std::os::unix::io::{FromRawFd, RawFd};

    /// Readable (or a peer hangup with level-triggered reporting).
    pub(crate) const EPOLLIN: u32 = 0x001;
    /// Writable.
    pub(crate) const EPOLLOUT: u32 = 0x004;
    /// Error condition (always reported, never requested).
    pub(crate) const EPOLLERR: u32 = 0x008;
    /// Hangup (always reported, never requested).
    pub(crate) const EPOLLHUP: u32 = 0x010;
    /// Peer closed its write side.
    pub(crate) const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EFD_CLOEXEC: c_int = 0o2000000;
    const EFD_NONBLOCK: c_int = 0o4000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// `struct epoll_event`, matching the kernel ABI for the target
    /// architecture: the kernel packs it (12 bytes) only on x86-64;
    /// everywhere else `data` keeps natural 8-byte alignment (16 bytes).
    /// Fields are only ever copied out ([`parts`](Self::parts)) — a
    /// reference to a packed field would be UB, so none are taken.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub(crate) struct EpollEvent {
        events: u32,
        data: u64,
    }

    impl EpollEvent {
        /// An empty event slot for the `epoll_wait` output buffer.
        pub(crate) fn zeroed() -> Self {
            Self { events: 0, data: 0 }
        }

        /// Copy out `(events, token)`.
        pub(crate) fn parts(&self) -> (u32, u64) {
            let events = self.events;
            let data = self.data;
            (events, data)
        }
    }

    /// An owned epoll instance; the fd closes exactly once on drop.
    #[derive(Debug)]
    pub(crate) struct Epoll {
        fd: RawFd,
    }

    impl Epoll {
        /// `epoll_create1(EPOLL_CLOEXEC)`.
        pub(crate) fn new() -> io::Result<Self> {
            // SAFETY: no pointers; a failed call returns -1 with errno set.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { fd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut event = EpollEvent {
                events,
                data: token,
            };
            // SAFETY: `event` outlives the call (the kernel copies it) and
            // DEL ignores the pointer on modern kernels but a valid one is
            // passed anyway.
            let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut event) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Register `fd` with interest `events` under `token`.
        pub(crate) fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, events, token)
        }

        /// Change `fd`'s interest mask.
        pub(crate) fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, events, token)
        }

        /// Deregister `fd`.
        pub(crate) fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Block until readiness, or for `timeout_ms` milliseconds
        /// (`-1` blocks forever, `0` polls); fills `events` and returns
        /// how many entries are valid. Returns `Ok(0)` on timeout. An
        /// `EINTR` retries with the full timeout — acceptable for the
        /// drain polling the timeout exists for.
        pub(crate) fn wait_timeout(
            &self,
            events: &mut [EpollEvent],
            timeout_ms: c_int,
        ) -> io::Result<usize> {
            loop {
                // SAFETY: the kernel writes at most `events.len()` entries
                // into the buffer, which is valid for that length; the
                // return value bounds how many the caller may read.
                let n = unsafe {
                    epoll_wait(
                        self.fd,
                        events.as_mut_ptr(),
                        events.len() as c_int,
                        timeout_ms,
                    )
                };
                if n >= 0 {
                    return Ok(n as usize);
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: `self.fd` is owned by this wrapper and closed once.
            unsafe {
                close(self.fd);
            }
        }
    }

    /// A nonblocking `eventfd` wrapped in a `File` (which owns and closes
    /// the fd); writes of `1u64` ring it, an 8-byte read drains it.
    pub(crate) fn new_eventfd() -> io::Result<File> {
        // SAFETY: no pointers; on success the fd is immediately and
        // uniquely owned by the returned `File`.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(unsafe { File::from_raw_fd(fd) })
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::io::{Read, Write};
        use std::os::unix::io::AsRawFd;
        use std::os::unix::net::UnixStream;

        #[test]
        fn epoll_reports_readability_and_eventfd_wakes() {
            let epoll = Epoll::new().unwrap();
            let (mut a, b) = UnixStream::pair().unwrap();
            b.set_nonblocking(true).unwrap();
            epoll.add(b.as_raw_fd(), EPOLLIN, 42).unwrap();
            let wake = new_eventfd().unwrap();
            epoll.add(wake.as_raw_fd(), EPOLLIN, 7).unwrap();

            a.write_all(b"ping").unwrap();
            (&wake).write_all(&1u64.to_ne_bytes()).unwrap();

            let mut events = vec![EpollEvent::zeroed(); 8];
            let mut seen = Vec::new();
            // Two waits at most: both may arrive in one batch.
            for _ in 0..2 {
                let n = epoll.wait_timeout(&mut events, -1).unwrap();
                for event in &events[..n] {
                    let (bits, token) = event.parts();
                    assert!(bits & EPOLLIN != 0);
                    seen.push(token);
                    if token == 7 {
                        let mut scratch = [0u8; 8];
                        (&wake).read_exact(&mut scratch).unwrap();
                        assert_eq!(u64::from_ne_bytes(scratch), 1);
                    }
                }
                if seen.len() == 2 {
                    break;
                }
            }
            seen.sort_unstable();
            assert_eq!(seen, vec![7, 42]);

            // Interest changes and deregistration round-trip.
            epoll.modify(b.as_raw_fd(), EPOLLIN | EPOLLOUT, 42).unwrap();
            epoll.delete(b.as_raw_fd()).unwrap();
        }
    }
}
