//! The client-facing error type: selection failures, transport failures,
//! malformed frames, and errors reported by the remote side.

use std::fmt;
use std::io;

use lrb_core::SelectionError;

/// Anything a service call can fail with.
#[derive(Debug)]
pub enum ServiceError {
    /// A local selection failure (validation, all-zero mass, …).
    Selection(SelectionError),
    /// A transport failure (connect, read, write, timeout).
    Io(io::Error),
    /// A frame that violated the wire protocol.
    Protocol(String),
    /// An error status returned by the server, with the wire error code
    /// (see [`crate::protocol::codes`]) and the server's message.
    Remote {
        /// The one-byte error code from the response frame.
        code: u8,
        /// The server's human-readable message.
        message: String,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Selection(e) => write!(f, "selection failed: {e}"),
            ServiceError::Io(e) => write!(f, "transport failed: {e}"),
            ServiceError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ServiceError::Remote { code, message } => {
                write!(f, "server error (code {code}): {message}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<SelectionError> for ServiceError {
    fn from(e: SelectionError) -> Self {
        ServiceError::Selection(e)
    }
}

impl From<io::Error> for ServiceError {
    fn from(e: io::Error) -> Self {
        ServiceError::Io(e)
    }
}
