//! Service-level observability: request/draw/update latency histograms,
//! routing counters, the shard-imbalance gauge and a flight-recorder
//! journal of routing decisions and shard publishes.
//!
//! The per-shard engine telemetry (publish/enqueue/reader-draw histograms)
//! stays inside each shard's [`EngineTelemetry`](lrb_engine::EngineTelemetry);
//! [`ServiceCore::metrics`](crate::ServiceCore::metrics) merges those rows
//! into the service's [`MetricsSnapshot`] under shard-prefixed names, so one
//! scrape sees the whole two-level picture.
//!
//! [`MetricsSnapshot`]: lrb_obs::MetricsSnapshot

use std::time::Instant;

use lrb_obs::{Counter, FlightRecorder, Gauge, Histogram, HistogramSnapshot};

/// Ring capacity of the service journal (same depth as the engine's).
pub const SERVICE_JOURNAL_CAPACITY: usize = 256;

/// One service-layer event for the flight recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceEvent {
    /// A draw (or a coalesced batch of draws) was routed to a shard by the
    /// level-one Fenwick pick.
    Route {
        /// The shard the level-one pick landed on.
        shard: u32,
        /// How many draws of the batch landed there.
        draws: u32,
    },
    /// A shard republished its snapshot and refreshed its total cell.
    ShardPublish {
        /// The shard that published.
        shard: u32,
        /// The snapshot version it now serves.
        version: u64,
    },
    /// The level-one totals were re-read from every shard (stale-cut
    /// recovery or an explicit refresh).
    TotalsRefresh,
    /// A connection was disconnected by the slow-consumer policy: its
    /// outbound buffer exceeded the configured cap.
    SlowConsumer {
        /// The connection's reactor token.
        token: u64,
        /// Outbound bytes buffered when the cap tripped.
        buffered: u64,
    },
    /// One reactor finished a graceful drain
    /// ([`ServiceServer::shutdown_within`](crate::ServiceServer::shutdown_within)):
    /// it stopped reading, let in-flight runs complete and flushed
    /// buffered responses before closing.
    Drained {
        /// Connections the reactor held when the drain ended.
        conns: u64,
        /// Connections closed with work still in flight or responses
        /// still buffered because the drain deadline expired.
        abandoned: u64,
    },
}

/// Always-on service telemetry. All paths are lock-free (relaxed counter
/// shards, atomic histogram buckets, a seqlock-free ring), so recording
/// never blocks a request.
#[derive(Debug)]
pub struct ServiceTelemetry {
    /// End-to-end request handling latency (decode → dispatch → encode).
    request_ns: Histogram,
    /// Per-draw service latency (two-level pick + in-shard draw, amortised
    /// per draw for batches).
    draw_ns: Histogram,
    /// Update/scale enqueue latency at the service layer.
    update_ns: Histogram,
    /// Single draws served.
    draws: Counter,
    /// Weight updates accepted.
    updates: Counter,
    /// Shard publishes performed through the service.
    publishes: Counter,
    /// Coalesced batches executed by the draw aggregator.
    batches: Counter,
    /// Single-draw requests that rode in a coalesced batch.
    batched_draws: Counter,
    /// Batches routed through the v2 parallel draw planner.
    planner_batches: Counter,
    /// Max-over-mean of the per-shard totals (1.0 = perfectly balanced).
    imbalance: Gauge,
    /// Connections accepted and registered with a reactor.
    connects: Counter,
    /// Connections closed (any reason).
    disconnects: Counter,
    /// Times a connection's reading was paused by the in-flight budget.
    read_deferrals: Counter,
    /// Connections disconnected by the slow-consumer outbound cap.
    slow_consumer_disconnects: Counter,
    /// In-flight frame depth observed when runs were handed to workers
    /// (queue-depth distribution: how deep pipelining actually runs).
    submit_depth: Histogram,
    /// Last-`SERVICE_JOURNAL_CAPACITY` service events.
    journal: FlightRecorder<ServiceEvent>,
}

impl Default for ServiceTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceTelemetry {
    /// Fresh, empty telemetry.
    pub fn new() -> Self {
        Self {
            request_ns: Histogram::new(),
            draw_ns: Histogram::new(),
            update_ns: Histogram::new(),
            draws: Counter::new(),
            updates: Counter::new(),
            publishes: Counter::new(),
            batches: Counter::new(),
            batched_draws: Counter::new(),
            planner_batches: Counter::new(),
            imbalance: Gauge::new(),
            connects: Counter::new(),
            disconnects: Counter::new(),
            read_deferrals: Counter::new(),
            slow_consumer_disconnects: Counter::new(),
            submit_depth: Histogram::new(),
            journal: FlightRecorder::new(SERVICE_JOURNAL_CAPACITY),
        }
    }

    /// Record one handled request end-to-end.
    pub(crate) fn record_request_span(&self, started: Instant) {
        self.request_ns.record_span(started);
    }

    /// Record `draws` draws that together took `elapsed_ns` (amortised).
    pub(crate) fn record_draws(&self, draws: u64, elapsed_ns: u64) {
        if draws == 0 {
            return;
        }
        self.draws.add(draws);
        self.draw_ns.record(elapsed_ns / draws);
    }

    /// Record `updates` accepted weight updates that took one span.
    pub(crate) fn record_updates(&self, updates: u64, started: Instant) {
        self.updates.add(updates);
        self.update_ns.record_span(started);
    }

    /// Record one shard publish.
    pub(crate) fn record_publish(&self, shard: u32, version: u64) {
        self.publishes.incr();
        self.journal
            .push(ServiceEvent::ShardPublish { shard, version });
    }

    /// Record one coalesced aggregator batch of `draws` single-draw
    /// requests.
    pub(crate) fn record_batch(&self, draws: u64) {
        self.batches.incr();
        self.batched_draws.add(draws);
    }

    /// Record a routing decision.
    pub(crate) fn record_route(&self, shard: u32, draws: u32) {
        self.journal.push(ServiceEvent::Route { shard, draws });
    }

    /// Record one batch planned through the v2 parallel layout.
    pub(crate) fn record_planner_batch(&self) {
        self.planner_batches.incr();
    }

    /// Record a full totals refresh.
    pub(crate) fn record_refresh(&self) {
        self.journal.push(ServiceEvent::TotalsRefresh);
    }

    /// Record one accepted connection.
    pub(crate) fn record_connect(&self) {
        self.connects.incr();
    }

    /// Record one closed connection (any reason).
    pub(crate) fn record_disconnect(&self) {
        self.disconnects.incr();
    }

    /// Record one budget-induced read deferral (backpressure engaged).
    pub(crate) fn record_read_deferred(&self) {
        self.read_deferrals.incr();
    }

    /// Record a slow-consumer disconnect and journal the reason.
    pub(crate) fn record_drained(&self, conns: u64, abandoned: u64) {
        self.journal
            .push(ServiceEvent::Drained { conns, abandoned });
    }

    pub(crate) fn record_slow_consumer(&self, token: u64, buffered: u64) {
        self.slow_consumer_disconnects.incr();
        self.journal
            .push(ServiceEvent::SlowConsumer { token, buffered });
    }

    /// Record the in-flight depth at which a run was handed to a worker.
    pub(crate) fn record_submit_depth(&self, depth: u64) {
        self.submit_depth.record(depth);
    }

    /// Publish the shard-imbalance gauge from a totals cut.
    pub(crate) fn set_imbalance(&self, totals: &[f64]) {
        let sum: f64 = totals.iter().sum();
        if sum <= 0.0 || totals.is_empty() {
            self.imbalance.set(0.0);
            return;
        }
        let mean = sum / totals.len() as f64;
        let max = totals.iter().cloned().fold(0.0f64, f64::max);
        self.imbalance.set(max / mean);
    }

    /// End-to-end request latency distribution.
    pub fn request_latency(&self) -> HistogramSnapshot {
        self.request_ns.snapshot()
    }

    /// Amortised per-draw latency distribution.
    pub fn draw_latency(&self) -> HistogramSnapshot {
        self.draw_ns.snapshot()
    }

    /// Update enqueue latency distribution.
    pub fn update_latency(&self) -> HistogramSnapshot {
        self.update_ns.snapshot()
    }

    /// Draws served so far.
    pub fn draws(&self) -> u64 {
        self.draws.get()
    }

    /// Updates accepted so far.
    pub fn updates(&self) -> u64 {
        self.updates.get()
    }

    /// Shard publishes performed so far.
    pub fn publishes(&self) -> u64 {
        self.publishes.get()
    }

    /// Batches routed through the v2 parallel draw planner so far.
    pub fn planner_batches(&self) -> u64 {
        self.planner_batches.get()
    }

    /// Coalesced aggregator batches so far.
    pub fn batches(&self) -> u64 {
        self.batches.get()
    }

    /// Single draws that were served inside a coalesced batch.
    pub fn batched_draws(&self) -> u64 {
        self.batched_draws.get()
    }

    /// Current max-over-mean shard imbalance (1.0 = balanced, 0.0 = no
    /// mass anywhere).
    pub fn imbalance(&self) -> f64 {
        self.imbalance.get()
    }

    /// Connections accepted so far.
    pub fn connects(&self) -> u64 {
        self.connects.get()
    }

    /// Connections closed so far.
    pub fn disconnects(&self) -> u64 {
        self.disconnects.get()
    }

    /// Budget-induced read deferrals so far (how often backpressure
    /// engaged).
    pub fn read_deferrals(&self) -> u64 {
        self.read_deferrals.get()
    }

    /// Slow-consumer disconnects so far.
    pub fn slow_consumer_disconnects(&self) -> u64 {
        self.slow_consumer_disconnects.get()
    }

    /// Distribution of in-flight depth when runs went to workers.
    pub fn submit_depth(&self) -> HistogramSnapshot {
        self.submit_depth.snapshot()
    }

    /// The recent service events, oldest first.
    pub fn journal(&self) -> Vec<ServiceEvent> {
        self.journal.snapshot()
    }
}
