//! A blocking client for the selection service's binary protocol.
//!
//! One [`ServiceClient`] owns one connection. The simple methods
//! ([`draw`](ServiceClient::draw), [`update`](ServiceClient::update), …)
//! are strict request/response; the **pipelined** surface
//! ([`queue_draw`](ServiceClient::queue_draw) /
//! [`flush`](ServiceClient::flush) /
//! [`recv_draw`](ServiceClient::recv_draw), or the windowed
//! [`draw_pipelined`](ServiceClient::draw_pipelined)) keeps up to a
//! window of requests in flight on the one connection. The server
//! executes a connection's frames strictly in order and answers in that
//! order, so responses correlate by position — no message ids on the
//! wire — and a run of consecutive pipelined draws coalesces server-side
//! into one fused two-level batch.
//!
//! ## Fault tolerance
//!
//! With a [`ClientConfig`] (see
//! [`connect_with`](ServiceClient::connect_with)) the client survives a
//! flaky server: every request-level I/O failure drops the connection,
//! and **idempotent** operations — `DRAW`, `DRAW_BATCH`, `TOTALS`,
//! `METRICS` — are transparently retried on a fresh connection, up to
//! [`ClientConfig::retries`] times, reconnecting with capped exponential
//! backoff and seeded jitter. Mutating operations (`UPDATE`,
//! `UPDATE_BATCH`, `SCALE`, `PUBLISH`) are **never** retried: the failed
//! request may have been applied before the connection died, and
//! replaying it would double-apply the write. Those surface the error;
//! the *next* call reconnects.
//!
//! [`ClientConfig::deadline`] bounds every socket read and write, so a
//! hung server turns into a timeout error (counted in
//! [`ClientStats::timeouts`]) instead of a forever-blocked thread. The
//! default config keeps the legacy behavior: no deadline, no retries.
//!
//! A pipelined burst is *not* retried — its responses correlate by
//! position, and a reconnect would orphan every in-flight request — so
//! an I/O failure there resets the pipeline (queued and outstanding
//! requests are discarded) and surfaces the error.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

use lrb_rng::{RandomSource, SplitMix64};

use crate::error::ServiceError;
use crate::protocol::{encode_request, read_response, write_frame, Cursor, OpCode, MAX_BATCH};
use crate::server::ServerAddr;

/// Fault-tolerance knobs for a [`ServiceClient`]. The default is the
/// legacy behavior: block forever, never retry, never reconnect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientConfig {
    /// Per-request I/O deadline: every socket read and write must
    /// complete within this budget or the request fails with a timeout
    /// (`None` blocks forever).
    pub deadline: Option<Duration>,
    /// How many times an **idempotent** request is retried on a fresh
    /// connection after an I/O failure (0 = never retry).
    pub retries: u32,
    /// Connect attempts per reconnect before giving up (at least 1).
    pub reconnect_attempts: u32,
    /// First reconnect backoff; doubles per failed attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seeds the backoff jitter, so a fleet of clients configured from
    /// the same template still de-synchronises its reconnect storms.
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            deadline: None,
            retries: 0,
            reconnect_attempts: 1,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(1),
            seed: 0x5EED_C11E,
        }
    }
}

/// Monotone fault counters for one [`ServiceClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClientStats {
    /// Idempotent requests re-sent after an I/O failure.
    pub retries: u64,
    /// Successful reconnects (the initial connect is not counted).
    pub reconnects: u64,
    /// Requests that failed by exceeding [`ClientConfig::deadline`].
    pub timeouts: u64,
}

enum Transport {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Transport::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Transport {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Transport::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Transport::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Transport::Unix(s) => s.flush(),
        }
    }
}

/// A blocking connection to a [`ServiceServer`](crate::ServiceServer).
pub struct ServiceClient {
    /// Where to (re)connect. Kept so a dropped connection can be
    /// re-established without the caller's involvement.
    addr: ServerAddr,
    /// The live connection, or `None` after an I/O failure dropped it
    /// (the next request reconnects).
    transport: Option<Transport>,
    /// Queued-but-unsent pipelined request bytes.
    obuf: Vec<u8>,
    /// Requests sent (or queued) whose responses have not been received.
    outstanding: usize,
    config: ClientConfig,
    stats: ClientStats,
    /// Backoff jitter stream.
    jitter: SplitMix64,
}

impl std::fmt::Debug for ServiceClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.transport {
            Some(Transport::Tcp(_)) => "tcp",
            #[cfg(unix)]
            Some(Transport::Unix(_)) => "unix",
            None => "disconnected",
        };
        f.debug_struct("ServiceClient")
            .field("transport", &kind)
            .field("stats", &self.stats)
            .finish()
    }
}

impl ServiceClient {
    /// Connect over TCP with the default (legacy) [`ClientConfig`].
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> Result<Self, ServiceError> {
        // Resolve once so reconnects dial the same concrete address the
        // first connect used.
        let stream = TcpStream::connect(addr)?;
        let peer = stream.peer_addr()?;
        let config = ClientConfig::default();
        Self::apply_deadline_tcp(&stream, &config)?;
        Ok(Self::over(
            Transport::Tcp(stream),
            ServerAddr::Tcp(peer),
            config,
        ))
    }

    /// Connect over a Unix-domain socket with the default (legacy)
    /// [`ClientConfig`].
    #[cfg(unix)]
    pub fn connect_uds(path: impl AsRef<Path>) -> Result<Self, ServiceError> {
        Self::connect_with(
            &ServerAddr::Unix(path.as_ref().to_path_buf()),
            ClientConfig::default(),
        )
    }

    /// Connect to wherever a server reports it is listening.
    pub fn connect(addr: &ServerAddr) -> Result<Self, ServiceError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit fault-tolerance knobs (see the module docs).
    pub fn connect_with(addr: &ServerAddr, config: ClientConfig) -> Result<Self, ServiceError> {
        let transport = Self::open(addr, &config)?;
        Ok(Self::over(transport, addr.clone(), config))
    }

    fn over(transport: Transport, addr: ServerAddr, config: ClientConfig) -> Self {
        let jitter = SplitMix64::new(config.seed);
        Self {
            addr,
            transport: Some(transport),
            obuf: Vec::new(),
            outstanding: 0,
            config,
            stats: ClientStats::default(),
            jitter,
        }
    }

    /// Fault counters so far (retries, reconnects, timeouts).
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Whether a connection is currently established (false after an I/O
    /// failure, until the next request reconnects).
    pub fn is_connected(&self) -> bool {
        self.transport.is_some()
    }

    /// One connection attempt with the config's deadline applied.
    fn open(addr: &ServerAddr, config: &ClientConfig) -> Result<Transport, ServiceError> {
        match addr {
            ServerAddr::Tcp(addr) => {
                let stream = match config.deadline {
                    Some(deadline) => TcpStream::connect_timeout(addr, deadline)?,
                    None => TcpStream::connect(addr)?,
                };
                Self::apply_deadline_tcp(&stream, config)?;
                Ok(Transport::Tcp(stream))
            }
            #[cfg(unix)]
            ServerAddr::Unix(path) => {
                let stream = UnixStream::connect(path)?;
                stream.set_read_timeout(config.deadline)?;
                stream.set_write_timeout(config.deadline)?;
                Ok(Transport::Unix(stream))
            }
        }
    }

    fn apply_deadline_tcp(stream: &TcpStream, config: &ClientConfig) -> Result<(), ServiceError> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(config.deadline)?;
        stream.set_write_timeout(config.deadline)?;
        Ok(())
    }

    /// Drop the connection and reset the pipeline: after an I/O failure
    /// the positional response correlation is unrecoverable, so queued
    /// and outstanding requests are discarded with it.
    fn fail_connection(&mut self) {
        self.transport = None;
        self.obuf.clear();
        self.outstanding = 0;
    }

    /// The backoff before reconnect attempt `attempt` (1-based):
    /// exponential from the base, capped, with seeded jitter in
    /// `[50%, 100%]` of the nominal delay.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let nominal = self
            .config
            .backoff_base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.config.backoff_cap);
        let unit = (self.jitter.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        nominal.mul_f64(0.5 + 0.5 * unit)
    }

    /// Reconnect if the connection is down, with capped exponential
    /// backoff between attempts.
    fn ensure_connected(&mut self) -> Result<(), ServiceError> {
        if self.transport.is_some() {
            return Ok(());
        }
        let attempts = self.config.reconnect_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            match Self::open(&self.addr, &self.config) {
                Ok(transport) => {
                    self.transport = Some(transport);
                    self.stats.reconnects += 1;
                    return Ok(());
                }
                Err(error) => {
                    attempt += 1;
                    if attempt >= attempts {
                        return Err(error);
                    }
                    std::thread::sleep(self.backoff(attempt));
                }
            }
        }
    }

    /// Whether a request may be replayed on a fresh connection: reads
    /// (draws are server-side RNG — a replay is just another draw) and
    /// metrics yes; anything that mutates pending batches, no.
    fn idempotent(opcode: OpCode) -> bool {
        matches!(
            opcode,
            OpCode::Draw | OpCode::DrawBatch | OpCode::Totals | OpCode::Metrics
        )
    }

    fn record_io_error(&mut self, error: &ServiceError) {
        if let ServiceError::Io(io) = error {
            if matches!(
                io.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                self.stats.timeouts += 1;
            }
        }
    }

    fn call(&mut self, opcode: OpCode, payload: &[u8]) -> Result<Vec<u8>, ServiceError> {
        // Interleaving a blocking call with un-received pipelined
        // responses would mis-correlate by position.
        if self.outstanding > 0 {
            return Err(ServiceError::Protocol(format!(
                "{} pipelined responses outstanding; recv them first",
                self.outstanding
            )));
        }
        let mut attempt = 0u32;
        loop {
            let result = self.try_call(opcode, payload);
            match result {
                Err(error @ ServiceError::Io(_)) => {
                    self.record_io_error(&error);
                    self.fail_connection();
                    if Self::idempotent(opcode) && attempt < self.config.retries {
                        attempt += 1;
                        self.stats.retries += 1;
                        continue;
                    }
                    return Err(error);
                }
                other => return other,
            }
        }
    }

    fn try_call(&mut self, opcode: OpCode, payload: &[u8]) -> Result<Vec<u8>, ServiceError> {
        self.ensure_connected()?;
        let transport = self.transport.as_mut().expect("just connected");
        write_frame(transport, opcode, payload)?;
        read_response(transport)
    }

    // --- pipelined surface -------------------------------------------------

    /// Queue one `DRAW` without awaiting its response. Call
    /// [`flush`](Self::flush) to put queued requests on the wire and
    /// [`recv_draw`](Self::recv_draw) once per queued draw, in order.
    pub fn queue_draw(&mut self) {
        encode_request(&mut self.obuf, OpCode::Draw, &[]);
        self.outstanding += 1;
    }

    /// Write every queued request to the socket (one syscall for the
    /// whole burst when the kernel accepts it). An I/O failure resets
    /// the pipeline (see the module docs).
    pub fn flush(&mut self) -> Result<(), ServiceError> {
        if self.obuf.is_empty() {
            return Ok(());
        }
        if let Err(error) = self.ensure_connected() {
            self.fail_connection();
            return Err(error);
        }
        let buffered = std::mem::take(&mut self.obuf);
        let transport = self.transport.as_mut().expect("just connected");
        match transport.write_all(&buffered) {
            Ok(()) => {
                // Keep the (now empty) allocation for the next burst.
                self.obuf = buffered;
                self.obuf.clear();
                Ok(())
            }
            Err(error) => {
                let error = ServiceError::Io(error);
                self.record_io_error(&error);
                self.fail_connection();
                Err(error)
            }
        }
    }

    /// Receive the next pipelined `DRAW` response, in queue order. Flushes
    /// queued requests first so a caller cannot deadlock waiting on a
    /// request that never left. An I/O failure resets the pipeline.
    pub fn recv_draw(&mut self) -> Result<usize, ServiceError> {
        if self.outstanding == 0 {
            return Err(ServiceError::Protocol(
                "recv_draw without an outstanding pipelined draw".into(),
            ));
        }
        self.flush()?;
        let transport = self
            .transport
            .as_mut()
            .expect("flush left the connection up");
        // Any non-transport outcome (OK, Remote error, bad status byte)
        // consumed a whole response frame off the wire, so the
        // position-based correlation must advance even on Err. A
        // transport failure instead kills the correlation for good —
        // drop the connection and the pipeline with it.
        match read_response(transport) {
            Err(error @ ServiceError::Io(_)) => {
                self.record_io_error(&error);
                self.fail_connection();
                Err(error)
            }
            result => {
                self.outstanding -= 1;
                let payload = result?;
                let mut cursor = Cursor::new(&payload);
                let index = cursor.u64()?;
                cursor.done()?;
                Ok(index as usize)
            }
        }
    }

    /// Requests queued or sent whose responses have not been received.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// `count` draws with up to `window` requests in flight: the windowed
    /// pipelined mode. One connection, no round-trip-per-draw stall —
    /// consecutive in-flight draws also coalesce server-side into fused
    /// batches, so this is the cheapest way to stream single draws.
    pub fn draw_pipelined(
        &mut self,
        count: usize,
        window: usize,
    ) -> Result<Vec<usize>, ServiceError> {
        let window = window.max(1);
        let mut indices = Vec::with_capacity(count);
        let mut sent = 0usize;
        while indices.len() < count {
            let in_flight = sent - indices.len();
            let burst = (count - sent).min(window - in_flight);
            for _ in 0..burst {
                self.queue_draw();
            }
            sent += burst;
            indices.push(self.recv_draw()?);
        }
        Ok(indices)
    }

    /// One draw (server-side RNG, coalesced by the server's aggregator).
    pub fn draw(&mut self) -> Result<usize, ServiceError> {
        let payload = self.call(OpCode::Draw, &[])?;
        let mut cursor = Cursor::new(&payload);
        let index = cursor.u64()?;
        cursor.done()?;
        Ok(index as usize)
    }

    /// `count` draws in one round trip (`count <= MAX_BATCH`).
    pub fn draw_batch(&mut self, count: u32) -> Result<Vec<usize>, ServiceError> {
        if count > MAX_BATCH {
            return Err(ServiceError::Protocol(format!(
                "batch count {count} exceeds {MAX_BATCH}"
            )));
        }
        let payload = self.call(OpCode::DrawBatch, &count.to_le_bytes())?;
        let mut cursor = Cursor::new(&payload);
        let returned = cursor.u32()?;
        if returned != count {
            return Err(ServiceError::Protocol(format!(
                "asked for {count} draws, server answered {returned}"
            )));
        }
        let mut indices = Vec::with_capacity(returned as usize);
        for _ in 0..returned {
            indices.push(cursor.u64()? as usize);
        }
        cursor.done()?;
        Ok(indices)
    }

    /// Enqueue one weight override (visible after the owning shard's next
    /// publish). Never retried (see the module docs).
    pub fn update(&mut self, index: usize, weight: f64) -> Result<(), ServiceError> {
        let mut payload = Vec::with_capacity(16);
        payload.extend_from_slice(&(index as u64).to_le_bytes());
        payload.extend_from_slice(&weight.to_bits().to_le_bytes());
        let response = self.call(OpCode::Update, &payload)?;
        Cursor::new(&response).done()
    }

    /// Enqueue a batch of overrides, all-or-nothing across shards. Never
    /// retried (see the module docs).
    pub fn update_many(&mut self, updates: &[(usize, f64)]) -> Result<(), ServiceError> {
        if updates.len() as u64 > MAX_BATCH as u64 {
            return Err(ServiceError::Protocol(format!(
                "batch count {} exceeds {MAX_BATCH}",
                updates.len()
            )));
        }
        let mut payload = Vec::with_capacity(4 + 16 * updates.len());
        payload.extend_from_slice(&(updates.len() as u32).to_le_bytes());
        for &(index, weight) in updates {
            payload.extend_from_slice(&(index as u64).to_le_bytes());
            payload.extend_from_slice(&weight.to_bits().to_le_bytes());
        }
        let response = self.call(OpCode::UpdateBatch, &payload)?;
        Cursor::new(&response).done()
    }

    /// Fold one multiplicative scale into every shard's pending batch.
    /// Never retried (see the module docs).
    pub fn scale_all(&mut self, factor: f64) -> Result<(), ServiceError> {
        let response = self.call(OpCode::Scale, &factor.to_bits().to_le_bytes())?;
        Cursor::new(&response).done()
    }

    /// Publish every shard; returns the per-shard snapshot versions.
    /// Never retried (see the module docs).
    pub fn publish(&mut self) -> Result<Vec<u64>, ServiceError> {
        let payload = self.call(OpCode::Publish, &[])?;
        let mut cursor = Cursor::new(&payload);
        let shards = cursor.u32()?;
        let mut versions = Vec::with_capacity(shards as usize);
        for _ in 0..shards {
            versions.push(cursor.u64()?);
        }
        cursor.done()?;
        Ok(versions)
    }

    /// The per-shard published total weights.
    pub fn totals(&mut self) -> Result<Vec<f64>, ServiceError> {
        let payload = self.call(OpCode::Totals, &[])?;
        let mut cursor = Cursor::new(&payload);
        let shards = cursor.u32()?;
        let mut totals = Vec::with_capacity(shards as usize);
        for _ in 0..shards {
            totals.push(cursor.f64()?);
        }
        cursor.done()?;
        Ok(totals)
    }

    /// The server's merged metrics document (JSON).
    pub fn metrics_json(&mut self) -> Result<String, ServiceError> {
        let payload = self.call(OpCode::Metrics, &[])?;
        String::from_utf8(payload)
            .map_err(|_| ServiceError::Protocol("metrics document is not UTF-8".into()))
    }
}
