//! A blocking client for the selection service's binary protocol.
//!
//! One [`ServiceClient`] owns one connection. The simple methods
//! ([`draw`](ServiceClient::draw), [`update`](ServiceClient::update), …)
//! are strict request/response; the **pipelined** surface
//! ([`queue_draw`](ServiceClient::queue_draw) /
//! [`flush`](ServiceClient::flush) /
//! [`recv_draw`](ServiceClient::recv_draw), or the windowed
//! [`draw_pipelined`](ServiceClient::draw_pipelined)) keeps up to a
//! window of requests in flight on the one connection. The server
//! executes a connection's frames strictly in order and answers in that
//! order, so responses correlate by position — no message ids on the
//! wire — and a run of consecutive pipelined draws coalesces server-side
//! into one fused two-level batch.
//!
//! Response waits block on the socket (no read timeout, no polling).

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::error::ServiceError;
use crate::protocol::{encode_request, read_response, write_frame, Cursor, OpCode, MAX_BATCH};
use crate::server::ServerAddr;

enum Transport {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Transport::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Transport {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Transport::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Transport::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Transport::Unix(s) => s.flush(),
        }
    }
}

/// A blocking connection to a [`ServiceServer`](crate::ServiceServer).
pub struct ServiceClient {
    transport: Transport,
    /// Queued-but-unsent pipelined request bytes.
    obuf: Vec<u8>,
    /// Requests sent (or queued) whose responses have not been received.
    outstanding: usize,
}

impl std::fmt::Debug for ServiceClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.transport {
            Transport::Tcp(_) => "tcp",
            #[cfg(unix)]
            Transport::Unix(_) => "unix",
        };
        f.debug_struct("ServiceClient")
            .field("transport", &kind)
            .finish()
    }
}

impl ServiceClient {
    /// Connect over TCP.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> Result<Self, ServiceError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self::over(Transport::Tcp(stream)))
    }

    /// Connect over a Unix-domain socket.
    #[cfg(unix)]
    pub fn connect_uds(path: impl AsRef<Path>) -> Result<Self, ServiceError> {
        Ok(Self::over(Transport::Unix(UnixStream::connect(path)?)))
    }

    /// Connect to wherever a server reports it is listening.
    pub fn connect(addr: &ServerAddr) -> Result<Self, ServiceError> {
        match addr {
            ServerAddr::Tcp(addr) => Self::connect_tcp(addr),
            #[cfg(unix)]
            ServerAddr::Unix(path) => Self::connect_uds(path),
        }
    }

    fn over(transport: Transport) -> Self {
        Self {
            transport,
            obuf: Vec::new(),
            outstanding: 0,
        }
    }

    fn call(&mut self, opcode: OpCode, payload: &[u8]) -> Result<Vec<u8>, ServiceError> {
        // Interleaving a blocking call with un-received pipelined
        // responses would mis-correlate by position.
        if self.outstanding > 0 {
            return Err(ServiceError::Protocol(format!(
                "{} pipelined responses outstanding; recv them first",
                self.outstanding
            )));
        }
        write_frame(&mut self.transport, opcode, payload)?;
        read_response(&mut self.transport)
    }

    // --- pipelined surface -------------------------------------------------

    /// Queue one `DRAW` without awaiting its response. Call
    /// [`flush`](Self::flush) to put queued requests on the wire and
    /// [`recv_draw`](Self::recv_draw) once per queued draw, in order.
    pub fn queue_draw(&mut self) {
        encode_request(&mut self.obuf, OpCode::Draw, &[]);
        self.outstanding += 1;
    }

    /// Write every queued request to the socket (one syscall for the
    /// whole burst when the kernel accepts it).
    pub fn flush(&mut self) -> Result<(), ServiceError> {
        if !self.obuf.is_empty() {
            self.transport.write_all(&self.obuf)?;
            self.obuf.clear();
        }
        Ok(())
    }

    /// Receive the next pipelined `DRAW` response, in queue order. Flushes
    /// queued requests first so a caller cannot deadlock waiting on a
    /// request that never left.
    pub fn recv_draw(&mut self) -> Result<usize, ServiceError> {
        if self.outstanding == 0 {
            return Err(ServiceError::Protocol(
                "recv_draw without an outstanding pipelined draw".into(),
            ));
        }
        self.flush()?;
        let result = read_response(&mut self.transport);
        // Any non-transport outcome (OK, Remote error, bad status byte)
        // consumed a whole response frame off the wire, so the
        // position-based correlation must advance even on Err — otherwise
        // `outstanding` desyncs and the final recv_draw blocks forever.
        if !matches!(result, Err(ServiceError::Io(_))) {
            self.outstanding -= 1;
        }
        let payload = result?;
        let mut cursor = Cursor::new(&payload);
        let index = cursor.u64()?;
        cursor.done()?;
        Ok(index as usize)
    }

    /// Requests queued or sent whose responses have not been received.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// `count` draws with up to `window` requests in flight: the windowed
    /// pipelined mode. One connection, no round-trip-per-draw stall —
    /// consecutive in-flight draws also coalesce server-side into fused
    /// batches, so this is the cheapest way to stream single draws.
    pub fn draw_pipelined(
        &mut self,
        count: usize,
        window: usize,
    ) -> Result<Vec<usize>, ServiceError> {
        let window = window.max(1);
        let mut indices = Vec::with_capacity(count);
        let mut sent = 0usize;
        while indices.len() < count {
            let in_flight = sent - indices.len();
            let burst = (count - sent).min(window - in_flight);
            for _ in 0..burst {
                self.queue_draw();
            }
            sent += burst;
            indices.push(self.recv_draw()?);
        }
        Ok(indices)
    }

    /// One draw (server-side RNG, coalesced by the server's aggregator).
    pub fn draw(&mut self) -> Result<usize, ServiceError> {
        let payload = self.call(OpCode::Draw, &[])?;
        let mut cursor = Cursor::new(&payload);
        let index = cursor.u64()?;
        cursor.done()?;
        Ok(index as usize)
    }

    /// `count` draws in one round trip (`count <= MAX_BATCH`).
    pub fn draw_batch(&mut self, count: u32) -> Result<Vec<usize>, ServiceError> {
        if count > MAX_BATCH {
            return Err(ServiceError::Protocol(format!(
                "batch count {count} exceeds {MAX_BATCH}"
            )));
        }
        let payload = self.call(OpCode::DrawBatch, &count.to_le_bytes())?;
        let mut cursor = Cursor::new(&payload);
        let returned = cursor.u32()?;
        if returned != count {
            return Err(ServiceError::Protocol(format!(
                "asked for {count} draws, server answered {returned}"
            )));
        }
        let mut indices = Vec::with_capacity(returned as usize);
        for _ in 0..returned {
            indices.push(cursor.u64()? as usize);
        }
        cursor.done()?;
        Ok(indices)
    }

    /// Enqueue one weight override (visible after the owning shard's next
    /// publish).
    pub fn update(&mut self, index: usize, weight: f64) -> Result<(), ServiceError> {
        let mut payload = Vec::with_capacity(16);
        payload.extend_from_slice(&(index as u64).to_le_bytes());
        payload.extend_from_slice(&weight.to_bits().to_le_bytes());
        let response = self.call(OpCode::Update, &payload)?;
        Cursor::new(&response).done()
    }

    /// Enqueue a batch of overrides, all-or-nothing across shards.
    pub fn update_many(&mut self, updates: &[(usize, f64)]) -> Result<(), ServiceError> {
        if updates.len() as u64 > MAX_BATCH as u64 {
            return Err(ServiceError::Protocol(format!(
                "batch count {} exceeds {MAX_BATCH}",
                updates.len()
            )));
        }
        let mut payload = Vec::with_capacity(4 + 16 * updates.len());
        payload.extend_from_slice(&(updates.len() as u32).to_le_bytes());
        for &(index, weight) in updates {
            payload.extend_from_slice(&(index as u64).to_le_bytes());
            payload.extend_from_slice(&weight.to_bits().to_le_bytes());
        }
        let response = self.call(OpCode::UpdateBatch, &payload)?;
        Cursor::new(&response).done()
    }

    /// Fold one multiplicative scale into every shard's pending batch.
    pub fn scale_all(&mut self, factor: f64) -> Result<(), ServiceError> {
        let response = self.call(OpCode::Scale, &factor.to_bits().to_le_bytes())?;
        Cursor::new(&response).done()
    }

    /// Publish every shard; returns the per-shard snapshot versions.
    pub fn publish(&mut self) -> Result<Vec<u64>, ServiceError> {
        let payload = self.call(OpCode::Publish, &[])?;
        let mut cursor = Cursor::new(&payload);
        let shards = cursor.u32()?;
        let mut versions = Vec::with_capacity(shards as usize);
        for _ in 0..shards {
            versions.push(cursor.u64()?);
        }
        cursor.done()?;
        Ok(versions)
    }

    /// The per-shard published total weights.
    pub fn totals(&mut self) -> Result<Vec<f64>, ServiceError> {
        let payload = self.call(OpCode::Totals, &[])?;
        let mut cursor = Cursor::new(&payload);
        let shards = cursor.u32()?;
        let mut totals = Vec::with_capacity(shards as usize);
        for _ in 0..shards {
            totals.push(cursor.f64()?);
        }
        cursor.done()?;
        Ok(totals)
    }

    /// The server's merged metrics document (JSON).
    pub fn metrics_json(&mut self) -> Result<String, ServiceError> {
        let payload = self.call(OpCode::Metrics, &[])?;
        String::from_utf8(payload)
            .map_err(|_| ServiceError::Protocol("metrics document is not UTF-8".into()))
    }
}
