//! Thread affinity: CPU topology discovery and core pinning for the
//! service's long-lived threads.
//!
//! The sharded service runs a fixed cast of threads — per-shard publisher
//! ("writer") threads, epoll reactor threads, request workers and the
//! batch planner's fan-out lanes. Letting the scheduler migrate them costs
//! cache and (on multi-socket hosts) NUMA locality: a shard's publisher
//! rebuilds that shard's snapshot from the pending batch, and the fan-out
//! lane that fills from the snapshot wants to be where those lines are.
//! This module finishes ROADMAP item 1's "core-/NUMA-pinned shard
//! writers": a [`CoreMap`] policy in `ServiceConfig` decides *whether and
//! where* to pin, [`Topology`] discovers what the host offers, and a
//! [`Pinner`] hands cores to threads as they start.
//!
//! Policy resolution order:
//!
//! 1. the `LRB_PIN` environment variable, when set, overrides the config:
//!    `none`/`off` disables pinning, `spread` round-robins over the
//!    discovered cores (NUMA-node-major), and a CPU list like `0,2,4-6`
//!    pins to exactly those cores;
//! 2. otherwise the [`CoreMap`] from `ServiceConfig` applies;
//! 3. the default is [`CoreMap::None`] — pinning is strictly opt-in.
//!
//! **Failure is always graceful.** On non-Linux targets, when
//! `/sys/devices/system/cpu` is unreadable, when a named core does not
//! exist, or when `sched_setaffinity` is denied (e.g. a container's
//! seccomp/cpuset policy), [`Pinner::pin_current`] reports `None` and the
//! thread simply runs unpinned — the service never degrades because the
//! host refuses an affinity mask. [`Pinner::pinned_threads`] exposes how
//! many pins actually took effect (the `lrb_service_pinned_threads`
//! metrics gauge), so a silently-refused policy is visible in telemetry
//! rather than a mystery.
//!
//! The raw `sched_setaffinity` surface lives in the module-scoped
//! `sys` island (`#[allow(unsafe_code)]`), mirroring `reactor::sys`:
//! the crate stays `#![deny(unsafe_code)]` everywhere else.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Where the service's long-lived threads may be pinned.
///
/// The policy is deliberately coarse: pinned threads take cores
/// round-robin from the resolved list in start order (publishers first,
/// then reactors/workers/fan-out lanes as they spawn). With more threads
/// than cores the assignment wraps — two threads sharing a core is still
/// better than all of them migrating.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum CoreMap {
    /// No pinning (the default): every thread floats.
    #[default]
    None,
    /// Round-robin over every online core, NUMA-node-major (all of node
    /// 0's cores before node 1's), so consecutive shard writers pack a
    /// node before spilling to the next — shard state stays node-local.
    Spread,
    /// Pin to exactly these core ids, round-robin in the given order.
    /// Unknown ids fail the individual pin gracefully (see module docs).
    Explicit(Vec<usize>),
}

/// One online logical CPU and the NUMA node it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuCore {
    /// Logical CPU id (the `N` of `/sys/devices/system/cpu/cpuN`).
    pub id: usize,
    /// NUMA node id (0 on single-node hosts and wherever node information
    /// is unavailable).
    pub node: usize,
}

/// The host's online CPUs, NUMA-node-major. See [`Topology::discover`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    cores: Vec<CpuCore>,
}

impl Topology {
    /// Discover the host topology.
    ///
    /// On Linux this parses `/sys/devices/system/cpu/online` for the
    /// online CPU set and `/sys/devices/system/node/node*/cpulist` for
    /// node membership (absent node directories mean a single-node host).
    /// Elsewhere — or when sysfs is unreadable — it falls back to
    /// `available_parallelism` cores on one node, which keeps `Spread`
    /// meaningful even without sysfs (the pin itself may still no-op).
    pub fn discover() -> Self {
        Self::from_sysfs("/sys").unwrap_or_else(Self::fallback)
    }

    /// The online cores, NUMA-node-major then id-ascending.
    pub fn cores(&self) -> &[CpuCore] {
        &self.cores
    }

    /// Parse a topology out of a sysfs root (separated from
    /// [`discover`](Self::discover) so tests can point it at a fixture
    /// tree). Returns `None` when the online-CPU file is missing or
    /// unparseable.
    pub fn from_sysfs(root: &str) -> Option<Self> {
        let online = std::fs::read_to_string(format!("{root}/devices/system/cpu/online")).ok()?;
        let online = parse_cpu_list(online.trim())?;
        if online.is_empty() {
            return None;
        }
        // Node membership: node directories are optional (UMA hosts often
        // have none); any CPU not claimed by a node file lands on node 0.
        let mut cores: Vec<CpuCore> = online.iter().map(|&id| CpuCore { id, node: 0 }).collect();
        if let Ok(entries) = std::fs::read_dir(format!("{root}/devices/system/node")) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                let Some(node) = name
                    .strip_prefix("node")
                    .and_then(|n| n.parse::<usize>().ok())
                else {
                    continue;
                };
                let Ok(list) = std::fs::read_to_string(entry.path().join("cpulist")) else {
                    continue;
                };
                let Some(members) = parse_cpu_list(list.trim()) else {
                    continue;
                };
                for core in cores.iter_mut() {
                    if members.contains(&core.id) {
                        core.node = node;
                    }
                }
            }
        }
        cores.sort_by_key(|c| (c.node, c.id));
        Some(Self { cores })
    }

    /// `available_parallelism` cores on one node — the no-sysfs fallback.
    fn fallback() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self {
            cores: (0..n).map(|id| CpuCore { id, node: 0 }).collect(),
        }
    }
}

/// Parse a sysfs CPU list (`"0-3,8,10-11"`) into ascending core ids.
/// Returns `None` on any malformed field — a garbled sysfs reads as "no
/// topology", never as a wrong one.
pub fn parse_cpu_list(list: &str) -> Option<Vec<usize>> {
    let mut cpus = Vec::new();
    if list.is_empty() {
        return Some(cpus);
    }
    for field in list.split(',') {
        let field = field.trim();
        match field.split_once('-') {
            Some((lo, hi)) => {
                let lo: usize = lo.trim().parse().ok()?;
                let hi: usize = hi.trim().parse().ok()?;
                if hi < lo {
                    return None;
                }
                cpus.extend(lo..=hi);
            }
            None => cpus.push(field.parse().ok()?),
        }
    }
    cpus.sort_unstable();
    cpus.dedup();
    Some(cpus)
}

/// Resolve the effective policy: the `LRB_PIN` environment variable when
/// set (see the module docs for its grammar), else `configured`. An
/// unparseable `LRB_PIN` disables pinning — a typo must not pin threads to
/// surprising cores.
fn effective_policy(configured: &CoreMap) -> CoreMap {
    match std::env::var("LRB_PIN") {
        Ok(value) => {
            let value = value.trim().to_ascii_lowercase();
            match value.as_str() {
                "" => configured.clone(),
                "none" | "off" | "0" => CoreMap::None,
                "spread" => CoreMap::Spread,
                list => parse_cpu_list(list).map_or(CoreMap::None, CoreMap::Explicit),
            }
        }
        Err(_) => configured.clone(),
    }
}

/// Hands cores to the service's long-lived threads as they start.
///
/// Created once per `ServiceCore` from the configured [`CoreMap`] (after
/// the `LRB_PIN` override); every pinned thread calls
/// [`pin_current`](Self::pin_current) on startup. Thread-safe: the
/// round-robin cursor and the success counter are atomics.
#[derive(Debug)]
pub struct Pinner {
    /// The resolved core rotation; empty = pinning disabled.
    cores: Vec<usize>,
    /// Round-robin cursor over `cores`.
    next: AtomicUsize,
    /// Pins that actually took effect (`sched_setaffinity` succeeded).
    pinned: AtomicU64,
}

impl Pinner {
    /// A pinner for `configured`, after applying the `LRB_PIN` override
    /// and discovering the topology (only when the policy needs it).
    pub fn from_config(configured: &CoreMap) -> Self {
        let cores = match effective_policy(configured) {
            CoreMap::None => Vec::new(),
            CoreMap::Spread => Topology::discover().cores().iter().map(|c| c.id).collect(),
            CoreMap::Explicit(cores) => cores,
        };
        Self {
            cores,
            next: AtomicUsize::new(0),
            pinned: AtomicU64::new(0),
        }
    }

    /// A pinner that never pins (the [`CoreMap::None`] fast path).
    pub fn disabled() -> Self {
        Self {
            cores: Vec::new(),
            next: AtomicUsize::new(0),
            pinned: AtomicU64::new(0),
        }
    }

    /// Whether any pinning policy is active (cores were resolved).
    pub fn is_active(&self) -> bool {
        !self.cores.is_empty()
    }

    /// Pin the calling thread to the next core in the rotation. Returns
    /// the core id on success, `None` when pinning is disabled or the
    /// syscall refused the mask (non-Linux, denied, unknown core) — in
    /// every failure mode the thread just keeps running unpinned.
    pub fn pin_current(&self) -> Option<usize> {
        if self.cores.is_empty() {
            return None;
        }
        let slot = self.next.fetch_add(1, Ordering::Relaxed);
        let core = self.cores[slot % self.cores.len()];
        if sys::pin_to_core(core) {
            self.pinned.fetch_add(1, Ordering::Relaxed);
            Some(core)
        } else {
            None
        }
    }

    /// How many [`pin_current`](Self::pin_current) calls actually stuck
    /// (the `lrb_service_pinned_threads` gauge).
    pub fn pinned_threads(&self) -> u64 {
        self.pinned.load(Ordering::Relaxed)
    }
}

/// Raw `sched_setaffinity` surface — the audited unsafe island (same
/// pattern as `reactor::sys`; see the module docs for the policy layer).
///
/// Safety argument: the single call passes a stack-owned, fully
/// initialised mask buffer and its exact byte length; `pid = 0` means the
/// calling thread, so no foreign thread or process is touched; the kernel
/// copies the mask in and holds no reference past the call. A failed call
/// returns -1 with `errno` set and changes nothing. No pointers outlive
/// the call, no fds are created.
#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod sys {
    use std::os::raw::{c_int, c_ulong};

    /// Mask words: `MASK_WORDS * c_ulong::BITS` CPUs (1024 on 64-bit,
    /// matching glibc's default `cpu_set_t`).
    const MASK_WORDS: usize = 1024 / c_ulong::BITS as usize;

    extern "C" {
        /// glibc wrapper; `pid == 0` targets the calling thread.
        fn sched_setaffinity(pid: c_int, cpusetsize: usize, mask: *const c_ulong) -> c_int;
    }

    /// Restrict the calling thread to `core`. Returns whether the kernel
    /// accepted the mask; out-of-range ids and denied syscalls are `false`.
    pub(super) fn pin_to_core(core: usize) -> bool {
        let bits = c_ulong::BITS as usize;
        if core >= MASK_WORDS * bits {
            return false;
        }
        let mut mask = [0 as c_ulong; MASK_WORDS];
        mask[core / bits] = 1 << (core % bits);
        // SAFETY: `mask` is a live, initialised stack buffer of exactly
        // `size_of_val(&mask)` bytes; pid 0 = current thread; the kernel
        // copies the buffer and keeps no pointer to it.
        let rc = unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) };
        rc == 0
    }
}

/// Non-Linux: affinity syscalls are not portable; pinning is a no-op that
/// reports failure so callers (and telemetry) see exactly what happened.
#[cfg(not(target_os = "linux"))]
mod sys {
    pub(super) fn pin_to_core(_core: usize) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_lists_parse_ranges_singles_and_junk() {
        assert_eq!(
            parse_cpu_list("0-3,8,10-11"),
            Some(vec![0, 1, 2, 3, 8, 10, 11])
        );
        assert_eq!(parse_cpu_list("5"), Some(vec![5]));
        assert_eq!(parse_cpu_list("3,1, 2 "), Some(vec![1, 2, 3]));
        assert_eq!(parse_cpu_list(""), Some(Vec::new()));
        assert_eq!(parse_cpu_list("2-1"), None);
        assert_eq!(parse_cpu_list("a-b"), None);
        assert_eq!(parse_cpu_list("1,,2"), None);
    }

    #[test]
    fn sysfs_fixture_topology_is_node_major() {
        let root = std::env::temp_dir().join(format!("lrb-affinity-test-{}", std::process::id()));
        let cpu = root.join("devices/system/cpu");
        let node0 = root.join("devices/system/node/node0");
        let node1 = root.join("devices/system/node/node1");
        std::fs::create_dir_all(&cpu).unwrap();
        std::fs::create_dir_all(&node0).unwrap();
        std::fs::create_dir_all(&node1).unwrap();
        std::fs::write(cpu.join("online"), "0-3\n").unwrap();
        // Interleaved node membership: evens on node 0, odds on node 1.
        std::fs::write(node0.join("cpulist"), "0,2\n").unwrap();
        std::fs::write(node1.join("cpulist"), "1,3\n").unwrap();
        let topo = Topology::from_sysfs(root.to_str().unwrap()).unwrap();
        let ids: Vec<(usize, usize)> = topo.cores().iter().map(|c| (c.node, c.id)).collect();
        assert_eq!(ids, vec![(0, 0), (0, 2), (1, 1), (1, 3)]);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn discovery_always_yields_at_least_one_core() {
        // Whatever the host: sysfs or the fallback, never empty.
        assert!(!Topology::discover().cores().is_empty());
    }

    #[test]
    fn disabled_and_unknown_core_pins_are_graceful() {
        let disabled = Pinner::disabled();
        assert!(!disabled.is_active());
        assert_eq!(disabled.pin_current(), None);
        assert_eq!(disabled.pinned_threads(), 0);
        // A core id far beyond any real host: the pin must fail without
        // side effects, and the success counter must stay at zero.
        let bogus = Pinner::from_config(&CoreMap::Explicit(vec![100_000]));
        assert!(bogus.is_active());
        assert_eq!(bogus.pin_current(), None);
        assert_eq!(bogus.pinned_threads(), 0);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn pinning_to_a_real_core_sticks_when_permitted() {
        // Pin to the first online core. Containers may deny the syscall;
        // both outcomes are legal, but they must agree with the counter.
        let topo = Topology::discover();
        let first = topo.cores()[0].id;
        let pinner = Pinner::from_config(&CoreMap::Explicit(vec![first]));
        match pinner.pin_current() {
            Some(core) => {
                assert_eq!(core, first);
                assert_eq!(pinner.pinned_threads(), 1);
            }
            None => assert_eq!(pinner.pinned_threads(), 0),
        }
    }
}
