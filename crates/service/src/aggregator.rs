//! Flat-combining draw aggregator: concurrent single-draw requests are
//! coalesced into batches so they hit the engine's fused buffer-fill path
//! ([`Snapshot::sample_into`](lrb_engine::Snapshot::sample_into)) instead
//! of paying one snapshot acquisition and one tree descent each.
//!
//! The shape is classic flat combining with channels instead of a
//! publication list: a caller enqueues a reply slot, then tries to become
//! the **combiner** (a `try_lock` on the shared RNG). Whoever holds the
//! combiner lock drains the queue in [`max_batch`](DrawAggregator::max_batch)
//! chunks, serves each chunk with **one** two-level batched draw
//! ([`ServiceCore::draw_into`]), and posts every result back. Callers that
//! lose the race just wait on their reply channel, re-contending for the
//! combiner role on a short timeout so a combiner that drained the queue a
//! hair before their enqueue can never strand them.

use std::collections::VecDeque;
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use lrb_core::SelectionError;
use lrb_rng::{MersenneTwister64, SeedableSource};

use crate::sharded::ServiceCore;

/// How long a waiter parks on its reply channel before re-contending for
/// the combiner role.
const RECONTEND: Duration = Duration::from_micros(200);

/// Coalesces concurrent single draws into batched two-level draws. See the
/// module docs for the protocol.
#[derive(Debug)]
pub struct DrawAggregator {
    core: Arc<ServiceCore>,
    /// Reply slots of draws waiting to be served.
    queue: Mutex<VecDeque<SyncSender<Result<usize, SelectionError>>>>,
    /// The combiner role: whoever holds it owns the service-side RNG and
    /// must drain the queue before releasing it.
    combiner: Mutex<MersenneTwister64>,
    /// Largest number of draws served by one batched fill.
    pub max_batch: usize,
}

impl DrawAggregator {
    /// An aggregator over `core`, drawing from a service-side RNG seeded
    /// with `seed`.
    pub fn new(core: Arc<ServiceCore>, seed: u64) -> Self {
        Self {
            core,
            queue: Mutex::new(VecDeque::new()),
            combiner: Mutex::new(MersenneTwister64::seed_from_u64(seed)),
            max_batch: 64,
        }
    }

    /// The shared core this aggregator draws from.
    pub fn core(&self) -> &Arc<ServiceCore> {
        &self.core
    }

    /// One draw, possibly served inside a coalesced batch. Blocks until a
    /// combiner (often the caller itself) produces the result.
    ///
    /// Survives a panicking combiner: if a combiner dies mid-combine
    /// (queue drained, replies never sent), the stranded waiters observe a
    /// disconnected reply channel and transparently re-enqueue, and the
    /// poisoned combiner lock is recovered rather than abandoned.
    pub fn draw(&self) -> Result<usize, SelectionError> {
        // Outer loop: one iteration per enqueued reply slot. A slot is
        // abandoned (and the draw re-enqueued) only if its sender was
        // dropped unsent by a combiner that panicked mid-combine.
        loop {
            let (reply, result) = mpsc::sync_channel(1);
            self.queue
                .lock()
                .expect("aggregator queue poisoned")
                .push_back(reply);
            loop {
                if let Some(mut rng) = self.try_combine_lock() {
                    self.combine(&mut rng);
                }
                // Either we combined (our own result is posted) or someone
                // else holds the role; check, then park briefly before
                // re-contending.
                match result.try_recv() {
                    Ok(outcome) => return outcome,
                    Err(TryRecvError::Empty) => {}
                    Err(TryRecvError::Disconnected) => break, // combiner died; retry
                }
                match result.recv_timeout(RECONTEND) {
                    Ok(outcome) => return outcome,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => break, // combiner died; retry
                }
            }
        }
    }

    /// Try to take the combiner role. A poisoned lock (a previous combiner
    /// panicked) is recovered — the RNG state is always valid bits, and
    /// refusing the role would strand every queued waiter forever.
    fn try_combine_lock(&self) -> Option<std::sync::MutexGuard<'_, MersenneTwister64>> {
        match self.combiner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Drain the queue in `max_batch` chunks, serving each with one
    /// batched two-level draw. Runs under the combiner lock.
    fn combine(&self, rng: &mut MersenneTwister64) {
        loop {
            let batch: Vec<SyncSender<Result<usize, SelectionError>>> = {
                let mut queue = self.queue.lock().expect("aggregator queue poisoned");
                let take = queue.len().min(self.max_batch);
                queue.drain(..take).collect()
            };
            if batch.is_empty() {
                return;
            }
            let mut out = vec![0usize; batch.len()];
            match self.core.draw_into(rng, &mut out) {
                Ok(()) => {
                    self.core.telemetry().record_batch(batch.len() as u64);
                    for (reply, &index) in batch.iter().zip(&out) {
                        // A waiter that vanished (connection died) is fine.
                        let _ = reply.send(Ok(index));
                    }
                }
                Err(error) => {
                    for reply in &batch {
                        let _ = reply.send(Err(error));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::{ServiceConfig, ShardedService};

    #[test]
    fn concurrent_draws_coalesce_into_batches() {
        let service =
            ShardedService::new((1..=16).map(f64::from).collect(), ServiceConfig::default())
                .unwrap();
        let aggregator = Arc::new(DrawAggregator::new(service.core(), 0xA66));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let aggregator = Arc::clone(&aggregator);
            handles.push(std::thread::spawn(move || {
                let mut picks = Vec::new();
                for _ in 0..50 {
                    picks.push(aggregator.draw().unwrap());
                }
                picks
            }));
        }
        let mut all = Vec::new();
        for handle in handles {
            all.extend(handle.join().unwrap());
        }
        assert_eq!(all.len(), 400);
        assert!(all.iter().all(|&p| p < 16));
        let telemetry = service.telemetry();
        assert_eq!(telemetry.batched_draws(), 400);
        // Every draw went through some batch; with one combiner at a time
        // there are at most as many batches as draws.
        let batches = telemetry.batches();
        assert!((1..=400).contains(&batches), "{batches}");
    }

    #[test]
    fn draws_recover_after_a_combiner_panics() {
        let service =
            ShardedService::new((1..=16).map(f64::from).collect(), ServiceConfig::default())
                .unwrap();
        let aggregator = Arc::new(DrawAggregator::new(service.core(), 0xDEAD));
        // Poison the combiner lock the way a panicking combiner would.
        let poisoner = Arc::clone(&aggregator);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.combiner.lock().unwrap();
            panic!("simulated combiner death");
        })
        .join();
        assert!(aggregator.combiner.is_poisoned());
        // Waiters must still be served: the poisoned lock is recovered.
        assert!(aggregator.draw().unwrap() < 16);
    }

    #[test]
    fn aggregated_draw_errors_propagate_to_every_waiter() {
        let service = ShardedService::new(vec![0.0, 0.0, 0.0], ServiceConfig::default()).unwrap();
        let aggregator = DrawAggregator::new(service.core(), 1);
        assert_eq!(aggregator.draw(), Err(SelectionError::AllZeroFitness));
    }
}
