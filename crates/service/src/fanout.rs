//! A tiny persistent fan-out pool for the batch planner's per-shard fills.
//!
//! Why not the rayon shim? Its `scope`-based stages spawn OS threads per
//! invocation — fine for the engine's large offline batches, fatal for a
//! 0-alloc steady-state service path (thread spawn allocates stacks on the
//! submitting thread every call). This pool spawns its helper threads
//! **once** at service construction; submitting a batch afterwards is a
//! mutex hand-off and two condvar signals — no allocation on the
//! submitting thread, ever. Helper threads pin themselves through the
//! service's [`Pinner`](crate::affinity::Pinner) on startup.
//!
//! Execution model: [`FanoutPool::run`] publishes one job (`n` tasks,
//! one shared `Fn(usize)`), every helper plus the submitting thread claim
//! task indices until none remain, and `run` returns only after all `n`
//! completions are counted — **a structured scope**: the closure reference
//! never escapes `run`'s dynamic extent, which is exactly the invariant
//! the lifetime-erased [`job::JobRef`] island relies on. Task panics are
//! caught, counted as completions (so the scope still closes) and
//! re-raised on the submitting thread once the batch is over.
//!
//! Determinism note: the pool carries none of the batch's randomness —
//! task `k` is data-identical no matter which lane runs it (the planner
//! derives each shard's RNG from a master draw, not from lane identity),
//! so lane count and scheduling cannot change results, only wall-clock.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use crate::affinity::Pinner;

/// Lifetime/type erasure for the current job, plus the disjoint-segment
/// derivation — the audited unsafe island (same pattern as `reactor::sys`
/// and `affinity::sys`).
///
/// Safety argument, shared by everything here:
///
/// * [`JobRef`] erases the lifetime of a `&(dyn Fn(usize) + Sync)` that
///   [`FanoutPool::run`] holds on its stack. `run` publishes the ref,
///   then blocks until every claimed task's completion is counted —
///   including panicked ones (caught) — before returning or unwinding, so
///   no thread can call the closure outside the borrow's real extent. A
///   helper only dereferences between claiming an index (the job was
///   live under the state lock) and reporting completion (which is what
///   `run` waits for).
/// * [`segment`] re-slices a buffer whose `&mut` borrow `run_disjoint`
///   holds across the whole batch; bounds and pairwise disjointness of
///   the segments are validated up front, so concurrent `&mut [usize]`
///   segments never alias.
#[allow(unsafe_code)]
mod job {
    /// A type- and lifetime-erased `&(dyn Fn(usize) + Sync)`.
    #[derive(Clone, Copy)]
    pub(super) struct JobRef(*const (dyn Fn(usize) + Sync + 'static));

    // SAFETY: the pointee is `Sync` (the whole point is calling it from
    // several threads) and the structured-scope protocol above bounds
    // every use to the closure's true lifetime.
    unsafe impl Send for JobRef {}

    impl JobRef {
        /// Erase `f`'s lifetime. Sound only under the pool's
        /// structured-completion protocol (module docs).
        pub(super) fn new(f: &(dyn Fn(usize) + Sync)) -> Self {
            // SAFETY: pure lifetime erasure; the pool keeps the pointer
            // from outliving the borrow (module docs).
            Self(unsafe {
                std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
            })
        }

        /// Call the erased closure for task `k`. Safe per the protocol:
        /// callers hold a claim on `k` inside the job's extent.
        pub(super) fn call(&self, k: usize) {
            // SAFETY: see `new` and the module docs.
            unsafe { (*self.0)(k) }
        }
    }

    /// Derive the `&mut` sub-slice `[start, start+len)` of the buffer at
    /// `base` (passed as an address so closures capturing it stay `Sync`).
    /// Safe per the validation in [`FanoutPool::run_disjoint`]: segments
    /// are in-bounds and pairwise disjoint, and the underlying `&mut`
    /// borrow outlives the batch.
    ///
    /// [`FanoutPool::run_disjoint`]: super::FanoutPool::run_disjoint
    pub(super) fn segment<'a>(base: usize, start: usize, len: usize) -> &'a mut [usize] {
        // SAFETY: bounds and disjointness validated by run_disjoint; the
        // buffer's &mut borrow is held for the whole batch.
        unsafe { std::slice::from_raw_parts_mut((base as *mut usize).add(start), len) }
    }
}

/// The one published batch the lanes are working through.
struct State {
    /// The current job; `None` between batches.
    job: Option<job::JobRef>,
    /// Task count of the current batch.
    n: usize,
    /// Next unclaimed task index.
    next: usize,
    /// Completions counted (including panicked tasks).
    completed: usize,
    /// Whether any task of the current batch panicked.
    panicked: bool,
    /// Pool shutdown (helpers exit).
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Helpers wait here for work.
    work: Condvar,
    /// The submitter waits here for the last completion.
    done: Condvar,
}

fn lock(shared: &Shared) -> MutexGuard<'_, State> {
    // A poisoned lock only means a task panicked outside the catch (it
    // cannot: every call site is wrapped) — recovering is always sound
    // because State is plain bookkeeping.
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The persistent fan-out pool. See the module docs.
pub(crate) struct FanoutPool {
    shared: Arc<Shared>,
    /// Serialises concurrent `run` callers: one batch in flight at a time.
    /// Small batches bypass the pool entirely (planner policy), so this
    /// gate only ever holds back another *large* batch — which would be
    /// competing for the same cores anyway.
    submit: Mutex<()>,
    helpers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for FanoutPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanoutPool")
            .field("lanes", &self.lanes())
            .finish()
    }
}

impl FanoutPool {
    /// A pool with `lanes` total parallel lanes (the submitting thread is
    /// lane 0, so `lanes - 1` helper threads are spawned; `lanes <= 1`
    /// spawns none and every batch runs inline). Each helper pins itself
    /// through `pinner` on startup.
    pub(crate) fn start(lanes: usize, pinner: Arc<Pinner>) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                n: 0,
                next: 0,
                completed: 0,
                panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let helpers = (1..lanes.max(1))
            .map(|lane| {
                let shared = Arc::clone(&shared);
                let pinner = Arc::clone(&pinner);
                std::thread::Builder::new()
                    .name(format!("lrb-fanout-{lane}"))
                    .spawn(move || helper_loop(&shared, &pinner))
                    .expect("spawning a fan-out lane cannot fail")
            })
            .collect();
        Self {
            shared,
            submit: Mutex::new(()),
            helpers,
        }
    }

    /// Total parallel lanes (helpers + the submitting thread).
    pub(crate) fn lanes(&self) -> usize {
        self.helpers.len() + 1
    }

    /// Run tasks `0..n` of `f` across the lanes; returns after all `n`
    /// completed. Allocation-free on the submitting thread. Panics (after
    /// the batch fully completes) if any task panicked.
    pub(crate) fn run(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        if self.helpers.is_empty() || n == 1 {
            for k in 0..n {
                f(k);
            }
            return;
        }
        let _serial = self.submit.lock().unwrap_or_else(PoisonError::into_inner);
        {
            let mut state = lock(&self.shared);
            state.job = Some(job::JobRef::new(f));
            state.n = n;
            state.next = 0;
            state.completed = 0;
            state.panicked = false;
            self.shared.work.notify_all();
        }
        // The submitting thread is lane 0: claim tasks like any helper,
        // then wait out stragglers. The batch ALWAYS runs to `n` counted
        // completions before this function returns or panics — that is
        // what makes the erased closure reference sound.
        loop {
            let mut state = lock(&self.shared);
            if state.next < n {
                let k = state.next;
                state.next += 1;
                drop(state);
                let ok = catch_unwind(AssertUnwindSafe(|| f(k))).is_ok();
                let mut state = lock(&self.shared);
                state.completed += 1;
                state.panicked |= !ok;
                if state.completed == n {
                    self.shared.done.notify_all();
                }
            } else if state.completed < n {
                drop(
                    self.shared
                        .done
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner),
                );
            } else {
                state.job = None;
                let panicked = state.panicked;
                drop(state);
                assert!(!panicked, "a fan-out task panicked");
                return;
            }
        }
    }

    /// Split `buf` into the given `(start, len)` segments — which must be
    /// ascending, pairwise disjoint and in bounds (the planner's
    /// prefix-sum segments are, by construction) — and run
    /// `f(k, &mut buf[segments[k]])` across the lanes.
    pub(crate) fn run_disjoint(
        &self,
        buf: &mut [usize],
        segments: &[(usize, usize)],
        f: &(dyn Fn(usize, &mut [usize]) + Sync),
    ) {
        let mut previous_end = 0usize;
        for &(start, len) in segments {
            assert!(
                start >= previous_end && len <= buf.len() - start,
                "fan-out segments must be ascending, disjoint and in bounds"
            );
            previous_end = start + len;
        }
        let base = buf.as_mut_ptr() as usize;
        self.run(segments.len(), &|k| {
            let (start, len) = segments[k];
            f(k, job::segment(base, start, len));
        });
    }
}

impl Drop for FanoutPool {
    fn drop(&mut self) {
        {
            let mut state = lock(&self.shared);
            state.shutdown = true;
            self.shared.work.notify_all();
        }
        for helper in self.helpers.drain(..) {
            let _ = helper.join();
        }
    }
}

fn helper_loop(shared: &Shared, pinner: &Pinner) {
    let _ = pinner.pin_current();
    let mut state = lock(shared);
    loop {
        if state.shutdown {
            return;
        }
        let claim = match state.job {
            Some(job) if state.next < state.n => {
                let k = state.next;
                state.next += 1;
                Some((job, k, state.n))
            }
            _ => None,
        };
        let Some((job, k, n)) = claim else {
            state = shared
                .work
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
            continue;
        };
        drop(state);
        let ok = catch_unwind(AssertUnwindSafe(|| job.call(k))).is_ok();
        state = lock(shared);
        state.completed += 1;
        state.panicked |= !ok;
        if state.completed == n {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn pool(lanes: usize) -> FanoutPool {
        FanoutPool::start(lanes, Arc::new(Pinner::disabled()))
    }

    #[test]
    fn every_task_runs_exactly_once_across_lane_counts() {
        for lanes in [1, 2, 4] {
            let pool = pool(lanes);
            assert_eq!(pool.lanes(), lanes);
            for n in [0usize, 1, 2, 3, 7, 64] {
                let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                pool.run(n, &|k| {
                    hits[k].fetch_add(1, Ordering::Relaxed);
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "lanes={lanes} n={n}"
                );
            }
        }
    }

    #[test]
    fn disjoint_segments_fill_without_aliasing() {
        let pool = pool(4);
        let mut buf = vec![0usize; 100];
        // Segments with a deliberate gap (the gap stays untouched).
        let segments = [(0usize, 30usize), (30, 20), (60, 40)];
        pool.run_disjoint(&mut buf, &segments, &|k, seg| {
            for slot in seg.iter_mut() {
                *slot = k + 1;
            }
        });
        assert!(buf[..30].iter().all(|&v| v == 1));
        assert!(buf[30..50].iter().all(|&v| v == 2));
        assert!(buf[50..60].iter().all(|&v| v == 0), "gap was written");
        assert!(buf[60..].iter().all(|&v| v == 3));
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_segments_are_rejected() {
        let pool = pool(2);
        let mut buf = vec![0usize; 10];
        pool.run_disjoint(&mut buf, &[(0, 6), (5, 5)], &|_, _| {});
    }

    #[test]
    fn a_panicking_task_closes_the_batch_then_reraises() {
        let pool = pool(3);
        let completed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, &|k| {
                if k == 5 {
                    panic!("task bug");
                }
                completed.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err(), "panic must propagate to the submitter");
        // The scope closed: every non-panicking task still ran, and the
        // pool is reusable afterwards.
        assert_eq!(completed.load(Ordering::Relaxed), 15);
        let after = AtomicUsize::new(0);
        pool.run(4, &|_| {
            after.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(after.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn pool_drop_joins_helpers_cleanly() {
        let pool = pool(4);
        pool.run(8, &|_| {});
        drop(pool); // must not hang
    }
}
