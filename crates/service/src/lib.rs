//! # lrb-service — the sharded selection service
//!
//! The ROADMAP's serving layer one level up from `lrb-engine`: the
//! category space is partitioned across N [`SelectionEngine`] shards
//! (one writer thread per shard), cross-shard draws run as a **two-level
//! selection** through the shared [`lrb_core::sharding`] layer — a Fenwick
//! prefix tree over the lock-free per-shard totals picks the shard, the
//! shard's own lock-free snapshot draw finishes inside it — and a
//! request layer fronts the whole thing: a length-prefixed binary
//! protocol over TCP or Unix-domain sockets served by hand-rolled
//! **epoll reactor threads** (raw syscalls, no async runtime, no
//! thread-per-connection — see [`server`] for the sizing and
//! backpressure knobs), with a **flat-combining aggregator** that
//! coalesces concurrent single-draw requests into batched buffer fills
//! against the engine's fused batch path, and pipelined runs of draws
//! per connection coalescing into fused batches.
//!
//! * [`ShardedService`] / [`ServiceCore`] — the in-process sharded core:
//!   partitioning, two-level draws, cross-shard atomic update batches,
//!   per-shard publisher threads, merged metrics. Batched draws run
//!   through the versioned **parallel batch planner** (see [`sharded`]'s
//!   module docs): one master draw, per-shard Philox substreams,
//!   reusable [`DrawPlan`] scratch and a persistent fan-out pool —
//!   bit-deterministic at any lane count and allocation-free once warm.
//! * [`affinity`] — core topology discovery and opt-in
//!   [`CoreMap`]-driven pinning of the service's long-lived threads
//!   (`LRB_PIN` overrides; a graceful no-op off Linux).
//! * [`DrawAggregator`] — flat combining for single draws.
//! * [`ServiceServer`] / [`ServiceClient`] — the wire layer (see
//!   [`protocol`] for the frame format).
//! * [`ServiceTelemetry`] — request/draw/update histograms, routing
//!   journal, shard-imbalance gauge; merged with each shard's engine
//!   telemetry by [`ServiceCore::metrics`].
//!
//! ## Quickstart (in-process)
//!
//! ```
//! use lrb_service::{ServiceConfig, ShardedService};
//! use lrb_rng::{MersenneTwister64, SeedableSource};
//!
//! let service = ShardedService::new(
//!     vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
//!     ServiceConfig { shards: 3, ..ServiceConfig::default() },
//! )?;
//! let mut rng = MersenneTwister64::seed_from_u64(7);
//! let pick = service.draw(&mut rng)?;
//! assert!(pick < 6);
//!
//! service.update(0, 9.0)?;          // enqueued on shard 0
//! service.publish_all()?;           // all shards publish, totals refresh
//! assert_eq!(service.shard_totals().iter().sum::<f64>(), 29.0);
//! # Ok::<(), lrb_core::SelectionError>(())
//! ```
//!
//! [`SelectionEngine`]: lrb_engine::SelectionEngine

// Unsafe is denied crate-wide; the audited exceptions opt back in with a
// module-level `#![allow(unsafe_code)]` — the same audited-island idiom
// as `lrb-obs`'s ring and the engine's hot-swap. Three islands exist:
// the raw epoll/eventfd syscall surface in `reactor::sys`, the
// `sched_setaffinity` call in `affinity::sys`, and the scoped job
// hand-off in `fanout::job` (see each module's safety notes).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod affinity;
pub mod aggregator;
pub mod client;
mod conn;
pub mod error;
mod fanout;
pub mod protocol;
mod reactor;
pub mod server;
pub mod sharded;
pub mod telemetry;

pub use affinity::{parse_cpu_list, CoreMap, Pinner, Topology};
pub use aggregator::DrawAggregator;
pub use client::{ClientConfig, ClientStats, ServiceClient};
pub use error::ServiceError;
pub use server::{ServerAddr, ServerConfig, ServiceServer};
pub use sharded::{
    DrawPlan, RouteLayout, ServiceConfig, ServiceCore, ShardedService, ROUTE_LAYOUT_VERSION,
};
pub use telemetry::{ServiceEvent, ServiceTelemetry, SERVICE_JOURNAL_CAPACITY};
