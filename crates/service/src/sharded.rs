//! The sharded selection core: a contiguous partition of the category
//! space across N [`SelectionEngine`] shards, drawn from in two levels.
//!
//! Level one picks the owning shard through the shared
//! [`lrb_core::sharding`] layer — every shard's total weight lives in a
//! lock-free [`ShardTotals`] cell, frozen per draw batch into a
//! [`TotalsCut`] (a Fenwick prefix tree over the shard totals, the paper's
//! tree one level up). Level two is the shard's own lock-free read path:
//! [`SelectionEngine::read`] + [`Snapshot::sample_into`], so a draw never
//! takes a lock and never blocks on a writer — the composite distribution
//! is exactly `F_i = w_i / Σ_j w_j` against the cut's totals and each
//! shard's published snapshot.
//!
//! Writers follow the **one writer thread per shard** discipline: requests
//! enqueue into any shard's coalescing batch (that path is just a mutex'd
//! map insert, never a rebuild — see the engine's stall fix), and each
//! shard's dedicated publisher thread periodically publishes and refreshes
//! its total cell. Because the level-one cells move independently, a cut
//! can be momentarily stale against a shard's freshly published snapshot;
//! draws that land on a shard whose snapshot went all-zero refresh the
//! totals and retry once, so staleness costs latency, never correctness.
//!
//! ## Batch planning: `ROUTE_LAYOUT` v2
//!
//! Batched draws ([`ServiceCore::draw_into`]) run through a versioned
//! **batch planner**. The current layout, v2
//! ([`RouteLayout::V2Parallel`]), consumes exactly **one** master `u64`
//! from the caller's RNG and derives everything else from counter-based
//! Philox substreams: substream 0 yields the level-one assignment
//! uniforms, substream `1 + s` yields shard `s`'s in-shard fill stream.
//! Because each shard's stream is independent of execution order, the
//! per-shard fills can run **in parallel** across the service's fan-out
//! lanes while the result stays a pure function of `(snapshots, master
//! draw)` — bit-identical at any lane count, the same contract discipline
//! as the engine's `STREAM_LAYOUT_VERSION = 2` batch driver. The previous
//! sequential layout ([`RouteLayout::V1Sequential`]) threads the caller's
//! RNG through every pick and fill in shard order; it is kept as the
//! deterministic oracle the parity tests diff against.
//!
//! Both layouts share the same three-phase shape over a reusable
//! [`DrawPlan`]: assign (one level-one pick per slot, counting per-shard
//! draws), fill (per touched shard, **one** fused
//! [`Snapshot::sample_into`] into that shard's contiguous segment of the
//! plan's fill buffer) and a **single-pass cursor scatter** back to slot
//! order — `O(batch + shards)`, not the old `O(shards · batch)` rescan.
//! With a warm plan the whole path performs no allocation (see
//! `tests/service_alloc.rs`).
//!
//! [`Snapshot::sample_into`]: lrb_engine::Snapshot::sample_into
//! [`TotalsCut`]: lrb_core::sharding::TotalsCut

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lrb_core::sharding::{ShardTotals, TotalsCut};
use lrb_core::SelectionError;
use lrb_engine::{EngineConfig, SelectionEngine};
use lrb_obs::MetricsSnapshot;
use lrb_rng::RandomSource;

use crate::affinity::{CoreMap, Pinner};
use crate::fanout::FanoutPool;
use crate::telemetry::ServiceTelemetry;

/// Version of the batch-planner route layout (how a batch's randomness is
/// laid out across level-one picks and per-shard fills). Bumped when the
/// derivation changes; [`RouteLayout::V2Parallel`] is this version.
pub const ROUTE_LAYOUT_VERSION: u32 = 2;

/// Substream of the master draw that yields level-one assignment uniforms.
const ASSIGN_SUBSTREAM: u64 = 0;

/// Substream of the master draw for shard `s`'s fill is
/// `SHARD_SUBSTREAM_BASE + s`.
const SHARD_SUBSTREAM_BASE: u64 = 1;

/// Batches smaller than this run their v2 fills inline even when fan-out
/// lanes exist: below it, the hand-off latency outweighs the parallel fill
/// (determinism is unaffected — lane count never changes results).
const FANOUT_MIN_BATCH: usize = 1024;

/// Which batch-planner layout [`ServiceCore::draw_into`] uses. See the
/// module docs for the derivation of each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouteLayout {
    /// v1: the caller's RNG is threaded through every level-one pick and
    /// then through each shard's fill, in shard order — strictly
    /// sequential by construction. Kept as the parity oracle.
    V1Sequential,
    /// v2 (default, [`ROUTE_LAYOUT_VERSION`]): one master draw, substream
    /// 0 for assignment, substream `1 + s` per shard — per-shard fills
    /// are order-free and run across the fan-out lanes.
    #[default]
    V2Parallel,
}

/// Tuning knobs for a [`ShardedService`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// How many shards to partition the category space into (clamped to
    /// the category count; at least one).
    pub shards: usize,
    /// Per-shard engine configuration.
    pub engine: EngineConfig,
    /// When set, [`ShardedService::new`] spawns one publisher thread per
    /// shard that publishes pending writes at this cadence (the "one
    /// writer thread per shard" deployment). `None` means publishes happen
    /// only through [`ServiceCore::publish_all`] /
    /// [`ServiceCore::publish_shard`].
    pub publish_interval: Option<Duration>,
    /// Which batch-planner layout draws use (default
    /// [`RouteLayout::V2Parallel`]; see the module docs).
    pub route_layout: RouteLayout,
    /// Parallel fan-out lanes for the v2 planner, **including** the
    /// submitting thread (`lanes - 1` helper threads are spawned once at
    /// construction). `0` = auto: `min(shards, thread budget)`, where the
    /// thread budget is the `LRB_THREADS` environment variable when set,
    /// else the core count. `1` forces inline (sequential) execution —
    /// results are bit-identical either way.
    pub fanout_workers: usize,
    /// Core-pinning policy for the service's long-lived threads (shard
    /// publishers, fan-out lanes and — through
    /// [`ServiceCore::pinner`] — the server's reactors and workers).
    /// Overridable with `LRB_PIN`; see [`crate::affinity`].
    pub core_map: CoreMap,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            engine: EngineConfig::default(),
            publish_interval: None,
            route_layout: RouteLayout::default(),
            fanout_workers: 0,
            core_map: CoreMap::None,
        }
    }
}

impl ServiceConfig {
    /// Resolve [`fanout_workers`](Self::fanout_workers)' `0 = auto`
    /// default against the shard count and the host's thread budget.
    fn resolved_fanout(&self, shards: usize) -> usize {
        if self.fanout_workers > 0 {
            return self.fanout_workers.min(shards.max(1));
        }
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let budget = std::env::var("LRB_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(cores);
        budget.min(shards).max(1)
    }
}

/// Reusable scratch for the batch planner: the per-slot shard assignment,
/// per-shard counts and cursors, the shard-grouped fill buffer and the
/// level-one cut — everything a batch needs, owned by the caller and
/// reused across batches so the steady-state path never allocates.
///
/// Hold one per worker/connection (the server's workers do, through a
/// thread-local inside [`ServiceCore::draw_into`]) or pass your own to
/// [`ServiceCore::draw_into_with_plan`]. Buffers grow to the largest
/// batch/shard-count seen and stay there.
#[derive(Debug)]
pub struct DrawPlan {
    /// Slot → owning shard (the level-one picks, in slot order).
    assignment: Vec<u32>,
    /// Draws routed to each shard this batch.
    counts: Vec<usize>,
    /// Per-shard write cursors into `fill`: seeded with each shard's
    /// segment start (prefix sums of `counts`), consumed by the scatter.
    cursors: Vec<usize>,
    /// `(start, len)` of each **touched** shard's segment in `fill`,
    /// ascending (the fan-out task list).
    segments: Vec<(usize, usize)>,
    /// Touched shard ids, parallel to `segments`.
    segment_shards: Vec<usize>,
    /// Shard-grouped local draws, scattered to slot order at the end.
    fill: Vec<usize>,
    /// The frozen level-one cut, refilled in place per batch.
    cut: TotalsCut,
    /// First fill error by task index (parallel fills report here; the
    /// lowest task index wins so the surfaced error is deterministic).
    error: Mutex<Option<(usize, SelectionError)>>,
}

impl DrawPlan {
    /// An empty plan (`const`, so thread-locals need no lazy initializer);
    /// buffers grow on first use.
    pub const fn new() -> Self {
        Self {
            assignment: Vec::new(),
            counts: Vec::new(),
            cursors: Vec::new(),
            segments: Vec::new(),
            segment_shards: Vec::new(),
            fill: Vec::new(),
            cut: TotalsCut::empty(),
            error: Mutex::new(None),
        }
    }
}

impl Default for DrawPlan {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    /// The per-thread plan behind [`ServiceCore::draw_into`] — one warm
    /// scratch per server worker / publisher / caller thread.
    static THREAD_PLAN: RefCell<DrawPlan> = const { RefCell::new(DrawPlan::new()) };
}

/// One shard: a contiguous category range served by its own engine (the
/// range's global start lives in `ServiceCore::offsets`).
#[derive(Debug)]
struct Shard {
    /// The shard's engine over its contiguous category slice.
    engine: SelectionEngine,
}

/// The shared, thread-safe service state: shards, the level-one totals and
/// the service telemetry. Everything on it is callable from any thread;
/// clones of the `Arc<ServiceCore>` are what the server, the aggregator
/// and the publisher threads hold.
#[derive(Debug)]
pub struct ServiceCore {
    shards: Vec<Shard>,
    /// `offsets[s]` = global index of shard `s`'s first category;
    /// `offsets[shards.len()]` = total category count.
    offsets: Vec<usize>,
    totals: ShardTotals,
    telemetry: ServiceTelemetry,
    /// Which batch-planner layout draws run through.
    layout: RouteLayout,
    /// Persistent lanes for the v2 planner's parallel per-shard fills.
    fanout: FanoutPool,
    /// The service's core-pinning policy, shared with every long-lived
    /// thread the service (or the server on top of it) spawns.
    pinner: Arc<Pinner>,
}

impl ServiceCore {
    fn new(weights: Vec<f64>, config: &ServiceConfig) -> Result<Self, SelectionError> {
        if weights.is_empty() {
            return Err(SelectionError::EmptyFitness);
        }
        // Validate globally first so per-shard construction cannot fail
        // with a shard-local index in its error.
        for (index, &value) in weights.iter().enumerate() {
            if !value.is_finite() || value < 0.0 {
                return Err(SelectionError::InvalidFitness { index, value });
            }
        }
        let n = weights.len();
        let shard_count = config.shards.clamp(1, n);
        let base = n / shard_count;
        let extra = n % shard_count;
        let mut shards = Vec::with_capacity(shard_count);
        let mut offsets = Vec::with_capacity(shard_count + 1);
        let mut start = 0usize;
        let mut initial = Vec::with_capacity(shard_count);
        for s in 0..shard_count {
            let len = base + usize::from(s < extra);
            let slice = weights[start..start + len].to_vec();
            // Each shard persists (and recovers) under its own
            // subdirectory, so a restarted service re-partitions into the
            // same shard layout and every shard finds its own log.
            let mut engine_config = config.engine.clone();
            engine_config.durability = engine_config.durability.for_shard(s);
            let engine = SelectionEngine::new(slice, engine_config)?;
            // Seed the level-one cell from the engine, not the input
            // slice: a durable shard may have recovered weights that
            // supersede the caller's initial vector.
            initial.push(engine.total_weight());
            offsets.push(start);
            shards.push(Shard { engine });
            start += len;
        }
        offsets.push(n);
        let telemetry = ServiceTelemetry::new();
        telemetry.set_imbalance(&initial);
        let pinner = Arc::new(Pinner::from_config(&config.core_map));
        let lanes = config.resolved_fanout(shard_count);
        let fanout = FanoutPool::start(lanes, Arc::clone(&pinner));
        Ok(Self {
            shards,
            offsets,
            totals: ShardTotals::from_totals(&initial),
            telemetry,
            layout: config.route_layout,
            fanout,
            pinner,
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total number of categories across every shard.
    pub fn len(&self) -> usize {
        *self.offsets.last().expect("offsets are never empty")
    }

    /// Whether the service serves zero categories (never true by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The service telemetry.
    pub fn telemetry(&self) -> &ServiceTelemetry {
        &self.telemetry
    }

    /// The batch-planner layout this service draws through.
    pub fn route_layout(&self) -> RouteLayout {
        self.layout
    }

    /// Fan-out lanes available to the v2 planner (including the
    /// submitting thread).
    pub fn fanout_lanes(&self) -> usize {
        self.fanout.lanes()
    }

    /// The service's core-pinning policy. Long-lived threads built on top
    /// of the core (the server's reactors and workers) call
    /// [`Pinner::pin_current`] on it at startup; so do the service's own
    /// publisher and fan-out threads.
    pub fn pinner(&self) -> &Arc<Pinner> {
        &self.pinner
    }

    /// The shard owning global category `index`, as `(shard, local)`.
    fn locate(&self, index: usize) -> Result<(usize, usize), SelectionError> {
        if index >= self.len() {
            return Err(SelectionError::IndexOutOfRange {
                index,
                len: self.len(),
            });
        }
        // First offset strictly above `index`, minus one, owns it.
        let shard = self.offsets.partition_point(|&o| o <= index) - 1;
        Ok((shard, index - self.offsets[shard]))
    }

    /// A shard's engine (tests, metrics; shard-local indices).
    pub fn shard_engine(&self, shard: usize) -> &SelectionEngine {
        &self.shards[shard].engine
    }

    /// Last-published per-shard total weights (lock-free snapshot of the
    /// level-one cells).
    pub fn shard_totals(&self) -> Vec<f64> {
        self.totals.snapshot()
    }

    /// Re-read every shard's published total into the level-one cells and
    /// refresh the imbalance gauge.
    pub fn refresh_totals(&self) {
        for (s, shard) in self.shards.iter().enumerate() {
            self.totals.set(s, shard.engine.total_weight());
        }
        self.telemetry.record_refresh();
        self.telemetry.set_imbalance(&self.totals.snapshot());
    }

    /// Draw one global category index: level-one Fenwick pick over the
    /// shard totals, then the shard's lock-free snapshot draw.
    pub fn draw(&self, rng: &mut dyn RandomSource) -> Result<usize, SelectionError> {
        let started = Instant::now();
        let result = match self.try_draw(rng) {
            // The cut can go stale against a fresh publish (e.g. a shard
            // evaporated to zero after its cell was read): re-read the
            // cells once and retry before giving up.
            Err(SelectionError::AllZeroFitness) => {
                self.refresh_totals();
                self.try_draw(rng)
            }
            other => other,
        };
        if result.is_ok() {
            self.telemetry
                .record_draws(1, started.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
        result
    }

    fn try_draw(&self, rng: &mut dyn RandomSource) -> Result<usize, SelectionError> {
        let cut = self.totals.cut();
        let Some((shard, _residual)) = cut.pick_uniform(rng.next_f64()) else {
            return Err(SelectionError::AllZeroFitness);
        };
        self.telemetry.record_route(shard as u32, 1);
        let local = self.shards[shard]
            .engine
            .read(|snapshot| snapshot.sample(rng))?;
        Ok(self.offsets[shard] + local)
    }

    /// Fill `out` with independent draws (with replacement) through the
    /// batch planner: one level-one pick per slot, then the slots are
    /// grouped per shard and each group is served by **one** buffer fill
    /// through the shard's
    /// [`Snapshot::sample_into`](lrb_engine::Snapshot::sample_into) — the
    /// engine's fused batch path — so an aggregated batch costs one
    /// snapshot acquisition and one streamed fill per touched shard
    /// instead of a draw-by-draw walk. Under the default
    /// [`RouteLayout::V2Parallel`] the per-shard fills run across the
    /// fan-out lanes and the result is bit-identical at any lane count
    /// (see the module docs).
    ///
    /// Scratch comes from a warm per-thread [`DrawPlan`], so the
    /// steady-state path allocates nothing; callers that manage their own
    /// scratch use [`draw_into_with_plan`](Self::draw_into_with_plan).
    pub fn draw_into(
        &self,
        rng: &mut dyn RandomSource,
        out: &mut [usize],
    ) -> Result<(), SelectionError> {
        THREAD_PLAN.with(|plan| self.draw_into_with_plan(rng, out, &mut plan.borrow_mut()))
    }

    /// [`draw_into`](Self::draw_into) with caller-owned scratch: `plan`'s
    /// buffers grow to the batch shape on first use and are reused as-is
    /// afterwards, so a warm plan makes the whole batch path
    /// allocation-free.
    pub fn draw_into_with_plan(
        &self,
        rng: &mut dyn RandomSource,
        out: &mut [usize],
        plan: &mut DrawPlan,
    ) -> Result<(), SelectionError> {
        if out.is_empty() {
            return Ok(());
        }
        let started = Instant::now();
        let result = match self.try_draw_into(rng, out, plan) {
            Err(SelectionError::AllZeroFitness) => {
                self.refresh_totals();
                self.try_draw_into(rng, out, plan)
            }
            other => other,
        };
        if result.is_ok() {
            self.telemetry.record_draws(
                out.len() as u64,
                started.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            );
        }
        result
    }

    fn try_draw_into(
        &self,
        rng: &mut dyn RandomSource,
        out: &mut [usize],
        plan: &mut DrawPlan,
    ) -> Result<(), SelectionError> {
        match self.layout {
            RouteLayout::V1Sequential => self.try_draw_into_v1(rng, out, plan),
            RouteLayout::V2Parallel => self.try_draw_into_v2(rng, out, plan),
        }
    }

    /// Phase one of both layouts: refresh the plan's cut from the live
    /// cells, assign every slot a shard with `pick(u)` over per-slot
    /// uniforms, count per-shard draws, turn the counts into ascending
    /// `(start, len)` segments of the fill buffer and seed the scatter
    /// cursors with the segment starts. Also records per-shard routing
    /// telemetry (deterministically, in shard order).
    fn plan_assignments(
        &self,
        plan: &mut DrawPlan,
        batch: usize,
        mut uniform: impl FnMut() -> f64,
    ) -> Result<(), SelectionError> {
        let shard_count = self.shards.len();
        self.totals.refill_cut(&mut plan.cut);
        plan.assignment.clear();
        plan.assignment.reserve(batch);
        plan.counts.clear();
        plan.counts.resize(shard_count, 0);
        for _ in 0..batch {
            let Some((shard, _)) = plan.cut.pick_uniform(uniform()) else {
                return Err(SelectionError::AllZeroFitness);
            };
            plan.assignment.push(shard as u32);
            plan.counts[shard] += 1;
        }
        plan.cursors.clear();
        plan.cursors.reserve(shard_count);
        plan.segments.clear();
        plan.segment_shards.clear();
        let mut start = 0usize;
        for (shard, &count) in plan.counts.iter().enumerate() {
            plan.cursors.push(start);
            if count > 0 {
                plan.segments.push((start, count));
                plan.segment_shards.push(shard);
                self.telemetry.record_route(shard as u32, count as u32);
                start += count;
            }
        }
        plan.fill.resize(batch, 0usize);
        Ok(())
    }

    /// Phase three of both layouts: one pass over the assignment, writing
    /// each slot from its shard's segment through that shard's cursor —
    /// `O(batch + shards)` total, replacing the old per-shard rescan of
    /// the whole assignment (`O(shards · batch)`).
    fn scatter_fill(&self, plan: &mut DrawPlan, out: &mut [usize]) {
        for (slot, &owner) in plan.assignment.iter().enumerate() {
            let shard = owner as usize;
            let cursor = plan.cursors[shard];
            out[slot] = self.offsets[shard] + plan.fill[cursor];
            plan.cursors[shard] = cursor + 1;
        }
    }

    /// The v1 (sequential oracle) layout: the caller's RNG is threaded
    /// through every level-one pick, then through each touched shard's
    /// fill in shard order — draw-for-draw identical to the service's
    /// historical batch path.
    fn try_draw_into_v1(
        &self,
        rng: &mut dyn RandomSource,
        out: &mut [usize],
        plan: &mut DrawPlan,
    ) -> Result<(), SelectionError> {
        self.plan_assignments(plan, out.len(), || rng.next_f64())?;
        for (k, &(start, len)) in plan.segments.iter().enumerate() {
            let shard = plan.segment_shards[k];
            self.shards[shard]
                .engine
                .read(|snapshot| snapshot.sample_into(rng, &mut plan.fill[start..start + len]))?;
        }
        self.scatter_fill(plan, out);
        Ok(())
    }

    /// The v2 (parallel) layout: exactly one `rng.next_u64()` master
    /// draw; assignment uniforms from Philox substream
    /// [`ASSIGN_SUBSTREAM`], shard `s`'s fill from substream
    /// `SHARD_SUBSTREAM_BASE + s`. Per-shard fills are pure functions of
    /// `(snapshot, master)`, so they run across the fan-out lanes in any
    /// order — or inline for small batches — with bit-identical results.
    fn try_draw_into_v2(
        &self,
        rng: &mut dyn RandomSource,
        out: &mut [usize],
        plan: &mut DrawPlan,
    ) -> Result<(), SelectionError> {
        let master = rng.next_u64();
        let mut assign_rng = lrb_rng::Philox4x32::for_substream(master, ASSIGN_SUBSTREAM);
        self.plan_assignments(plan, out.len(), || assign_rng.next_f64())?;
        self.telemetry.record_planner_batch();
        {
            let mut slot = plan.error.lock().unwrap_or_else(PoisonError::into_inner);
            *slot = None;
        }
        let shards = &self.shards;
        let segment_shards = &plan.segment_shards;
        let error = &plan.error;
        let fill_task = |k: usize, segment: &mut [usize]| {
            let shard = segment_shards[k];
            let outcome = shards[shard].engine.read(|snapshot| {
                snapshot.sample_into_substream(master, SHARD_SUBSTREAM_BASE + shard as u64, segment)
            });
            if let Err(e) = outcome {
                let mut slot = error.lock().unwrap_or_else(PoisonError::into_inner);
                // Keep the lowest task index so the surfaced error does
                // not depend on lane scheduling.
                if slot.map(|(prev, _)| k < prev).unwrap_or(true) {
                    *slot = Some((k, e));
                }
            }
        };
        if plan.fill.len() < FANOUT_MIN_BATCH || plan.segments.len() < 2 {
            for (k, &(start, len)) in plan.segments.iter().enumerate() {
                fill_task(k, &mut plan.fill[start..start + len]);
            }
        } else {
            self.fanout
                .run_disjoint(&mut plan.fill, &plan.segments, &fill_task);
        }
        let failed = plan
            .error
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some((_, e)) = failed {
            return Err(e);
        }
        self.scatter_fill(plan, out);
        Ok(())
    }

    /// Allocating convenience around [`draw_into`](Self::draw_into).
    pub fn draw_many(
        &self,
        rng: &mut dyn RandomSource,
        count: usize,
    ) -> Result<Vec<usize>, SelectionError> {
        let mut out = vec![0usize; count];
        self.draw_into(rng, &mut out)?;
        Ok(out)
    }

    /// Enqueue one weight override for the owning shard (takes effect at
    /// that shard's next publish).
    pub fn update(&self, index: usize, weight: f64) -> Result<(), SelectionError> {
        let started = Instant::now();
        let (shard, local) = self.locate(index)?;
        self.shards[shard].engine.enqueue(local, weight)?;
        self.telemetry.record_updates(1, started);
        Ok(())
    }

    /// Enqueue a batch of global-index overrides, split per owning shard.
    ///
    /// **All-or-nothing across shards:** the whole slice is validated
    /// (index ranges and weight values) before anything is enqueued, so a
    /// bad entry leaves every shard's pending batch untouched — the
    /// cross-shard extension of the engine's own `enqueue_many` contract.
    pub fn update_many(&self, updates: &[(usize, f64)]) -> Result<(), SelectionError> {
        let started = Instant::now();
        // One pass resolves and validates together: each index is located
        // exactly once and grouping happens as we go. All-or-nothing is
        // preserved because a failure returns before anything below
        // touches a shard — `grouped` is scratch, not shard state.
        let mut grouped: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.shards.len()];
        for &(index, weight) in updates {
            let (shard, local) = self.locate(index)?;
            if !weight.is_finite() || weight < 0.0 {
                return Err(SelectionError::InvalidFitness {
                    index,
                    value: weight,
                });
            }
            grouped[shard].push((local, weight));
        }
        for (shard, group) in grouped.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            // Cannot fail: every index is in range and every weight valid.
            self.shards[shard]
                .engine
                .enqueue_many(group)
                .expect("validated batch cannot be rejected by a shard");
        }
        self.telemetry.record_updates(updates.len() as u64, started);
        Ok(())
    }

    /// Fold one multiplicative scale (e.g. an evaporation factor) into
    /// every shard's pending batch.
    pub fn scale_all(&self, factor: f64) -> Result<(), SelectionError> {
        let started = Instant::now();
        if !factor.is_finite() || factor < 0.0 {
            return Err(SelectionError::InvalidScale { factor });
        }
        for shard in &self.shards {
            shard
                .engine
                .scale_all(factor)
                .expect("validated factor cannot be rejected by a shard");
        }
        self.telemetry.record_updates(1, started);
        Ok(())
    }

    /// Publish one shard's pending batch and refresh its level-one cell.
    /// Returns the shard's (possibly unchanged) snapshot version.
    pub fn publish_shard(&self, shard: usize) -> Result<u64, SelectionError> {
        let engine = &self.shards[shard].engine;
        let version = engine.publish()?;
        self.totals.set(shard, engine.total_weight());
        self.telemetry.record_publish(shard as u32, version);
        self.telemetry.set_imbalance(&self.totals.snapshot());
        Ok(version)
    }

    /// Publish every shard in shard order, returning the per-shard
    /// versions. Stops at the first failing shard (earlier shards stay
    /// published; the failing shard's batch is restored by the engine).
    pub fn publish_all(&self) -> Result<Vec<u64>, SelectionError> {
        let mut versions = Vec::with_capacity(self.shards.len());
        for shard in 0..self.shards.len() {
            versions.push(self.publish_shard(shard)?);
        }
        Ok(versions)
    }

    /// One merged metrics snapshot: the service-level counters, gauges and
    /// histograms, plus each shard's engine histograms under
    /// `lrb_service_shard<N>_…` names.
    pub fn metrics(&self) -> MetricsSnapshot {
        let t = &self.telemetry;
        let mut snapshot = MetricsSnapshot::new();
        snapshot
            .counter(
                "lrb_service_draws_total",
                "Draws served by the service",
                t.draws(),
            )
            .counter(
                "lrb_service_updates_total",
                "Weight updates accepted by the service",
                t.updates(),
            )
            .counter(
                "lrb_service_publishes_total",
                "Shard publishes performed through the service",
                t.publishes(),
            )
            .counter(
                "lrb_service_agg_batches_total",
                "Coalesced draw batches executed by the aggregator",
                t.batches(),
            )
            .counter(
                "lrb_service_agg_batched_draws_total",
                "Single-draw requests served inside a coalesced batch",
                t.batched_draws(),
            )
            .counter(
                "lrb_service_planner_batches_total",
                "Batches routed through the v2 parallel draw planner",
                t.planner_batches(),
            )
            .counter(
                "lrb_service_connects_total",
                "Connections accepted by the server",
                t.connects(),
            )
            .counter(
                "lrb_service_disconnects_total",
                "Connections closed (any reason)",
                t.disconnects(),
            )
            .counter(
                "lrb_service_read_deferrals_total",
                "Times a connection's reads were paused by the in-flight budget",
                t.read_deferrals(),
            )
            .counter(
                "lrb_service_slow_consumer_disconnects_total",
                "Connections dropped by the slow-consumer outbound cap",
                t.slow_consumer_disconnects(),
            )
            .gauge(
                "lrb_service_shards",
                "Number of category shards",
                self.shards.len() as f64,
            )
            .gauge(
                "lrb_service_fanout_lanes",
                "Parallel fan-out lanes serving the batch planner",
                self.fanout.lanes() as f64,
            )
            .gauge(
                "lrb_service_pinned_threads",
                "Service threads successfully pinned to cores",
                self.pinner.pinned_threads() as f64,
            )
            .gauge(
                "lrb_service_shard_imbalance",
                "Max-over-mean per-shard total weight (1.0 = balanced)",
                t.imbalance(),
            )
            .histogram(
                "lrb_service_request_ns",
                "End-to-end request handling latency",
                &t.request_latency(),
            )
            .histogram(
                "lrb_service_draw_ns",
                "Per-draw service latency (amortised for batches)",
                &t.draw_latency(),
            )
            .histogram(
                "lrb_service_update_ns",
                "Service-side update enqueue latency",
                &t.update_latency(),
            )
            .histogram(
                "lrb_service_submit_depth",
                "In-flight frame depth when runs were handed to workers",
                &t.submit_depth(),
            );
        for (s, shard) in self.shards.iter().enumerate() {
            let obs = shard.engine.observability();
            snapshot
                .gauge(
                    &format!("lrb_service_shard{s}_total_weight"),
                    "Shard's last published total weight",
                    self.totals.get(s),
                )
                .histogram(
                    &format!("lrb_service_shard{s}_publish_ns"),
                    "Shard publish latency",
                    &obs.publish_latency(),
                )
                .histogram(
                    &format!("lrb_service_shard{s}_enqueue_ns"),
                    "Shard writer enqueue latency",
                    &obs.enqueue_latency(),
                )
                .histogram(
                    &format!("lrb_service_shard{s}_read_ns"),
                    "Shard sampled reader-draw latency",
                    &obs.reader_draw_latency(),
                );
        }
        snapshot
    }
}

/// The owning handle: the shared [`ServiceCore`] plus the per-shard
/// publisher threads (when [`ServiceConfig::publish_interval`] is set).
/// Dropping it stops and joins the publishers; clones of
/// [`core`](Self::core) handed to servers/aggregators keep the shards
/// alive independently.
#[derive(Debug)]
pub struct ShardedService {
    core: Arc<ServiceCore>,
    stop: Arc<AtomicBool>,
    publishers: Vec<JoinHandle<()>>,
}

impl ShardedService {
    /// Partition `weights` across [`ServiceConfig::shards`] contiguous
    /// shards and (optionally) start one publisher thread per shard.
    pub fn new(weights: Vec<f64>, config: ServiceConfig) -> Result<Self, SelectionError> {
        let core = Arc::new(ServiceCore::new(weights, &config)?);
        let stop = Arc::new(AtomicBool::new(false));
        let mut publishers = Vec::new();
        if let Some(interval) = config.publish_interval {
            for shard in 0..core.shard_count() {
                let core = Arc::clone(&core);
                let stop = Arc::clone(&stop);
                publishers.push(std::thread::spawn(move || {
                    core.pinner().pin_current();
                    while !stop.load(Ordering::Acquire) {
                        std::thread::sleep(interval);
                        // A failed publish restored the batch (the engine's
                        // contract); the next tick retries it.
                        let _ = core.publish_shard(shard);
                    }
                }));
            }
        }
        Ok(Self {
            core,
            stop,
            publishers,
        })
    }

    /// A clone of the shared core for servers, aggregators and tests.
    pub fn core(&self) -> Arc<ServiceCore> {
        Arc::clone(&self.core)
    }

    /// Stop and join the publisher threads (also runs on drop).
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        for handle in self.publishers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::ops::Deref for ShardedService {
    type Target = ServiceCore;

    fn deref(&self) -> &Self::Target {
        &self.core
    }
}

impl Drop for ShardedService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::ServiceEvent;
    use lrb_rng::{MersenneTwister64, SeedableSource};

    fn weights_1_to_12() -> Vec<f64> {
        (1..=12).map(f64::from).collect()
    }

    #[test]
    fn partition_is_contiguous_and_covers_every_category() {
        let service = ShardedService::new(weights_1_to_12(), ServiceConfig::default()).unwrap();
        assert_eq!(service.shard_count(), 4);
        assert_eq!(service.len(), 12);
        // Shard totals are the contiguous range sums 1+2+3, 4+5+6, …
        assert_eq!(service.shard_totals(), vec![6.0, 15.0, 24.0, 33.0]);
        // Uneven split: 5 categories over 3 shards → 2, 2, 1.
        let service = ShardedService::new(
            vec![1.0; 5],
            ServiceConfig {
                shards: 3,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        assert_eq!(service.shard_totals(), vec![2.0, 2.0, 1.0]);
        // Shard count clamps to the category count.
        let service = ShardedService::new(
            vec![1.0, 2.0],
            ServiceConfig {
                shards: 16,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        assert_eq!(service.shard_count(), 2);
    }

    #[test]
    fn construction_rejects_bad_inputs_with_global_indices() {
        assert_eq!(
            ShardedService::new(Vec::new(), ServiceConfig::default()).err(),
            Some(SelectionError::EmptyFitness)
        );
        let mut weights = weights_1_to_12();
        weights[7] = -1.0;
        assert_eq!(
            ShardedService::new(weights, ServiceConfig::default()).err(),
            Some(SelectionError::InvalidFitness {
                index: 7,
                value: -1.0
            })
        );
    }

    #[test]
    fn draws_cover_the_space_and_zero_weights_are_never_drawn() {
        let mut weights = weights_1_to_12();
        weights[0] = 0.0;
        weights[6] = 0.0;
        let service = ShardedService::new(weights.clone(), ServiceConfig::default()).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(11);
        let mut seen = [false; 12];
        for _ in 0..2_000 {
            let pick = service.draw(&mut rng).unwrap();
            assert!(weights[pick] > 0.0, "drew zero-weight category {pick}");
            seen[pick] = true;
        }
        for (index, &weight) in weights.iter().enumerate() {
            assert_eq!(seen[index], weight > 0.0, "category {index}");
        }
    }

    #[test]
    fn batched_draws_agree_with_the_support_too() {
        let service = ShardedService::new(weights_1_to_12(), ServiceConfig::default()).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(12);
        let picks = service.draw_many(&mut rng, 500).unwrap();
        assert_eq!(picks.len(), 500);
        assert!(picks.iter().all(|&p| p < 12));
        // All four shards get traffic under these totals.
        let journal = service.telemetry().journal();
        for shard in 0..4u32 {
            assert!(
                journal
                    .iter()
                    .any(|e| matches!(e, ServiceEvent::Route { shard: s, .. } if *s == shard)),
                "shard {shard} never routed"
            );
        }
    }

    #[test]
    fn updates_route_to_the_owning_shard_and_publish_refreshes_totals() {
        let service = ShardedService::new(weights_1_to_12(), ServiceConfig::default()).unwrap();
        // Category 7 lives on shard 2 (ranges 0..3, 3..6, 6..9, 9..12).
        service.update(7, 80.0).unwrap();
        // Not visible before the shard publishes.
        assert_eq!(service.shard_totals(), vec![6.0, 15.0, 24.0, 33.0]);
        let versions = service.publish_all().unwrap();
        assert_eq!(versions, vec![0, 0, 1, 0]); // only shard 2 republished
        assert_eq!(service.shard_totals(), vec![6.0, 15.0, 96.0, 33.0]);
        // The imbalance gauge follows: max 96 over mean 37.5.
        let imbalance = service.telemetry().imbalance();
        assert!((imbalance - 96.0 / 37.5).abs() < 1e-12, "{imbalance}");
        assert!(service.telemetry().journal().iter().any(|e| matches!(
            e,
            ServiceEvent::ShardPublish {
                shard: 2,
                version: 1
            }
        )));
    }

    #[test]
    fn update_many_is_all_or_nothing_across_shards() {
        let service = ShardedService::new(weights_1_to_12(), ServiceConfig::default()).unwrap();
        // Second entry is out of range: the first entry (shard 0) must NOT
        // be enqueued.
        assert_eq!(
            service.update_many(&[(0, 5.0), (99, 1.0)]),
            Err(SelectionError::IndexOutOfRange { index: 99, len: 12 })
        );
        // Third entry has a bad weight: shards 0 and 3 must stay clean.
        // (NaN breaks Err equality, so match structurally.)
        assert!(matches!(
            service.update_many(&[(1, 5.0), (10, 2.0), (4, f64::NAN)]),
            Err(SelectionError::InvalidFitness { index: 4, value }) if value.is_nan()
        ));
        let versions = service.publish_all().unwrap();
        assert_eq!(versions, vec![0, 0, 0, 0], "a shard saw a partial batch");
        assert_eq!(service.shard_totals(), vec![6.0, 15.0, 24.0, 33.0]);

        // A valid batch lands on every touched shard atomically.
        service
            .update_many(&[(0, 2.0), (5, 7.0), (11, 13.0)])
            .unwrap();
        service.publish_all().unwrap();
        assert_eq!(service.shard_totals(), vec![7.0, 16.0, 24.0, 34.0]);
    }

    #[test]
    fn scale_all_applies_to_every_shard() {
        let service = ShardedService::new(weights_1_to_12(), ServiceConfig::default()).unwrap();
        assert_eq!(
            service.scale_all(f64::INFINITY),
            Err(SelectionError::InvalidScale {
                factor: f64::INFINITY
            })
        );
        service.scale_all(0.5).unwrap();
        service.publish_all().unwrap();
        assert_eq!(service.shard_totals(), vec![3.0, 7.5, 12.0, 16.5]);
    }

    #[test]
    fn stale_totals_recover_by_refreshing_and_retrying() {
        // Evaporate everything to zero through the engines directly, so the
        // level-one cells go stale (they still claim mass).
        let service = ShardedService::new(weights_1_to_12(), ServiceConfig::default()).unwrap();
        for shard in 0..service.shard_count() {
            let engine = service.shard_engine(shard);
            engine.scale_all(0.0).unwrap();
            engine.publish().unwrap();
        }
        assert_eq!(service.shard_totals(), vec![6.0, 15.0, 24.0, 33.0]);
        let mut rng = MersenneTwister64::seed_from_u64(13);
        // The draw lands on a stale shard, refreshes, and reports the truth.
        assert_eq!(service.draw(&mut rng), Err(SelectionError::AllZeroFitness));
        assert_eq!(service.shard_totals(), vec![0.0, 0.0, 0.0, 0.0]);
        assert!(service
            .telemetry()
            .journal()
            .iter()
            .any(|e| matches!(e, ServiceEvent::TotalsRefresh)));
    }

    #[test]
    fn publisher_threads_publish_without_explicit_calls() {
        let service = ShardedService::new(
            weights_1_to_12(),
            ServiceConfig {
                publish_interval: Some(Duration::from_millis(1)),
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        service.update(0, 100.0).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while service.shard_totals()[0] != 105.0 {
            assert!(
                Instant::now() < deadline,
                "publisher thread never published the update"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn metrics_merge_service_and_per_shard_rows() {
        let service = ShardedService::new(weights_1_to_12(), ServiceConfig::default()).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(14);
        service.draw(&mut rng).unwrap();
        service.update(3, 9.0).unwrap();
        service.publish_all().unwrap();
        let text = service.metrics().to_prometheus();
        for needle in [
            "lrb_service_draws_total 1",
            "lrb_service_updates_total 1",
            "lrb_service_shards 4",
            "lrb_service_shard_imbalance",
            "lrb_service_draw_ns",
            "lrb_service_shard0_publish_ns",
            "lrb_service_shard3_total_weight",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
