//! The backend cost model: pick the cheapest sampler for a workload, with
//! constants that come from **measurement** instead of guesswork.
//!
//! Every publish freezes the weight vector into a new immutable snapshot, so
//! the relevant cost per publish window is
//! `build(backend) + draws · per_draw(backend)`. Each registered
//! [`FrozenBackend`](crate::backend::FrozenBackend) supplies its own
//! closed-form *abstract* cost (in scale-free "weight ops"); the
//! [`CostEstimator`] here scales those ops into nanoseconds per backend:
//!
//! * [`CostEstimator::unit`] uses 1 ns/op everywhere, reducing the choice to
//!   the pure closed-form arg-min — deterministic, host-independent, the
//!   default for tests and fixed workloads;
//! * [`CostEstimator::calibrate`] runs a one-shot startup micro-benchmark
//!   (build + a burst of draws per backend) so the constants reflect what
//!   the ops actually cost *on this host*;
//! * per-publish observations of real build and draw times feed an EWMA on
//!   top of either seed, so the estimate tracks drift (cache pressure,
//!   frequency scaling, changing skew) while the engine runs.
//!
//! The estimator also answers the **mid-stream** question
//! ([`CostEstimator::cheapest_given_incumbent`]): once a snapshot is built,
//! its build cost is sunk, so switching backends between publishes pays the
//! challenger's build against only the incumbent's *remaining* draw cost —
//! the decider logic behind
//! [`SelectionEngine::maybe_rebalance`](crate::SelectionEngine::maybe_rebalance).

use std::time::Instant;

use lrb_rng::Philox4x32;

use crate::backend::{BackendCost, BackendRegistry};

/// How the engine should pick its snapshot backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendChoice {
    /// Re-run the cost model at every publish against the fresh weights and
    /// the observed draw rate.
    #[default]
    Auto,
    /// Always use one backend, by registry name (benches and conformance
    /// tests pin this).
    Fixed(&'static str),
}

/// The workload shape the cost model scores backends against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Number of categories `n`.
    pub categories: usize,
    /// Expected draws served by one snapshot before the next publish.
    pub draws_per_publish: f64,
    /// Weight skew `w_max / w_mean` (≥ 1 for any non-degenerate vector);
    /// equals the expected stochastic-acceptance rejection rounds.
    pub skew: f64,
}

impl WorkloadProfile {
    /// Measure the skew of a weight vector (1.0 for all-zero or empty
    /// vectors, where every backend degenerates identically anyway).
    pub fn measure(weights: &[f64], draws_per_publish: f64) -> Self {
        let total: f64 = weights.iter().sum();
        let max = weights.iter().cloned().fold(0.0, f64::max);
        let skew = if total > 0.0 {
            weights.len() as f64 * max / total
        } else {
            1.0
        };
        Self {
            categories: weights.len(),
            draws_per_publish,
            skew,
        }
    }
}

/// An exponentially weighted moving average over non-negative observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    value: Option<f64>,
    alpha: f64,
}

impl Ewma {
    /// An empty average with smoothing factor `alpha` (weight of the newest
    /// observation).
    pub fn new(alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        Self { value: None, alpha }
    }

    /// Fold one observation in (the first observation seeds the average).
    pub fn observe(&mut self, sample: f64) {
        if !sample.is_finite() || sample < 0.0 {
            return; // clock hiccups must not poison the estimate
        }
        self.value = Some(match self.value {
            Some(current) => self.alpha * sample + (1.0 - self.alpha) * current,
            None => sample,
        });
    }

    /// The current average, or `default` before any observation.
    pub fn get(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }

    /// Whether any observation has been folded in.
    pub fn is_seeded(&self) -> bool {
        self.value.is_some()
    }
}

/// Calibrated nanoseconds-per-abstract-op for one backend (one line of the
/// estimator's state, exposed for reports and `BENCH_engine.json`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostConstants {
    /// Registry name of the backend.
    pub backend: &'static str,
    /// EWMA nanoseconds per abstract build op.
    pub build_ns_per_op: f64,
    /// EWMA nanoseconds per abstract draw op.
    pub draw_ns_per_op: f64,
    /// EWMA nanoseconds per abstract incremental-patch op (1.0 until a
    /// patch has been observed; meaningful only for backends with a patch
    /// path).
    pub patch_ns_per_op: f64,
}

/// EWMA smoothing factor for per-publish cost observations: heavy enough to
/// track drift within tens of publishes, light enough that one noisy timing
/// cannot flip the decider.
const COST_EWMA_ALPHA: f64 = 0.2;

/// Draws timed per backend during the one-shot startup micro-calibration.
const CALIBRATION_DRAWS: usize = 512;

/// Per-backend nanosecond cost constants: a closed-form op model scaled by
/// measured (or unit) ns/op, updated by EWMA as real publishes are observed.
#[derive(Debug, Clone)]
pub struct CostEstimator {
    names: Vec<&'static str>,
    build_ns_per_op: Vec<Ewma>,
    draw_ns_per_op: Vec<Ewma>,
    patch_ns_per_op: Vec<Ewma>,
}

impl CostEstimator {
    /// Uncalibrated constants: 1 ns per abstract op everywhere, so choices
    /// reduce to the deterministic closed-form arg-min.
    pub fn unit(registry: &BackendRegistry) -> Self {
        Self {
            names: registry.names(),
            build_ns_per_op: vec![Ewma::new(COST_EWMA_ALPHA); registry.len()],
            draw_ns_per_op: vec![Ewma::new(COST_EWMA_ALPHA); registry.len()],
            patch_ns_per_op: vec![Ewma::new(COST_EWMA_ALPHA); registry.len()],
        }
    }

    /// One-shot startup micro-calibration: for every registered backend,
    /// build a probe sampler over `probe_categories` mildly skewed weights
    /// and time the build plus a burst of draws, seeding the ns/op EWMAs
    /// with what this host actually measures.
    pub fn calibrate(registry: &BackendRegistry, probe_categories: usize) -> Self {
        let mut estimator = Self::unit(registry);
        let n = probe_categories.clamp(16, 8192);
        // Mild skew keeps stochastic acceptance in its rejection regime, as
        // in realistic serving, without tripping its degenerate fallback.
        let weights: Vec<f64> = (0..n).map(|i| ((i % 7) + 1) as f64).collect();
        let profile = WorkloadProfile::measure(&weights, CALIBRATION_DRAWS as f64);
        let mut buffer = vec![0usize; CALIBRATION_DRAWS];
        // A small probe batch (~1% dirty) for seeding the patch constants.
        let probe_overrides: Vec<(usize, f64)> =
            (0..(n / 100).max(1)).map(|i| ((i * 97) % n, 2.5)).collect();
        for (entry, backend) in registry.entries().iter().enumerate() {
            let cost = backend.model_cost(&profile);
            let started = Instant::now();
            let Ok(sampler) = backend.build(&weights) else {
                continue; // a backend that cannot build the probe keeps unit costs
            };
            estimator.observe_build(entry, &cost, started.elapsed().as_nanos() as f64);
            let mut rng = Philox4x32::for_substream(0xCA11B8, entry as u64);
            let started = Instant::now();
            if sampler.sample_into(&mut rng, &mut buffer).is_ok() {
                estimator.observe_draws(
                    entry,
                    &cost,
                    CALIBRATION_DRAWS as f64,
                    started.elapsed().as_nanos() as f64,
                );
            }
            if let Some(patch_ops) =
                backend.model_patch_cost(&profile, probe_overrides.len(), false)
            {
                let started = Instant::now();
                if let Some(Ok(_)) = backend.try_patch(sampler.as_ref(), &probe_overrides, 1.0) {
                    estimator.observe_patch(entry, patch_ops, started.elapsed().as_nanos() as f64);
                }
            }
        }
        estimator
    }

    /// Fold in a measured build: `elapsed_ns` for a build the model priced
    /// at `cost.build_ops` abstract ops.
    pub fn observe_build(&mut self, entry: usize, cost: &BackendCost, elapsed_ns: f64) {
        if cost.build_ops > 0.0 {
            self.build_ns_per_op[entry].observe(elapsed_ns / cost.build_ops);
        }
    }

    /// Fold in measured draws: `elapsed_ns` for `draws` draws the model
    /// priced at `cost.per_draw_ops` abstract ops each.
    pub fn observe_draws(&mut self, entry: usize, cost: &BackendCost, draws: f64, elapsed_ns: f64) {
        let ops = draws * cost.per_draw_ops;
        if ops > 0.0 {
            self.draw_ns_per_op[entry].observe(elapsed_ns / ops);
        }
    }

    /// Fold in a measured incremental patch: `elapsed_ns` for a patch the
    /// model priced at `patch_ops` abstract ops.
    pub fn observe_patch(&mut self, entry: usize, patch_ops: f64, elapsed_ns: f64) {
        if patch_ops > 0.0 {
            self.patch_ns_per_op[entry].observe(elapsed_ns / patch_ops);
        }
    }

    /// Predicted nanoseconds to freeze via a full build on `entry`.
    pub fn build_ns(&self, entry: usize, build_ops: f64) -> f64 {
        self.build_ns_per_op[entry].get(1.0) * build_ops
    }

    /// Predicted nanoseconds to freeze via an incremental patch on `entry`.
    pub fn patch_ns(&self, entry: usize, patch_ops: f64) -> f64 {
        self.patch_ns_per_op[entry].get(1.0) * patch_ops
    }

    /// Predicted nanoseconds for one publish window on `entry`:
    /// `build + draws · per_draw`, in calibrated ns.
    pub fn window_ns(&self, entry: usize, cost: &BackendCost, draws: f64) -> f64 {
        self.build_ns_per_op[entry].get(1.0) * cost.build_ops
            + draws.max(0.0) * self.draw_ns_per_op[entry].get(1.0) * cost.per_draw_ops
    }

    /// The cheapest backend for `profile` when the build must be paid (the
    /// publish-time question). Ties break toward earlier registry entries.
    pub fn cheapest(&self, registry: &BackendRegistry, profile: &WorkloadProfile) -> usize {
        self.argmin(registry, profile, None)
    }

    /// The publish-time decision with the incremental fast path priced in:
    /// every challenger pays its full build, while the `incumbent` (the
    /// backend the previous snapshot was frozen under) may instead pay its
    /// patch cost for the `dirty` coalesced categories — whichever of its
    /// two freeze paths is cheaper. Returns the winning entry and whether
    /// the incumbent won *because of* (and should take) the patch path.
    pub fn cheapest_for_publish(
        &self,
        registry: &BackendRegistry,
        profile: &WorkloadProfile,
        incumbent: Option<usize>,
        dirty: usize,
        scaled: bool,
    ) -> (usize, bool) {
        assert!(!registry.is_empty(), "cannot choose from an empty registry");
        let draws = profile.draws_per_publish.max(0.0);
        let mut best = 0;
        let mut best_ns = f64::INFINITY;
        let mut best_patches = false;
        for (entry, backend) in registry.entries().iter().enumerate() {
            let cost = backend.model_cost(profile);
            let build_ns = self.build_ns(entry, cost.build_ops);
            let mut freeze_ns = build_ns;
            let mut patches = false;
            if incumbent == Some(entry) {
                if let Some(patch_ops) = backend.model_patch_cost(profile, dirty, scaled) {
                    let patch_ns = self.patch_ns(entry, patch_ops);
                    if patch_ns < build_ns {
                        freeze_ns = patch_ns;
                        patches = true;
                    }
                }
            }
            let ns = freeze_ns + draws * self.draw_ns_per_op[entry].get(1.0) * cost.per_draw_ops;
            if ns < best_ns {
                best = entry;
                best_ns = ns;
                best_patches = patches;
            }
        }
        (best, best_patches)
    }

    /// The cheapest backend when `incumbent` is already built (the
    /// mid-stream question): the incumbent's build cost is sunk, so a
    /// challenger must amortise its own build against the incumbent's
    /// remaining draw cost within one expected window. Returns the
    /// incumbent's index when staying put is cheapest.
    pub fn cheapest_given_incumbent(
        &self,
        registry: &BackendRegistry,
        profile: &WorkloadProfile,
        incumbent: usize,
    ) -> usize {
        self.argmin(registry, profile, Some(incumbent))
    }

    fn argmin(
        &self,
        registry: &BackendRegistry,
        profile: &WorkloadProfile,
        incumbent: Option<usize>,
    ) -> usize {
        assert!(!registry.is_empty(), "cannot choose from an empty registry");
        let draws = profile.draws_per_publish;
        let mut best = 0;
        let mut best_ns = f64::INFINITY;
        for (entry, backend) in registry.entries().iter().enumerate() {
            let cost = backend.model_cost(profile);
            let ns = if incumbent == Some(entry) {
                // Sunk build: only the remaining draws cost anything.
                draws.max(0.0) * self.draw_ns_per_op[entry].get(1.0) * cost.per_draw_ops
            } else {
                self.window_ns(entry, &cost, draws)
            };
            if ns < best_ns {
                best = entry;
                best_ns = ns;
            }
        }
        best
    }

    /// The current constants, in registry order (for telemetry reports).
    pub fn constants(&self) -> Vec<CostConstants> {
        self.names
            .iter()
            .enumerate()
            .map(|(entry, &backend)| CostConstants {
                backend,
                build_ns_per_op: self.build_ns_per_op[entry].get(1.0),
                draw_ns_per_op: self.draw_ns_per_op[entry].get(1.0),
                patch_ns_per_op: self.patch_ns_per_op[entry].get(1.0),
            })
            .collect()
    }
}

/// Pick the cheapest backend for the profile with **unit** cost constants —
/// the deterministic closed-form arg-min (ties break toward the earliest
/// registry entry; in the standard registry that is the Fenwick tree, the
/// most predictable engine).
pub fn choose_backend(registry: &BackendRegistry, profile: &WorkloadProfile) -> &'static str {
    let entry = CostEstimator::unit(registry).cheapest(registry, profile);
    registry.entries()[entry].name()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> BackendRegistry {
        BackendRegistry::standard()
    }

    #[test]
    fn balanced_weights_with_moderate_draws_pick_stochastic_acceptance() {
        // skew ≈ 1: SA draws are ~2 ops with a build as cheap as Fenwick's.
        let profile = WorkloadProfile {
            categories: 1 << 16,
            draws_per_publish: 1024.0,
            skew: 1.2,
        };
        assert_eq!(
            choose_backend(&registry(), &profile),
            "stochastic-acceptance"
        );
    }

    #[test]
    fn draw_heavy_windows_amortise_the_alias_build() {
        // Many draws per publish: alias' O(1) draws beat SA once the skew
        // makes SA rounds pricier than a table lookup.
        let profile = WorkloadProfile {
            categories: 4096,
            draws_per_publish: 1.0e6,
            skew: 8.0,
        };
        assert_eq!(choose_backend(&registry(), &profile), "alias");
    }

    #[test]
    fn degenerate_skew_never_picks_stochastic_acceptance() {
        let profile = WorkloadProfile {
            categories: 1 << 14,
            draws_per_publish: 256.0,
            skew: 10_000.0,
        };
        assert_ne!(
            choose_backend(&registry(), &profile),
            "stochastic-acceptance"
        );
    }

    #[test]
    fn few_draws_per_publish_pick_the_cheap_build() {
        // One draw per publish: build cost dominates, alias' 3n loses.
        let profile = WorkloadProfile {
            categories: 1 << 12,
            draws_per_publish: 1.0,
            skew: 4.0,
        };
        assert_ne!(choose_backend(&registry(), &profile), "alias");
    }

    #[test]
    fn measure_computes_the_skew_as_expected_rounds() {
        let p = WorkloadProfile::measure(&[1.0, 1.0, 6.0], 10.0);
        assert_eq!(p.categories, 3);
        assert!((p.skew - 3.0 * 6.0 / 8.0).abs() < 1e-12);
        let zero = WorkloadProfile::measure(&[0.0, 0.0], 10.0);
        assert_eq!(zero.skew, 1.0);
    }

    #[test]
    fn ewma_seeds_then_smooths() {
        let mut avg = Ewma::new(0.5);
        assert!(!avg.is_seeded());
        assert_eq!(avg.get(9.0), 9.0);
        avg.observe(4.0);
        assert!(avg.is_seeded());
        assert_eq!(avg.get(9.0), 4.0);
        avg.observe(8.0);
        assert_eq!(avg.get(9.0), 6.0);
        avg.observe(f64::NAN); // ignored
        avg.observe(-1.0); // ignored
        assert_eq!(avg.get(9.0), 6.0);
    }

    #[test]
    fn observations_steer_the_choice() {
        // A profile where unit costs pick stochastic acceptance; make SA
        // draws look 100x more expensive than measured elsewhere and the
        // arg-min must move off it.
        let registry = registry();
        let profile = WorkloadProfile {
            categories: 4096,
            draws_per_publish: 1024.0,
            skew: 1.0,
        };
        let mut estimator = CostEstimator::unit(&registry);
        let sa = registry.index_of("stochastic-acceptance").unwrap();
        assert_eq!(estimator.cheapest(&registry, &profile), sa);
        let cost = registry.entries()[sa].model_cost(&profile);
        for _ in 0..32 {
            estimator.observe_draws(sa, &cost, 1.0, 100.0 * cost.per_draw_ops);
        }
        assert_ne!(estimator.cheapest(&registry, &profile), sa);
    }

    #[test]
    fn incumbent_build_cost_is_sunk_mid_stream() {
        // Few draws left in the window: switching cannot amortise a build,
        // so the incumbent survives even where a fresh publish would pick
        // differently.
        let registry = registry();
        let estimator = CostEstimator::unit(&registry);
        let profile = WorkloadProfile {
            categories: 4096,
            draws_per_publish: 4.0,
            skew: 1.0,
        };
        let alias = registry.index_of("alias").unwrap();
        assert_ne!(estimator.cheapest(&registry, &profile), alias);
        assert_eq!(
            estimator.cheapest_given_incumbent(&registry, &profile, alias),
            alias,
            "a sunk build must not be re-charged"
        );
        // With a huge remaining window the incumbent's per-draw penalty
        // dominates and the decider switches away.
        let heavy = WorkloadProfile {
            categories: 4096,
            draws_per_publish: 1.0e7,
            skew: 2_000.0,
        };
        let sa = registry.index_of("stochastic-acceptance").unwrap();
        assert_ne!(
            estimator.cheapest_given_incumbent(&registry, &heavy, sa),
            sa,
            "degenerate skew must push draws off stochastic acceptance"
        );
    }

    #[test]
    fn calibrate_seeds_every_constant() {
        let registry = registry();
        let estimator = CostEstimator::calibrate(&registry, 2048);
        for constants in estimator.constants() {
            assert!(
                constants.build_ns_per_op > 0.0 && constants.build_ns_per_op.is_finite(),
                "{}: build {}",
                constants.backend,
                constants.build_ns_per_op
            );
            assert!(
                constants.draw_ns_per_op > 0.0 && constants.draw_ns_per_op.is_finite(),
                "{}: draw {}",
                constants.backend,
                constants.draw_ns_per_op
            );
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(BackendChoice::default(), BackendChoice::Auto);
        assert_eq!(
            registry().names(),
            vec!["fenwick", "alias", "stochastic-acceptance"]
        );
    }
}
