//! The backend cost model: pick the cheapest sampler for a workload.
//!
//! Every publish freezes the weight vector into a new immutable snapshot, so
//! the relevant cost per publish window is
//! `build(backend) + draws · per_draw(backend)`. The three backends trade
//! these off differently:
//!
//! | backend | build | per draw |
//! |---|---|---|
//! | Fenwick tree | `n` | `log₂ n` |
//! | Vose alias table | `≈ 3n` | `O(1)` |
//! | stochastic acceptance | `n` | `≈ skew` expected rejection rounds |
//!
//! where `skew = w_max / w_mean` is exactly the expected rejection round
//! count `n · w_max / Σ w`. The heuristic evaluates the three closed forms
//! and takes the arg-min, so the choice degrades gracefully instead of
//! flipping on hand-tuned thresholds.

/// The sampler families a snapshot can be built over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Fenwick tree: `O(log n)` draws, cheapest build, skew-immune.
    Fenwick,
    /// Vose alias table: `O(1)` draws after the priciest build.
    AliasRebuild,
    /// Stochastic acceptance: `O(1)` expected draws on balanced weights.
    StochasticAcceptance,
}

impl BackendKind {
    /// A short, stable, machine-friendly name (used in reports and JSON).
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Fenwick => "fenwick",
            BackendKind::AliasRebuild => "alias",
            BackendKind::StochasticAcceptance => "stochastic-acceptance",
        }
    }

    /// Every backend, in a stable order (for sweeps and conformance tests).
    pub fn all() -> [BackendKind; 3] {
        [
            BackendKind::Fenwick,
            BackendKind::AliasRebuild,
            BackendKind::StochasticAcceptance,
        ]
    }
}

/// How the engine should pick its snapshot backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendChoice {
    /// Re-run the cost model at every publish against the fresh weights.
    #[default]
    Auto,
    /// Always use one backend (benches and conformance tests pin this).
    Fixed(BackendKind),
}

/// The workload shape the cost model scores backends against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Number of categories `n`.
    pub categories: usize,
    /// Expected draws served by one snapshot before the next publish.
    pub draws_per_publish: f64,
    /// Weight skew `w_max / w_mean` (≥ 1 for any non-degenerate vector);
    /// equals the expected stochastic-acceptance rejection rounds.
    pub skew: f64,
}

impl WorkloadProfile {
    /// Measure the skew of a weight vector (1.0 for all-zero or empty
    /// vectors, where every backend degenerates identically anyway).
    pub fn measure(weights: &[f64], draws_per_publish: f64) -> Self {
        let total: f64 = weights.iter().sum();
        let max = weights.iter().cloned().fold(0.0, f64::max);
        let skew = if total > 0.0 {
            weights.len() as f64 * max / total
        } else {
            1.0
        };
        Self {
            categories: weights.len(),
            draws_per_publish,
            skew,
        }
    }
}

/// Mirror of the stochastic-acceptance degenerate-skew threshold: past it a
/// draw falls back to an `O(n)` linear scan, which the model must price in.
const SA_DEGENERATE_ROUNDS: f64 = 256.0;

/// Score one backend: `build + draws · per_draw` in abstract weight-ops.
fn cost(kind: BackendKind, profile: &WorkloadProfile) -> f64 {
    let n = profile.categories.max(1) as f64;
    let draws = profile.draws_per_publish.max(0.0);
    match kind {
        BackendKind::Fenwick => n + draws * n.log2().max(1.0),
        // Vose's build makes three passes (split, two worklists); each draw
        // is one table lookup plus one comparison — call it 2 ops.
        BackendKind::AliasRebuild => 3.0 * n + draws * 2.0,
        // Each rejection round costs ~2 RNG calls; past the degenerate
        // threshold the sampler linear-scans at O(n) per draw.
        BackendKind::StochasticAcceptance => {
            let per_draw = if profile.skew > SA_DEGENERATE_ROUNDS {
                n
            } else {
                2.0 * profile.skew.max(1.0)
            };
            n + draws * per_draw
        }
    }
}

/// Pick the cheapest backend for the profile (ties break toward the
/// Fenwick tree, the most predictable engine).
pub fn choose_backend(profile: &WorkloadProfile) -> BackendKind {
    let mut best = BackendKind::Fenwick;
    let mut best_cost = cost(best, profile);
    for kind in [BackendKind::AliasRebuild, BackendKind::StochasticAcceptance] {
        let c = cost(kind, profile);
        if c < best_cost {
            best = kind;
            best_cost = c;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_weights_with_moderate_draws_pick_stochastic_acceptance() {
        // skew ≈ 1: SA draws are ~2 ops with a build as cheap as Fenwick's.
        let profile = WorkloadProfile {
            categories: 1 << 16,
            draws_per_publish: 1024.0,
            skew: 1.2,
        };
        assert_eq!(choose_backend(&profile), BackendKind::StochasticAcceptance);
    }

    #[test]
    fn draw_heavy_windows_amortise_the_alias_build() {
        // Many draws per publish: alias' O(1) draws beat SA once the skew
        // makes SA rounds pricier than a table lookup.
        let profile = WorkloadProfile {
            categories: 4096,
            draws_per_publish: 1.0e6,
            skew: 8.0,
        };
        assert_eq!(choose_backend(&profile), BackendKind::AliasRebuild);
    }

    #[test]
    fn degenerate_skew_never_picks_stochastic_acceptance() {
        let profile = WorkloadProfile {
            categories: 1 << 14,
            draws_per_publish: 256.0,
            skew: 10_000.0,
        };
        let choice = choose_backend(&profile);
        assert_ne!(choice, BackendKind::StochasticAcceptance);
    }

    #[test]
    fn few_draws_per_publish_pick_the_cheap_build() {
        // One draw per publish: build cost dominates, alias' 3n loses.
        let profile = WorkloadProfile {
            categories: 1 << 12,
            draws_per_publish: 1.0,
            skew: 4.0,
        };
        assert_ne!(choose_backend(&profile), BackendKind::AliasRebuild);
    }

    #[test]
    fn measure_computes_the_skew_as_expected_rounds() {
        let p = WorkloadProfile::measure(&[1.0, 1.0, 6.0], 10.0);
        assert_eq!(p.categories, 3);
        assert!((p.skew - 3.0 * 6.0 / 8.0).abs() < 1e-12);
        let zero = WorkloadProfile::measure(&[0.0, 0.0], 10.0);
        assert_eq!(zero.skew, 1.0);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(BackendKind::Fenwick.name(), "fenwick");
        assert_eq!(BackendKind::AliasRebuild.name(), "alias");
        assert_eq!(
            BackendKind::StochasticAcceptance.name(),
            "stochastic-acceptance"
        );
        assert_eq!(BackendKind::all().len(), 3);
        assert_eq!(BackendChoice::default(), BackendChoice::Auto);
    }
}
