//! # lrb-engine — a snapshot-isolated concurrent selection service
//!
//! The paper gives exact-probability roulette selection for a *single
//! owner*; the production setting the ROADMAP aims at is many reader
//! threads sampling **while** writers mutate the weights. This crate
//! supplies that serving layer:
//!
//! * [`SelectionEngine`] — writers enqueue weight overrides and
//!   multiplicative evaporation scales into a **coalescing batch**
//!   (last-write-wins per category, scales folded into one factor — the
//!   `DesirabilityTables` algebra lifted to the serving layer), then
//!   [`publish`](SelectionEngine::publish) freezes the folded weights into
//!   an immutable [`Snapshot`] and atomically swaps it in.
//! * [`Snapshot`] — a versioned, immutable frozen sampler. Readers acquire
//!   it **lock-free**: the current snapshot lives in a hand-rolled
//!   `AtomicPtr` swap cell with generation-checked reclamation
//!   (`hot_swap`, no crates.io dependency), fronted by a thread-local
//!   version-checked cache, so the steady-state path of
//!   [`SelectionEngine::read`] is one relaxed generation probe plus a TLS
//!   hit — no shared RMW, no allocation. Draws fill whole buffers through
//!   [`Snapshot::sample_into`] (served-draws telemetry lands on per-reader
//!   padded shards), or deterministic rayon batches through the shared
//!   `lrb_core::batch::BatchDriver`; every draw is exact
//!   (`F_i = w_i / Σ w_j`) against the snapshot's weights, so concurrent
//!   publication can never tear a reader across two distributions.
//! * [`BackendRegistry`] — the sampler families snapshots can be frozen
//!   under, as [`FrozenBackend`] trait objects: Fenwick tree (`O(log n)`
//!   draws, skew-immune), Vose alias table (`O(1)` draws, priciest build),
//!   stochastic acceptance (`O(1)` expected draws on balanced weights) —
//!   plus anything the caller registers.
//! * [`choose_backend`] / [`CostEstimator`] — the decider: each backend
//!   prices a publish window as `freeze + draws · per_draw` in abstract
//!   ops, where *freeze* is a full build — or, for the incumbent backend,
//!   an **incremental patch** of the previous snapshot with the coalesced
//!   batch (Fenwick: `O(d · log n)` point updates on a pooled copy;
//!   stochastic acceptance: `O(d)` aggregate maintenance; the alias table
//!   always rebuilds, with its Vose worklists classified rayon-parallel).
//!   The estimator scales those ops by per-host constants from a one-shot
//!   startup micro-calibration plus an EWMA of observed build/patch/draw
//!   times, picks patch-versus-rebuild per publish
//!   ([`PatchPolicy`] overrides it for tests), and re-decides at every
//!   publish — or **mid-stream** via
//!   [`SelectionEngine::maybe_rebalance`], which treats the incumbent's
//!   build as sunk and switches only when the observed workload drift pays
//!   for the new build. Switches land in
//!   [`SelectionEngine::switch_history`].
//!
//! ## Quickstart
//!
//! ```
//! use lrb_engine::{EngineConfig, SelectionEngine};
//! use lrb_rng::{MersenneTwister64, SeedableSource};
//!
//! let engine = SelectionEngine::new(vec![1.0, 2.0, 3.0, 4.0], EngineConfig::default())?;
//! let mut rng = MersenneTwister64::seed_from_u64(7);
//!
//! // Reader side: grab a snapshot, fill buffers lock-free.
//! let snapshot = engine.snapshot();
//! let mut picks = vec![0usize; 1_000];
//! snapshot.sample_into(&mut rng, &mut picks)?;
//!
//! // Writer side: batch, evaporate, publish.
//! engine.scale_all(0.5)?;
//! engine.enqueue(0, 10.0)?;
//! engine.publish()?;
//! assert_eq!(engine.snapshot().weight(0), 10.0);
//! assert_eq!(engine.snapshot().weight(3), 2.0);
//! # Ok::<(), lrb_core::SelectionError>(())
//! ```

// `deny`, not `forbid`: the one module implementing the lock-free snapshot
// swap (`hot_swap`) carries an audited `#[allow(unsafe_code)]` with its
// safety argument in the module docs; everything else stays safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod engine;
pub mod heuristic;
mod hot_swap;
mod queue;
pub mod snapshot;
pub mod telemetry;

pub use backend::{
    AliasBackend, BackendCost, BackendRegistry, BuildScratch, FenwickBackend, FrozenBackend,
    StochasticAcceptanceBackend,
};
pub use engine::{BackendSwitch, EngineConfig, EngineStats, PatchPolicy, SelectionEngine};
pub use heuristic::{
    choose_backend, BackendChoice, CostConstants, CostEstimator, Ewma, WorkloadProfile,
};
pub use lrb_durable::{Durability, FsyncPolicy, WalOptions};
pub use snapshot::Snapshot;
pub use telemetry::{EngineEvent, EngineTelemetry, JournalEntry, JOURNAL_CAPACITY};
