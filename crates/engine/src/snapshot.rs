//! Immutable, versioned sampler snapshots — the read side of the engine.
//!
//! A [`Snapshot`] freezes one weight vector behind a
//! [`FrozenSampler`](lrb_core::FrozenSampler) backend. It is never mutated
//! after construction, so any number of reader threads can draw from the
//! same `Arc<Snapshot>` without coordination, and a reader that keeps an old
//! snapshot keeps sampling the exact distribution it observed — publication
//! of newer versions cannot tear its draws.

use lrb_core::error::SelectionError;
use lrb_core::fitness::Fitness;
use lrb_core::sequential::AliasSampler;
use lrb_core::traits::{FrozenSampler, PreparedSampler};
use lrb_dynamic::{FenwickSampler, StochasticAcceptanceSampler};
use lrb_rng::{Philox4x32, RandomSource};
use rayon::prelude::*;

use crate::heuristic::BackendKind;

/// A Vose alias table frozen at snapshot-build time, so readers never pay
/// the lazy first-draw rebuild that `RebuildingAliasSampler` would do under
/// its internal mutex.
struct FrozenAlias {
    weights: Vec<f64>,
    total: f64,
    /// `None` when every weight is zero (the table cannot be built; draws
    /// fail with [`SelectionError::AllZeroFitness`]).
    table: Option<AliasSampler>,
}

impl FrozenAlias {
    fn build(weights: Vec<f64>) -> Result<Self, SelectionError> {
        let total: f64 = weights.iter().sum();
        let table = if total > 0.0 {
            let fitness = Fitness::new(weights.clone())?;
            Some(AliasSampler::new(&fitness)?)
        } else {
            None
        };
        Ok(Self {
            weights,
            total,
            table,
        })
    }
}

impl FrozenSampler for FrozenAlias {
    fn len(&self) -> usize {
        self.weights.len()
    }

    fn weight(&self, index: usize) -> f64 {
        self.weights[index]
    }

    fn total_weight(&self) -> f64 {
        self.total
    }

    fn sample(&self, rng: &mut dyn RandomSource) -> Result<usize, SelectionError> {
        match &self.table {
            Some(table) => Ok(table.sample(rng)),
            None => Err(SelectionError::AllZeroFitness),
        }
    }
}

/// One immutable published state of the engine: a version number, the frozen
/// weights, and a backend ready to draw with exact probabilities
/// `F_i = w_i / Σ w_j`.
pub struct Snapshot {
    version: u64,
    backend: BackendKind,
    weights: Vec<f64>,
    total: f64,
    sampler: Box<dyn FrozenSampler>,
}

impl Snapshot {
    /// Freeze `weights` (already validated by the engine) under `backend`.
    pub(crate) fn build(
        version: u64,
        weights: Vec<f64>,
        backend: BackendKind,
    ) -> Result<Self, SelectionError> {
        if weights.is_empty() {
            return Err(SelectionError::EmptyFitness);
        }
        let total: f64 = weights.iter().sum();
        let sampler: Box<dyn FrozenSampler> = match backend {
            BackendKind::Fenwick => Box::new(FenwickSampler::from_weights(weights.clone())?),
            BackendKind::AliasRebuild => Box::new(FrozenAlias::build(weights.clone())?),
            BackendKind::StochasticAcceptance => {
                Box::new(StochasticAcceptanceSampler::from_weights(weights.clone())?)
            }
        };
        Ok(Self {
            version,
            backend,
            weights,
            total,
            sampler,
        })
    }

    /// The snapshot's publication version (monotonically increasing; the
    /// engine's initial state is version 0).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Which backend this snapshot was frozen under.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the snapshot has zero categories (never true — construction
    /// rejects empty weight vectors).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The frozen weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Weight of one category (panics if out of range).
    pub fn weight(&self, index: usize) -> f64 {
        self.weights[index]
    }

    /// Sum of the frozen weights.
    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// The exact selection probabilities `F_i = w_i / Σ w_j` (all zeros when
    /// the total mass is zero).
    pub fn probabilities(&self) -> Vec<f64> {
        if self.total <= 0.0 {
            return vec![0.0; self.weights.len()];
        }
        self.weights.iter().map(|w| w / self.total).collect()
    }

    /// Draw one index with probability exactly `w_i / Σ w_j`.
    pub fn sample(&self, rng: &mut dyn RandomSource) -> Result<usize, SelectionError> {
        self.sampler.sample(rng)
    }

    /// Draw `count` indices independently (with replacement).
    pub fn sample_many(
        &self,
        rng: &mut dyn RandomSource,
        count: usize,
    ) -> Result<Vec<usize>, SelectionError> {
        (0..count).map(|_| self.sample(rng)).collect()
    }

    /// Draw `trials` indices in trial order, rayon-parallel and
    /// deterministic: trial `t` uses its own counter-based Philox stream, so
    /// the result is a pure function of `(snapshot, master_seed, trials)`
    /// regardless of thread count — the same contract as
    /// `lrb_dynamic::batch_sample_indices`.
    pub fn batch_indices(
        &self,
        trials: u64,
        master_seed: u64,
    ) -> Result<Vec<usize>, SelectionError> {
        (0..trials)
            .into_par_iter()
            .map(|trial| {
                let mut rng = Philox4x32::for_substream(master_seed, trial);
                self.sample(&mut rng)
            })
            .collect()
    }

    /// Like [`batch_indices`](Snapshot::batch_indices) but tabulated into
    /// per-index counts.
    pub fn batch_counts(&self, trials: u64, master_seed: u64) -> Result<Vec<u64>, SelectionError> {
        let indices = self.batch_indices(trials, master_seed)?;
        let mut counts = vec![0u64; self.weights.len()];
        for index in indices {
            counts[index] += 1;
        }
        Ok(counts)
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("version", &self.version)
            .field("backend", &self.backend)
            .field("len", &self.weights.len())
            .field("total", &self.total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_rng::{MersenneTwister64, SeedableSource};

    #[test]
    fn every_backend_freezes_and_draws_the_same_distribution() {
        let weights = vec![0.0, 1.0, 2.0, 3.0, 4.0];
        for backend in BackendKind::all() {
            let snap = Snapshot::build(7, weights.clone(), backend).unwrap();
            assert_eq!(snap.version(), 7);
            assert_eq!(snap.backend(), backend);
            assert_eq!(snap.len(), 5);
            assert!(!snap.is_empty());
            assert!((snap.total_weight() - 10.0).abs() < 1e-12);
            assert_eq!(snap.weight(3), 3.0);
            let probs = snap.probabilities();
            assert!((probs[4] - 0.4).abs() < 1e-12);
            let mut rng = MersenneTwister64::seed_from_u64(5);
            for _ in 0..2_000 {
                let i = snap.sample(&mut rng).unwrap();
                assert_ne!(i, 0, "{} drew a zero-weight index", backend.name());
            }
        }
    }

    #[test]
    fn empty_weights_are_rejected() {
        assert_eq!(
            Snapshot::build(0, vec![], BackendKind::Fenwick).map(|_| ()),
            Err(SelectionError::EmptyFitness)
        );
    }

    #[test]
    fn all_zero_snapshots_build_but_refuse_to_draw() {
        for backend in BackendKind::all() {
            let snap = Snapshot::build(1, vec![0.0, 0.0], backend).unwrap();
            assert_eq!(snap.total_weight(), 0.0);
            assert_eq!(snap.probabilities(), vec![0.0, 0.0]);
            let mut rng = MersenneTwister64::seed_from_u64(2);
            assert_eq!(
                snap.sample(&mut rng),
                Err(SelectionError::AllZeroFitness),
                "{}",
                backend.name()
            );
            assert!(snap.batch_indices(5, 1).is_err());
        }
    }

    #[test]
    fn batch_draws_are_deterministic_and_counted() {
        let snap = Snapshot::build(3, vec![1.0, 2.0, 1.0], BackendKind::Fenwick).unwrap();
        let a = snap.batch_indices(5_000, 11).unwrap();
        let b = snap.batch_indices(5_000, 11).unwrap();
        assert_eq!(a, b);
        let counts = snap.batch_counts(5_000, 11).unwrap();
        assert_eq!(counts.iter().sum::<u64>(), 5_000);
        let mut recount = vec![0u64; 3];
        for &i in &a {
            recount[i] += 1;
        }
        assert_eq!(recount, counts);
    }

    #[test]
    fn sample_many_draws_the_requested_count() {
        let snap = Snapshot::build(0, vec![2.0, 2.0], BackendKind::StochasticAcceptance).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(9);
        let picks = snap.sample_many(&mut rng, 100).unwrap();
        assert_eq!(picks.len(), 100);
        assert!(picks.iter().all(|&i| i < 2));
    }

    #[test]
    fn debug_format_names_the_essentials() {
        let snap = Snapshot::build(4, vec![1.0], BackendKind::AliasRebuild).unwrap();
        let text = format!("{snap:?}");
        assert!(text.contains("version"));
        assert!(text.contains('4'));
    }
}
