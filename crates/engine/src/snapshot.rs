//! Immutable, versioned sampler snapshots — the read side of the engine.
//!
//! A [`Snapshot`] freezes one weight vector behind a [`FrozenSampler`]
//! built by a registered [`FrozenBackend`]. It is never mutated
//! after construction, so any number of reader threads can draw from the
//! same `Arc<Snapshot>` without coordination, and a reader that keeps an old
//! snapshot keeps sampling the exact distribution it observed — publication
//! of newer versions cannot tear its draws. Readers fill whole buffers
//! lock-free through [`sample_into`](Snapshot::sample_into); the only
//! shared state a draw touches is the served-draws telemetry (which feeds
//! the engine's draws-per-publish estimate), and even that is sharded into
//! per-reader cache-padded cells so concurrent readers do not bounce a
//! counter line between cores.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use lrb_core::batch::BatchDriver;
use lrb_core::error::SelectionError;
use lrb_core::traits::FrozenSampler;
use lrb_rng::{Philox4x32, RandomSource};

use crate::backend::FrozenBackend;
use crate::hot_swap::CachePadded;
use crate::telemetry::EngineTelemetry;

/// Shards of the served-draws counter. A power of two; each reader thread
/// is pinned to one shard, so concurrent readers recording telemetry touch
/// (with high probability) distinct cache lines instead of bouncing a
/// single hot `fetch_add` line between cores on every buffer.
const SERVED_SHARDS: usize = 16;

/// Monotone reader-thread enumerator feeding the shard assignment.
static NEXT_READER: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's served-counter shard (assigned round-robin on first
    /// use, so up to [`SERVED_SHARDS`] concurrent readers get private
    /// cells).
    static READER_SHARD: usize = NEXT_READER.fetch_add(1, Ordering::Relaxed) % SERVED_SHARDS;

    /// Per-thread tick for sampled reader timing (`const` cell: the TLS
    /// itself never allocates, keeping the timed path 0-alloc). Shared
    /// across snapshots — the 1-in-N guarantee is per thread, which is
    /// what bounds the overhead.
    static TIMING_TICK: Cell<u32> = const { Cell::new(0) };
}

/// Sampled reader-timing handle a snapshot carries when the engine was
/// configured with a non-zero `reader_timing_every`.
pub(crate) struct ReaderTiming {
    /// Time one in this many acquisitions per thread (≥ 1).
    every: u32,
    /// Where timed spans land ([`EngineTelemetry::reader_draw_latency`]).
    obs: Arc<EngineTelemetry>,
}

impl ReaderTiming {
    /// Whether this acquisition is the 1-in-N timed one (advances the
    /// thread's tick either way).
    #[inline]
    fn should_time(&self) -> bool {
        TIMING_TICK.with(|tick| {
            let t = tick.get().wrapping_add(1);
            tick.set(t);
            t % self.every == 0
        })
    }
}

/// One immutable published state of the engine: a version number, the frozen
/// weights, and a backend-built sampler ready to draw with exact
/// probabilities `F_i = w_i / Σ w_j`.
pub struct Snapshot {
    version: u64,
    backend: &'static str,
    weights: Vec<f64>,
    total: f64,
    sampler: Box<dyn FrozenSampler>,
    /// Draws served from this snapshot (relaxed; telemetry only), sharded
    /// into per-reader cells so recording never bounces a shared line.
    served: Box<[CachePadded<AtomicU64>]>,
    /// Sampled reader timing (`None` unless the engine enabled it).
    reader_timing: Option<ReaderTiming>,
}

impl Snapshot {
    /// Freeze `weights` (already validated by the engine) under `backend`.
    pub(crate) fn build(
        version: u64,
        weights: Vec<f64>,
        backend: &Arc<dyn FrozenBackend>,
    ) -> Result<Self, SelectionError> {
        let sampler = backend.build(&weights)?;
        Ok(Self::from_parts(version, weights, backend.name(), sampler))
    }

    /// Assemble a snapshot from an already-built sampler (the engine builds
    /// the sampler itself so it can time the build for telemetry).
    pub(crate) fn from_parts(
        version: u64,
        weights: Vec<f64>,
        backend: &'static str,
        sampler: Box<dyn FrozenSampler>,
    ) -> Self {
        assert!(!weights.is_empty(), "snapshots cover at least one category");
        let total: f64 = weights.iter().sum();
        let served: Vec<CachePadded<AtomicU64>> = (0..SERVED_SHARDS)
            .map(|_| CachePadded(AtomicU64::new(0)))
            .collect();
        Self {
            version,
            backend,
            weights,
            total,
            sampler,
            served: served.into_boxed_slice(),
            reader_timing: None,
        }
    }

    /// Arm sampled reader timing: one in `every` acquisitions per thread is
    /// timed into `obs`'s reader-draw histogram. Called by the engine
    /// before the snapshot is shared (it takes `&mut self`, so it cannot
    /// race readers).
    pub(crate) fn set_reader_timing(&mut self, every: u32, obs: Arc<EngineTelemetry>) {
        debug_assert!(every > 0, "0 means timing off — don't arm it");
        self.reader_timing = Some(ReaderTiming { every, obs });
    }

    /// The snapshot's publication version (monotonically increasing; the
    /// engine's initial state is version 0).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Registry name of the backend this snapshot was frozen under.
    pub fn backend(&self) -> &'static str {
        self.backend
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the snapshot has zero categories (never true — construction
    /// rejects empty weight vectors).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The frozen weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Weight of one category (panics if out of range).
    pub fn weight(&self, index: usize) -> f64 {
        self.weights[index]
    }

    /// Sum of the frozen weights.
    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// The frozen sampler itself — the engine's patch path hands it to the
    /// backend so the next snapshot can be derived from it incrementally.
    pub(crate) fn sampler(&self) -> &dyn FrozenSampler {
        self.sampler.as_ref()
    }

    /// Draws served from this snapshot so far (telemetry; relaxed reads,
    /// summed over the per-reader shards).
    pub fn served(&self) -> u64 {
        self.served
            .iter()
            .map(|cell| cell.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Record `draws` served draws into this thread's shard.
    #[inline]
    fn record_served(&self, draws: u64) {
        let shard = READER_SHARD.with(|s| *s);
        self.served[shard].0.fetch_add(draws, Ordering::Relaxed);
    }

    /// The exact selection probabilities `F_i = w_i / Σ w_j` (all zeros when
    /// the total mass is zero).
    pub fn probabilities(&self) -> Vec<f64> {
        if self.total <= 0.0 {
            return vec![0.0; self.weights.len()];
        }
        self.weights.iter().map(|w| w / self.total).collect()
    }

    /// Draw one index with probability exactly `w_i / Σ w_j`.
    pub fn sample(&self, rng: &mut dyn RandomSource) -> Result<usize, SelectionError> {
        if let Some(timing) = &self.reader_timing {
            if timing.should_time() {
                // The timed 1-in-N path: one clock read each side of the
                // draw plus relaxed histogram adds — no allocation, so the
                // instrumented reader stays 0-alloc (tests/engine_alloc.rs).
                let started = Instant::now();
                let index = self.sampler.sample(rng)?;
                timing.obs.record_reader_draw_ns(
                    started.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                );
                self.record_served(1);
                return Ok(index);
            }
        }
        let index = self.sampler.sample(rng)?;
        self.record_served(1);
        Ok(index)
    }

    /// Fill `out` with independent draws, lock-free, through the backend's
    /// tight-loop buffer primitive — the preferred reader hot path (one
    /// virtual call and one telemetry increment per buffer instead of per
    /// draw).
    pub fn sample_into(
        &self,
        rng: &mut dyn RandomSource,
        out: &mut [usize],
    ) -> Result<(), SelectionError> {
        if let Some(timing) = &self.reader_timing {
            if timing.should_time() && !out.is_empty() {
                // Timed 1-in-N buffer: record the amortised per-draw
                // nanoseconds, so the histogram speaks the same unit as
                // single-draw timings. Allocation-free like the plain path.
                let started = Instant::now();
                self.sampler.sample_into(rng, out)?;
                let elapsed = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                timing.obs.record_reader_draw_ns(elapsed / out.len() as u64);
                self.record_served(out.len() as u64);
                return Ok(());
            }
        }
        self.sampler.sample_into(rng, out)?;
        self.record_served(out.len() as u64);
        Ok(())
    }

    /// Fill `out` from the deterministic counter-based substream
    /// `substream` of `master_seed` — [`sample_into`](Self::sample_into)
    /// with a [`Philox4x32::for_substream`] stream constructed on the
    /// stack, no RNG state threaded by the caller.
    ///
    /// This is the fill primitive behind the service's parallel batch
    /// planner (`ROUTE_LAYOUT` v2): each shard of a cross-shard batch
    /// consumes its own substream of one master draw, so the batch's
    /// output is a pure function of `(snapshots, master_seed)` no matter
    /// which thread runs which shard — the same contract discipline as
    /// [`batch_indices`](Self::batch_indices) and `STREAM_LAYOUT_VERSION`.
    /// Allocation-free like `sample_into` (the Philox state is a stack
    /// value).
    pub fn sample_into_substream(
        &self,
        master_seed: u64,
        substream: u64,
        out: &mut [usize],
    ) -> Result<(), SelectionError> {
        let mut rng = Philox4x32::for_substream(master_seed, substream);
        self.sample_into(&mut rng, out)
    }

    /// Draw `count` indices independently (with replacement; allocating,
    /// delegates to [`sample_into`](Snapshot::sample_into)).
    pub fn sample_many(
        &self,
        rng: &mut dyn RandomSource,
        count: usize,
    ) -> Result<Vec<usize>, SelectionError> {
        let mut out = vec![0usize; count];
        self.sample_into(rng, &mut out)?;
        Ok(out)
    }

    /// Draw `trials` indices in trial order through the shared
    /// [`BatchDriver`]: rayon-parallel and deterministic — each buffer chunk
    /// uses its own counter-based Philox substream, so the result is a pure
    /// function of `(snapshot, master_seed, trials)` regardless of thread
    /// count, the same contract as `lrb_dynamic::batch_sample_indices`.
    pub fn batch_indices(
        &self,
        trials: u64,
        master_seed: u64,
    ) -> Result<Vec<usize>, SelectionError> {
        let indices = BatchDriver::new().drive_indices(master_seed, trials, |rng, out| {
            self.sampler.sample_into(rng, out)
        })?;
        self.record_served(trials);
        Ok(indices)
    }

    /// Like [`batch_indices`](Snapshot::batch_indices) but tabulated into
    /// per-index counts.
    pub fn batch_counts(&self, trials: u64, master_seed: u64) -> Result<Vec<u64>, SelectionError> {
        let indices = self.batch_indices(trials, master_seed)?;
        let mut counts = vec![0u64; self.weights.len()];
        for index in indices {
            counts[index] += 1;
        }
        Ok(counts)
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("version", &self.version)
            .field("backend", &self.backend)
            .field("len", &self.weights.len())
            .field("total", &self.total)
            .field("served", &self.served())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendRegistry;
    use lrb_rng::{MersenneTwister64, SeedableSource};

    fn build(version: u64, weights: Vec<f64>, backend: &str) -> Snapshot {
        let registry = BackendRegistry::standard();
        Snapshot::build(version, weights, registry.get(backend).unwrap()).unwrap()
    }

    #[test]
    fn every_backend_freezes_and_draws_the_same_distribution() {
        let weights = vec![0.0, 1.0, 2.0, 3.0, 4.0];
        for name in BackendRegistry::standard().names() {
            let snap = build(7, weights.clone(), name);
            assert_eq!(snap.version(), 7);
            assert_eq!(snap.backend(), name);
            assert_eq!(snap.len(), 5);
            assert!(!snap.is_empty());
            assert!((snap.total_weight() - 10.0).abs() < 1e-12);
            assert_eq!(snap.weight(3), 3.0);
            let probs = snap.probabilities();
            assert!((probs[4] - 0.4).abs() < 1e-12);
            let mut rng = MersenneTwister64::seed_from_u64(5);
            for _ in 0..2_000 {
                let i = snap.sample(&mut rng).unwrap();
                assert_ne!(i, 0, "{name} drew a zero-weight index");
            }
        }
    }

    #[test]
    #[should_panic]
    fn empty_weights_are_rejected() {
        let _ = build(0, vec![], "fenwick");
    }

    #[test]
    fn all_zero_snapshots_build_but_refuse_to_draw() {
        for name in BackendRegistry::standard().names() {
            let snap = build(1, vec![0.0, 0.0], name);
            assert_eq!(snap.total_weight(), 0.0);
            assert_eq!(snap.probabilities(), vec![0.0, 0.0]);
            let mut rng = MersenneTwister64::seed_from_u64(2);
            assert_eq!(
                snap.sample(&mut rng),
                Err(SelectionError::AllZeroFitness),
                "{name}"
            );
            assert!(snap.batch_indices(5, 1).is_err());
            assert_eq!(snap.served(), 0, "failed draws must not count as served");
        }
    }

    #[test]
    fn batch_draws_are_deterministic_and_counted() {
        let snap = build(3, vec![1.0, 2.0, 1.0], "fenwick");
        let a = snap.batch_indices(5_000, 11).unwrap();
        let b = snap.batch_indices(5_000, 11).unwrap();
        assert_eq!(a, b);
        let counts = snap.batch_counts(5_000, 11).unwrap();
        assert_eq!(counts.iter().sum::<u64>(), 5_000);
        let mut recount = vec![0u64; 3];
        for &i in &a {
            recount[i] += 1;
        }
        assert_eq!(recount, counts);
    }

    #[test]
    fn sample_into_agrees_with_sample_on_equal_seeds() {
        for name in BackendRegistry::standard().names() {
            let snap = build(0, vec![1.0, 0.0, 2.0, 4.0, 0.5], name);
            let mut rng_a = MersenneTwister64::seed_from_u64(31);
            let mut rng_b = MersenneTwister64::seed_from_u64(31);
            let mut buffer = vec![0usize; 2_000];
            snap.sample_into(&mut rng_a, &mut buffer).unwrap();
            for (t, &filled) in buffer.iter().enumerate() {
                assert_eq!(
                    filled,
                    snap.sample(&mut rng_b).unwrap(),
                    "{name} diverged at draw {t}"
                );
            }
        }
    }

    #[test]
    fn served_counts_every_successful_draw() {
        let snap = build(0, vec![2.0, 2.0], "stochastic-acceptance");
        let mut rng = MersenneTwister64::seed_from_u64(9);
        let picks = snap.sample_many(&mut rng, 100).unwrap();
        assert_eq!(picks.len(), 100);
        assert!(picks.iter().all(|&i| i < 2));
        let _ = snap.sample(&mut rng).unwrap();
        let _ = snap.batch_indices(50, 1).unwrap();
        assert_eq!(snap.served(), 151);
    }

    #[test]
    fn debug_format_names_the_essentials() {
        let snap = build(4, vec![1.0], "alias");
        let text = format!("{snap:?}");
        assert!(text.contains("version"));
        assert!(text.contains('4'));
        assert!(text.contains("alias"));
    }
}
