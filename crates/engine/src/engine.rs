//! The concurrent selection engine: coalescing writers, atomically swapped
//! immutable snapshots, lock-free-in-spirit readers, and a telemetry-driven
//! backend decider.
//!
//! ## Concurrency protocol
//!
//! * **Readers** acquire the current snapshot with **no locks at all**:
//!   the engine's current `Arc<Snapshot>` lives in a hand-rolled
//!   `hot_swap` cell (an `AtomicPtr` swap with
//!   generation-checked deferred reclamation), and each reader thread keeps
//!   a **thread-local, version-checked snapshot cache** so the steady-state
//!   acquisition is one relaxed generation load plus a TLS lookup — no
//!   shared RMW whatsoever. [`SelectionEngine::read`] samples against the
//!   cached snapshot by reference (the fastest path);
//!   [`SelectionEngine::snapshot`] clones the `Arc` out for callers that
//!   want to hold a version across publishes. Either way a reader keeps its
//!   snapshot for as many draws as it wants; publication of newer versions
//!   cannot mutate what it holds, so every draw is exact against *some*
//!   published state — the snapshot-isolation guarantee.
//! * **Writers** enqueue weight overrides and evaporation scales into a
//!   mutex-guarded coalescing batch, then call
//!   [`publish`](SelectionEngine::publish), which folds the batch over the
//!   previous weights (through pooled build scratch, so a steady-state
//!   publish performs no transient allocation), freezes a new [`Snapshot`]
//!   (choosing a backend from the [`BackendRegistry`] under
//!   [`BackendChoice::Auto`]) and swaps it in atomically. When the chosen
//!   backend is the incumbent, the freeze may take the backend's
//!   **incremental patch path** — the previous sampler plus the coalesced
//!   batch, `O(d · log n)`-ish instead of `O(n)` for small batches — under
//!   [`PatchPolicy`]; the cost model compares learned patch and rebuild
//!   constants per publish. Publishers serialise on a dedicated publish
//!   mutex — the batch mutex is held only for the drain itself — so
//!   versions are strictly ordered and no batch is ever lost, while
//!   `enqueue`/`enqueue_many`/`scale_all` never wait on a backend build:
//!   writes arriving mid-build simply land in the *next* batch.
//!
//! ## The decider
//!
//! Under [`BackendChoice::Auto`] every publish re-runs the cost model with
//! **observed** inputs: the draws-per-publish hint is an EWMA of how many
//! draws each outgoing snapshot actually served (seeded from the config
//! hint), and — when [`EngineConfig::calibrate`] is set — the per-op cost
//! constants are seeded by a one-shot startup micro-benchmark and refreshed
//! by an EWMA of measured build and probe-draw times at each publish.
//! Between publishes, [`maybe_rebalance`](SelectionEngine::maybe_rebalance)
//! answers the mid-stream question with the incumbent's build cost treated
//! as sunk, republishing the same weights under a cheaper backend when the
//! observed workload has drifted far enough to amortise the switch. Every
//! change of backend is recorded in the [switch
//! history](SelectionEngine::switch_history).

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use lrb_core::error::SelectionError;
use lrb_core::fitness::Fitness;
use lrb_durable::{Durability, DurableStore};
use lrb_rng::{Philox4x32, RandomSource};

use crate::backend::{BackendRegistry, BuildScratch};
use crate::heuristic::{BackendChoice, CostConstants, CostEstimator, Ewma, WorkloadProfile};
use crate::hot_swap::HotSwap;
use crate::queue::CoalescingQueue;
use crate::snapshot::Snapshot;
use crate::telemetry::{EngineEvent, EngineTelemetry};
use lrb_obs::MetricsSnapshot;

/// Draws timed against each freshly built snapshot to refresh the draw-cost
/// EWMA (only under [`EngineConfig::calibrate`]).
const PUBLISH_PROBE_DRAWS: usize = 64;

/// Engines a single thread's snapshot cache will track before evicting the
/// least-recently-inserted entry. Processes normally hold a handful of
/// engines; the cap only bounds pathological churn.
const SNAPSHOT_CACHE_CAPACITY: usize = 8;

/// Process-wide engine enumerator keying the thread-local snapshot caches.
static NEXT_ENGINE_ID: AtomicU64 = AtomicU64::new(0);

/// One thread's cached acquisition of one engine's current snapshot.
struct CachedSnapshot {
    engine: u64,
    generation: u64,
    snapshot: Arc<Snapshot>,
}

thread_local! {
    /// Per-thread snapshot cache: while an engine's swap generation is
    /// unchanged, readers on this thread reuse the cached `Arc` without
    /// touching any shared cache line (the generation itself mutates only
    /// at publishes, so polling it is a shared *read*, not an RMW).
    static SNAPSHOT_CACHE: RefCell<Vec<CachedSnapshot>> = const { RefCell::new(Vec::new()) };
}

/// EWMA smoothing factor for the observed draws-per-publish rate.
const DRAWS_EWMA_ALPHA: f64 = 0.2;

/// When a publish may take a backend's incremental patch path instead of a
/// full rebuild (the previous snapshot's sampler plus the coalesced batch,
/// see [`FrozenBackend::try_patch`](crate::backend::FrozenBackend::try_patch)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PatchPolicy {
    /// Patch when the chosen backend is the incumbent and the cost model
    /// prices the patch below the rebuild (the default).
    #[default]
    Auto,
    /// Patch whenever the chosen backend is the incumbent and offers a
    /// patch path, regardless of the model (conformance tests, benches).
    Always,
    /// Never patch; every publish rebuilds from the folded weights.
    Never,
}

/// Tuning knobs for a [`SelectionEngine`].
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// How snapshot backends are chosen at publish time.
    pub backend: BackendChoice,
    /// Cost-model hint under [`BackendChoice::Auto`]: how many draws one
    /// snapshot is expected to serve before the next publish. Seeds the
    /// draws-per-publish EWMA; observed serving rates take over from the
    /// first publish on.
    pub expected_draws_per_publish: f64,
    /// Measure real costs: run the one-shot startup micro-calibration and
    /// keep refreshing the per-op constants from build/probe-draw timings at
    /// each publish. Off by default so backend choices stay a deterministic
    /// function of the workload (tests, reproducible runs); serving
    /// deployments should switch it on.
    pub calibrate: bool,
    /// Whether publishes may take the incremental patch path.
    pub patch: PatchPolicy,
    /// Sampled reader-draw timing: when non-zero, one in this many reader
    /// acquisitions per thread is timed and its amortised per-draw
    /// nanoseconds recorded into
    /// [`EngineTelemetry::reader_draw_latency`]. `0` (the default) turns
    /// reader timing off entirely — the hot path then carries no timing
    /// branch beyond one TLS check. The sampled path itself stays
    /// allocation-free (one clock read plus relaxed histogram adds), so
    /// even `1` — time every call — is safe, just measurably slower;
    /// serving deployments typically want `32`–`256`.
    pub reader_timing_every: u32,
    /// Crash durability. [`Durability::Off`] (the default) persists
    /// nothing and adds **zero** work to the publish path — the WAL hook
    /// is behind an `Option` that is `None`. [`Durability::Wal`] logs
    /// every published batch to a write-ahead log with periodic full
    /// checkpoints under the configured directory, and the engine
    /// recovers the last persisted state (bit-identical weights and
    /// version) when reopened over it.
    pub durability: Durability,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            backend: BackendChoice::Auto,
            expected_draws_per_publish: 1024.0,
            calibrate: false,
            patch: PatchPolicy::default(),
            reader_timing_every: 0,
            durability: Durability::Off,
        }
    }
}

/// Aggregate engine counters (all monotone since construction), read as one
/// **coherent** snapshot: [`SelectionEngine::stats`] takes the publish lock
/// *and* the batch lock, the writer counters mutate only under the batch
/// lock and the publish counters only under the publish lock, so the fields
/// always describe a single instant between batch operations — a publish
/// can never be half-visible (e.g. `publishes` bumped but `patched` not
/// yet).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Snapshots published (the initial build is not counted).
    pub publishes: u64,
    /// Weight overrides accepted from writers.
    pub enqueued: u64,
    /// Overrides that were overwritten before ever being published.
    pub coalesced: u64,
    /// Publishes (or rebalances) whose backend differed from the previous
    /// snapshot's.
    pub backend_switches: u64,
    /// Publishes that froze their snapshot through the incremental patch
    /// path instead of a full rebuild.
    pub patched: u64,
    /// Registry name of the backend serving the current snapshot.
    pub backend: &'static str,
}

/// One recorded backend change, for telemetry and `BENCH_engine.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendSwitch {
    /// Version of the snapshot that introduced the new backend.
    pub version: u64,
    /// Backend of the snapshot being replaced.
    pub from: &'static str,
    /// Backend chosen for the new snapshot.
    pub to: &'static str,
    /// Draws the outgoing snapshot had served — the observation that drove
    /// the decision.
    pub draws_served: u64,
    /// Whether the switch came from [`SelectionEngine::maybe_rebalance`]
    /// (workload drift between publishes) rather than a regular publish.
    pub mid_stream: bool,
}

/// Mutable decider state, locked only on the (already serialised) publish
/// path and by telemetry getters.
struct DeciderState {
    costs: CostEstimator,
    draws_per_publish: Ewma,
    switches: Vec<BackendSwitch>,
}

/// A snapshot-isolated concurrent weighted-selection service.
///
/// # Example
///
/// ```
/// use lrb_engine::{EngineConfig, SelectionEngine};
/// use lrb_rng::{MersenneTwister64, SeedableSource};
///
/// let engine = SelectionEngine::new(vec![1.0, 2.0, 3.0], EngineConfig::default())?;
/// let mut rng = MersenneTwister64::seed_from_u64(7);
///
/// // Readers sample a consistent snapshot:
/// let snapshot = engine.snapshot();
/// let i = snapshot.sample(&mut rng)?;
///
/// // Writers batch updates and publish them atomically:
/// engine.enqueue(i, 0.0)?;      // last-write-wins per category
/// engine.scale_all(0.9)?;       // evaporation folds into one factor
/// let version = engine.publish()?;
/// assert_eq!(version, 1);
/// assert_eq!(engine.snapshot().weight(i), 0.0);
///
/// // The old snapshot is untouched — that is the isolation guarantee:
/// assert_eq!(snapshot.version(), 0);
/// assert!(snapshot.weight(i) > 0.0);
/// # Ok::<(), lrb_core::SelectionError>(())
/// ```
pub struct SelectionEngine {
    /// The current snapshot, behind the lock-free swap cell. Readers
    /// acquire it without locks; writers swap it under the `publish_lock`.
    current: HotSwap<Snapshot>,
    /// This engine's key in the thread-local snapshot caches.
    engine_id: u64,
    /// Pending writer batch. Taken only for the brief enqueue/drain
    /// critical sections — **never** across a backend build — so writers
    /// stay responsive while a publish freezes.
    pending: Mutex<CoalescingQueue>,
    /// Serialises publishers (`publish` and `maybe_rebalance`), so
    /// `current` only ever moves forward one batch at a time and versions
    /// are strictly ordered, without making writers wait on a build.
    publish_lock: Mutex<()>,
    /// Pooled transient build buffers for the publish path (locked only by
    /// the already-serialised publishers).
    scratch: Mutex<BuildScratch>,
    registry: BackendRegistry,
    decider: Mutex<DeciderState>,
    /// The WAL + checkpoint store under [`Durability::Wal`]; `None` under
    /// [`Durability::Off`], so the publish path pays one `Option` check.
    /// Locked only on the (already serialised) publish path — the mutex
    /// is uncontended; it exists so `install` can take `&self`.
    durable: Option<Mutex<DurableStore>>,
    /// Always-on instrumentation: latency histograms, the SIMD gauge and
    /// the flight-recorder journal. `Arc` because snapshots hold a handle
    /// for sampled reader timing.
    obs: Arc<EngineTelemetry>,
    config: EngineConfig,
    len: usize,
    /// Counters behind [`EngineStats`]. Writer counters mutate under the
    /// `pending` lock, publish counters under the `publish_lock` (see
    /// `stats()` for the coherence argument); they stay atomics only so
    /// `Debug`/readers may take cheap incoherent peeks.
    publishes: AtomicU64,
    enqueued_total: AtomicU64,
    coalesced_total: AtomicU64,
    switches_total: AtomicU64,
    patched_total: AtomicU64,
}

/// Failure path of [`SelectionEngine::publish`]: a failed freeze (a
/// caller-registered backend erroring, or folded weights overflowing to
/// `∞`) must not lose the batch. Because the batch lock is released during
/// the build, writes may have arrived since the drain; the restore merges
/// the drained batch back **under** them with last-write-wins semantics
/// (new overrides beat restored ones — see
/// [`CoalescingQueue::restore_drained`]). Out of line: this never runs on
/// a healthy engine.
#[cold]
#[inline(never)]
fn restore_batch(pending: &mut CoalescingQueue, scale: f64, overrides: &[(usize, f64)]) {
    pending.restore_drained(scale, overrides);
}

impl SelectionEngine {
    /// Build an engine over raw weights with the [standard backend
    /// registry](BackendRegistry::standard). Weights are validated like
    /// `Fitness::new`, except that an all-zero vector is allowed — sampling
    /// then fails with [`SelectionError::AllZeroFitness`] until a writer
    /// revives a weight.
    pub fn new(weights: Vec<f64>, config: EngineConfig) -> Result<Self, SelectionError> {
        Self::with_registry(weights, config, BackendRegistry::standard())
    }

    /// Build an engine dispatching over a caller-supplied backend registry.
    pub fn with_registry(
        weights: Vec<f64>,
        config: EngineConfig,
        registry: BackendRegistry,
    ) -> Result<Self, SelectionError> {
        if weights.is_empty() {
            return Err(SelectionError::EmptyFitness);
        }
        for (index, &value) in weights.iter().enumerate() {
            if !value.is_finite() || value < 0.0 {
                return Err(SelectionError::InvalidFitness { index, value });
            }
        }
        assert!(
            !registry.is_empty(),
            "an engine needs at least one registered backend"
        );
        if let BackendChoice::Fixed(name) = config.backend {
            if registry.get(name).is_none() {
                return Err(SelectionError::UnknownBackend { name });
            }
        }
        let len = weights.len();
        let obs = Arc::new(EngineTelemetry::new());
        // Journal what the RNG layer is running on, once, at construction —
        // the SIMD tier is process-wide and immutable, so this is the one
        // place a flight-recorder reader can learn it.
        let tier = lrb_rng::simd_tier();
        obs.set_simd_tier(tier);
        obs.record(EngineEvent::SimdTier {
            tier,
            overridden: std::env::var_os("LRB_SIMD").is_some(),
        });
        // Open the durability store (if configured) before the first
        // snapshot is built: recovery replaces both the weights and the
        // starting version, so a reopened engine resumes exactly where
        // the previous incarnation's last persisted publish left it.
        let mut initial_version = 0u64;
        let mut weights = weights;
        let durable = match &config.durability {
            Durability::Off => None,
            Durability::Wal(options) => {
                let (store, recovered) = DurableStore::open(options, &weights)
                    .map_err(|_| SelectionError::Durability { op: "open" })?;
                if let Some(recovery) = recovered {
                    if recovery.weights.len() != weights.len() {
                        // The directory belongs to an engine of a
                        // different shape; refusing is the only move that
                        // cannot silently corrupt either state.
                        return Err(SelectionError::Durability { op: "recovery" });
                    }
                    obs.record_recovery(recovery.replayed, recovery.truncated_bytes);
                    obs.record(EngineEvent::Recovered {
                        version: recovery.version,
                        checkpoint_version: recovery.checkpoint_version,
                        replayed: recovery.replayed,
                        truncated_bytes: recovery.truncated_bytes,
                    });
                    initial_version = recovery.version;
                    weights = recovery.weights;
                }
                Some(Mutex::new(store))
            }
        };
        let costs = if config.calibrate {
            let costs = CostEstimator::calibrate(&registry, len);
            for constants in costs.constants() {
                obs.record(EngineEvent::Calibrated { constants });
            }
            costs
        } else {
            CostEstimator::unit(&registry)
        };
        let decider = DeciderState {
            costs,
            draws_per_publish: Ewma::new(DRAWS_EWMA_ALPHA),
            switches: Vec::new(),
        };
        let profile = WorkloadProfile::measure(&weights, config.expected_draws_per_publish);
        let entry = match config.backend {
            BackendChoice::Fixed(name) => registry.index_of(name).expect("validated above"),
            BackendChoice::Auto => decider.costs.cheapest(&registry, &profile),
        };
        let mut snapshot = Snapshot::build(initial_version, weights, &registry.entries()[entry])?;
        if config.reader_timing_every > 0 {
            snapshot.set_reader_timing(config.reader_timing_every, Arc::clone(&obs));
        }
        Ok(Self {
            current: HotSwap::new(Arc::new(snapshot)),
            engine_id: NEXT_ENGINE_ID.fetch_add(1, Ordering::Relaxed),
            pending: Mutex::new(CoalescingQueue::new()),
            publish_lock: Mutex::new(()),
            scratch: Mutex::new(BuildScratch::default()),
            registry,
            decider: Mutex::new(decider),
            durable,
            obs,
            config,
            len,
            publishes: AtomicU64::new(0),
            enqueued_total: AtomicU64::new(0),
            coalesced_total: AtomicU64::new(0),
            switches_total: AtomicU64::new(0),
            patched_total: AtomicU64::new(0),
        })
    }

    /// Build an engine from an already-validated [`Fitness`] vector.
    pub fn from_fitness(fitness: &Fitness, config: EngineConfig) -> Self {
        Self::new(fitness.values().to_vec(), config)
            .expect("a validated fitness vector is non-empty and finite")
    }

    /// Number of categories (fixed at construction).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the engine has zero categories (never true — construction
    /// rejects empty weight vectors).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The backend registry this engine dispatches over.
    pub fn registry(&self) -> &BackendRegistry {
        &self.registry
    }

    /// The current snapshot, acquired lock-free. Steady state (no publish
    /// since this thread's last acquisition) touches no shared mutable
    /// line at all: one relaxed generation load, a thread-local cache hit
    /// and an `Arc` clone. All sampling happens against the returned
    /// immutable snapshot.
    ///
    /// The thread-local cache pins at most one snapshot per engine per
    /// thread; an idle thread can therefore keep the previous snapshot
    /// alive until it touches the engine again (or the thread exits) — the
    /// usual price of thread-cached handles.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.with_current(Arc::clone)
    }

    /// Run `f` against the current snapshot **by reference** — the fastest
    /// reader hot path: on a cache hit there is no `Arc` refcount traffic
    /// (which is a shared-line RMW) and no allocation, just the generation
    /// probe and the thread-local lookup. Prefer this in sampling loops:
    ///
    /// ```
    /// use lrb_engine::{EngineConfig, SelectionEngine};
    /// use lrb_rng::{MersenneTwister64, SeedableSource};
    ///
    /// let engine = SelectionEngine::new(vec![1.0, 2.0], EngineConfig::default())?;
    /// let mut rng = MersenneTwister64::seed_from_u64(1);
    /// let mut buffer = [0usize; 64];
    /// engine.read(|snapshot| snapshot.sample_into(&mut rng, &mut buffer))?;
    /// # Ok::<(), lrb_core::SelectionError>(())
    /// ```
    ///
    /// Reentrant calls (an `f` that itself acquires from an engine on the
    /// same thread) are safe; the inner call simply bypasses the cache.
    pub fn read<R>(&self, f: impl FnOnce(&Snapshot) -> R) -> R {
        self.with_current(|snapshot| f(snapshot))
    }

    /// Shared reader path: refresh this thread's cached acquisition if the
    /// swap generation moved, then run `f` against it.
    fn with_current<R>(&self, f: impl FnOnce(&Arc<Snapshot>) -> R) -> R {
        let generation = self.current.generation();
        SNAPSHOT_CACHE.with(|cache| match cache.try_borrow_mut() {
            Ok(mut entries) => {
                let entry = match entries.iter_mut().find(|e| e.engine == self.engine_id) {
                    Some(entry) => {
                        if entry.generation != generation {
                            // The generation is re-read *before* the load:
                            // if the load races a newer publish the cached
                            // tag stays behind and the next acquisition
                            // refreshes again — never the reverse.
                            entry.generation = generation;
                            entry.snapshot = self.current.load();
                        }
                        entry
                    }
                    None => {
                        if entries.len() >= SNAPSHOT_CACHE_CAPACITY {
                            entries.remove(0);
                        }
                        entries.push(CachedSnapshot {
                            engine: self.engine_id,
                            generation,
                            snapshot: self.current.load(),
                        });
                        entries.last_mut().expect("just pushed")
                    }
                };
                f(&entry.snapshot)
            }
            // The cache is already borrowed on this thread (reentrant
            // read): acquire directly from the swap cell.
            Err(_) => f(&self.current.load()),
        })
    }

    /// Version of the current snapshot (0 for the initial state).
    pub fn version(&self) -> u64 {
        self.with_current(|snapshot| snapshot.version())
    }

    /// Total weight of the current snapshot, acquired lock-free. This is
    /// the hook a sharding router needs after each publish: the shard's
    /// published mass, fed into the two-level (Fenwick-over-shard-totals)
    /// draw without forcing the router through `snapshot()`'s `Arc` clone.
    pub fn total_weight(&self) -> f64 {
        self.with_current(|snapshot| snapshot.total_weight())
    }

    /// Convenience: one draw against the current snapshot. Loops that draw
    /// repeatedly should use [`read`](SelectionEngine::read) with a buffer
    /// (or hold a [`snapshot`](SelectionEngine::snapshot)) instead, both
    /// for speed and for distribution stability.
    pub fn sample(&self, rng: &mut dyn RandomSource) -> Result<usize, SelectionError> {
        self.with_current(|snapshot| snapshot.sample(rng))
    }

    /// Enqueue an absolute weight for one category; visible to readers only
    /// after the next [`publish`](SelectionEngine::publish). Last write wins
    /// when the same category is enqueued twice in one batch.
    pub fn enqueue(&self, index: usize, weight: f64) -> Result<(), SelectionError> {
        if index >= self.len {
            return Err(SelectionError::IndexOutOfRange {
                index,
                len: self.len,
            });
        }
        if !weight.is_finite() || weight < 0.0 {
            return Err(SelectionError::InvalidFitness {
                index,
                value: weight,
            });
        }
        let started = Instant::now();
        let mut pending = self.pending.lock().expect("batch lock poisoned");
        let coalesced = pending.set(index, weight);
        // Counter updates happen while `pending` is held so `stats()` (which
        // also takes the lock) always observes them coherently.
        self.enqueued_total.fetch_add(1, Ordering::Relaxed);
        if coalesced {
            self.coalesced_total.fetch_add(1, Ordering::Relaxed);
        }
        drop(pending);
        self.obs.record_enqueue_span(started);
        Ok(())
    }

    /// Enqueue many `(index, weight)` pairs; the whole slice is validated
    /// before any of it is enqueued, so a bad entry cannot half-apply.
    pub fn enqueue_many(&self, updates: &[(usize, f64)]) -> Result<(), SelectionError> {
        for &(index, weight) in updates {
            if index >= self.len {
                return Err(SelectionError::IndexOutOfRange {
                    index,
                    len: self.len,
                });
            }
            if !weight.is_finite() || weight < 0.0 {
                return Err(SelectionError::InvalidFitness {
                    index,
                    value: weight,
                });
            }
        }
        let started = Instant::now();
        let mut pending = self.pending.lock().expect("batch lock poisoned");
        let mut coalesced = 0;
        for &(index, weight) in updates {
            if pending.set(index, weight) {
                coalesced += 1;
            }
        }
        // Under the lock, for `stats()` coherence (see `stats()`).
        self.enqueued_total
            .fetch_add(updates.len() as u64, Ordering::Relaxed);
        self.coalesced_total.fetch_add(coalesced, Ordering::Relaxed);
        drop(pending);
        self.obs.record_enqueue_span(started);
        Ok(())
    }

    /// Enqueue a multiplicative factor over every weight — evaporation in
    /// the ant-colony reading. Folds with any pending scale in `O(1)` plus
    /// the pending-override count (never `O(n)` before publish).
    pub fn scale_all(&self, factor: f64) -> Result<(), SelectionError> {
        if !factor.is_finite() || factor < 0.0 {
            return Err(SelectionError::InvalidScale { factor });
        }
        let started = Instant::now();
        self.pending
            .lock()
            .expect("batch lock poisoned")
            .scale(factor);
        self.obs.record_enqueue_span(started);
        Ok(())
    }

    /// Fold the pending batch over the current weights, freeze the result
    /// into a new snapshot — through the chosen backend's **incremental
    /// patch path** when the cost model (or [`PatchPolicy::Always`]) says
    /// it beats a rebuild — and atomically swap it in. Returns the version
    /// now current. A publish with nothing pending is a no-op returning the
    /// unchanged version.
    ///
    /// The batch mutex is held only for the drain itself: writers keep
    /// enqueuing while the fold and freeze run, and their writes land in
    /// the *next* batch. Concurrent publishers serialise on a dedicated
    /// publish mutex, so versions stay strictly ordered. Should the freeze
    /// fail, the drained batch is re-merged **under** whatever arrived
    /// meanwhile (last write wins), so no accepted write is ever lost.
    pub fn publish(&self) -> Result<u64, SelectionError> {
        let started = Instant::now();
        let _publisher = self.publish_lock.lock().expect("publish lock poisoned");
        let mut scratch = self.scratch.lock().expect("scratch lock poisoned");
        // The override buffer is taken out of the scratch so `install` can
        // borrow the batch and the (alias) build scratch independently; it
        // returns below either way, keeping the pooled capacity.
        let mut overrides = std::mem::take(&mut scratch.overrides);
        let scale = {
            let mut pending = self.pending.lock().expect("batch lock poisoned");
            if pending.is_empty() {
                scratch.overrides = overrides;
                return Ok(self.version());
            }
            pending.drain_into(&mut overrides)
            // `pending` unlocks here: writers are admitted again after the
            // O(batch) drain, not after the O(n) build below.
        };
        let previous = self.current.load();
        let mut weights = previous.weights().to_vec();
        if scale != 1.0 {
            for w in weights.iter_mut() {
                *w *= scale;
            }
        }
        for &(index, weight) in &overrides {
            weights[index] = weight;
        }
        let result = self.install(&previous, weights, &overrides, scale, None, &mut scratch);
        let version = match result {
            Ok(version) => version,
            Err(error) => {
                let mut pending = self.pending.lock().expect("batch lock poisoned");
                restore_batch(&mut pending, scale, &overrides);
                drop(pending);
                scratch.overrides = overrides;
                return Err(error);
            }
        };
        scratch.overrides = overrides;
        self.publishes.fetch_add(1, Ordering::Relaxed);
        self.obs.record_publish_span(started);
        Ok(version)
    }

    /// The decider's mid-stream move: with nothing pending, re-score the
    /// *current* weights against the observed draw rate, treating the
    /// incumbent backend's build cost as sunk. When a challenger would be
    /// cheaper even after paying its build within one expected window, the
    /// same weights are republished under it (a version bump with unchanged
    /// distribution) and the switch is recorded. Returns the new version,
    /// or `None` when staying put is cheapest, pending writes exist (the
    /// next publish re-decides anyway), or the backend choice is pinned.
    pub fn maybe_rebalance(&self) -> Result<Option<u64>, SelectionError> {
        if !matches!(self.config.backend, BackendChoice::Auto) {
            return Ok(None);
        }
        let started = Instant::now();
        // Serialise with publishers exactly like publish() does; the batch
        // lock is taken only for the emptiness probe. A write that lands
        // after the probe is not lost — the rebalance republishes the
        // *current* weights, and the write folds into the next publish.
        let _publisher = self.publish_lock.lock().expect("publish lock poisoned");
        {
            let pending = self.pending.lock().expect("batch lock poisoned");
            if !pending.is_empty() {
                return Ok(None);
            }
        }
        let previous = self.current.load();
        let incumbent = self
            .registry
            .index_of(previous.backend())
            .expect("current snapshot was built from this registry");
        let challenger = {
            let decider = self.decider.lock().expect("decider lock poisoned");
            let draws_hint = Self::mid_stream_draw_hint(&decider, &self.config, &previous);
            let profile = WorkloadProfile::measure(previous.weights(), draws_hint);
            decider
                .costs
                .cheapest_given_incumbent(&self.registry, &profile, incumbent)
        };
        if challenger == incumbent {
            return Ok(None);
        }
        let mut scratch = self.scratch.lock().expect("scratch lock poisoned");
        let version = self.install(
            &previous,
            previous.weights().to_vec(),
            &[],
            1.0,
            Some(challenger),
            &mut scratch,
        )?;
        self.publishes.fetch_add(1, Ordering::Relaxed);
        self.obs.record_publish_span(started);
        Ok(Some(version))
    }

    /// The mid-stream draw-rate estimate: the published-window EWMA or the
    /// current snapshot's already-served count, whichever is larger — a
    /// snapshot that has served N draws with no publish in sight should
    /// expect at least N more, which is exactly the drift signal that makes
    /// an unamortised build worth paying.
    fn mid_stream_draw_hint(
        decider: &DeciderState,
        config: &EngineConfig,
        previous: &Snapshot,
    ) -> f64 {
        decider
            .draws_per_publish
            .get(config.expected_draws_per_publish)
            .max(previous.served() as f64)
    }

    /// Shared tail of [`publish`] and [`maybe_rebalance`]: observe the
    /// outgoing snapshot, choose a backend *and freeze path* (unless
    /// `rebalance_to` carries the already-decided mid-stream target) — the
    /// incumbent may freeze by **patching** the previous sampler with the
    /// coalesced batch (`overrides` after a `scale` fold) when the policy
    /// and the learned patch-versus-rebuild constants favour it — build or
    /// patch (timed), record any switch, swap the new snapshot in.
    ///
    /// [`publish`]: SelectionEngine::publish
    /// [`maybe_rebalance`]: SelectionEngine::maybe_rebalance
    fn install(
        &self,
        previous: &Arc<Snapshot>,
        weights: Vec<f64>,
        overrides: &[(usize, f64)],
        scale: f64,
        rebalance_to: Option<usize>,
        scratch: &mut BuildScratch,
    ) -> Result<u64, SelectionError> {
        let mid_stream = rebalance_to.is_some();
        let mut decider = self.decider.lock().expect("decider lock poisoned");
        let draws_served = previous.served();
        // A rebalance happens mid-window; folding its partial draw count
        // into the EWMA would bias the rate estimate downward.
        let draws_hint = if mid_stream {
            Self::mid_stream_draw_hint(&decider, &self.config, previous)
        } else {
            decider.draws_per_publish.observe(draws_served as f64);
            decider
                .draws_per_publish
                .get(self.config.expected_draws_per_publish)
        };
        let profile = WorkloadProfile::measure(&weights, draws_hint);
        let incumbent = self.registry.index_of(previous.backend());
        let scaled = scale != 1.0;
        let (entry, model_patches) = match (rebalance_to, self.config.backend) {
            // maybe_rebalance already decided under the same pending lock;
            // a rebalance republishes under a *different* backend, which
            // can never patch.
            (Some(challenger), _) => (challenger, false),
            (None, BackendChoice::Fixed(name)) => {
                let entry = self
                    .registry
                    .index_of(name)
                    .expect("validated at construction");
                let patches = incumbent == Some(entry)
                    && self.registry.entries()[entry]
                        .model_patch_cost(&profile, overrides.len(), scaled)
                        .map(|patch_ops| {
                            let cost = self.registry.entries()[entry].model_cost(&profile);
                            decider.costs.patch_ns(entry, patch_ops)
                                < decider.costs.build_ns(entry, cost.build_ops)
                        })
                        .unwrap_or(false);
                (entry, patches)
            }
            // Under `PatchPolicy::Never` the incumbent may not take the
            // patch path, so pricing it with the patch discount would let
            // it win publishes on a freeze it is forbidden to perform.
            (None, BackendChoice::Auto) if self.config.patch == PatchPolicy::Never => {
                (decider.costs.cheapest(&self.registry, &profile), false)
            }
            (None, BackendChoice::Auto) => decider.costs.cheapest_for_publish(
                &self.registry,
                &profile,
                incumbent,
                overrides.len(),
                scaled,
            ),
        };
        let backend = &self.registry.entries()[entry];
        let cost = backend.model_cost(&profile);
        let try_patching = !mid_stream
            && incumbent == Some(entry)
            && match self.config.patch {
                PatchPolicy::Never => false,
                PatchPolicy::Always => true,
                PatchPolicy::Auto => model_patches,
            };
        let started = Instant::now();
        let (sampler, patched) = if try_patching {
            match backend.try_patch(previous.sampler(), overrides, scale) {
                Some(Ok(sampler)) => (sampler, true),
                Some(Err(error)) => return Err(error),
                None => (backend.build_pooled(&weights, scratch)?, false),
            }
        } else {
            (backend.build_pooled(&weights, scratch)?, false)
        };
        let freeze_ns = started.elapsed().as_nanos() as f64;
        self.obs.record_freeze_ns(freeze_ns as u64);
        if patched {
            self.patched_total.fetch_add(1, Ordering::Relaxed);
        }
        if self.config.calibrate {
            if patched {
                if let Some(patch_ops) = backend.model_patch_cost(&profile, overrides.len(), scaled)
                {
                    decider.costs.observe_patch(entry, patch_ops, freeze_ns);
                }
            } else {
                decider.costs.observe_build(entry, &cost, freeze_ns);
            }
            // Time a short draw burst against the fresh sampler (skipped for
            // zero-mass snapshots, whose draws only error).
            let mut probe = [0usize; PUBLISH_PROBE_DRAWS];
            let mut rng = Philox4x32::for_substream(previous.version() + 1, entry as u64);
            let started = Instant::now();
            if sampler.sample_into(&mut rng, &mut probe).is_ok() {
                decider.costs.observe_draws(
                    entry,
                    &cost,
                    PUBLISH_PROBE_DRAWS as f64,
                    started.elapsed().as_nanos() as f64,
                );
            }
        }
        let version = previous.version() + 1;
        // Durability hook: log the drained batch *before* the swap makes
        // it visible (write-ahead), still under the publish lock (so WAL
        // versions are strictly ordered) but after the pending mutex was
        // released (so writers never wait on an fsync). A failed append
        // fails the whole publish — the store has already rolled the WAL
        // back, and publish() re-merges the batch — so the log never
        // trails memory. Under `Durability::Off` this is one `None` check.
        if let Some(store) = &self.durable {
            let mut store = store.lock().expect("durable store poisoned");
            let append_started = Instant::now();
            match store.append(version, scale, overrides) {
                Ok(outcome) => {
                    let sync_ns = outcome.sync_ns.unwrap_or(0);
                    let append_ns =
                        (append_started.elapsed().as_nanos() as u64).saturating_sub(sync_ns);
                    self.obs.record_wal_append(append_ns, outcome.bytes);
                    if let Some(sync_ns) = outcome.sync_ns {
                        self.obs.record_fsync_ns(sync_ns);
                    }
                }
                Err(_) => return Err(SelectionError::Durability { op: "wal-append" }),
            }
            if store.should_checkpoint() {
                let checkpoint_started = Instant::now();
                match store.checkpoint(version, &weights) {
                    Ok(bytes) => {
                        self.obs
                            .record_checkpoint_ns(checkpoint_started.elapsed().as_nanos() as u64);
                        self.obs.record(EngineEvent::Checkpoint { version, bytes });
                    }
                    // Non-fatal: the WAL holds every record up to
                    // `version`; only recovery time grows until a later
                    // checkpoint lands.
                    Err(_) => self.obs.record_checkpoint_failure(),
                }
            }
        }
        let mut snapshot = Snapshot::from_parts(version, weights, backend.name(), sampler);
        if self.config.reader_timing_every > 0 {
            snapshot.set_reader_timing(self.config.reader_timing_every, Arc::clone(&self.obs));
        }
        self.obs.record(EngineEvent::Publish {
            version,
            backend: snapshot.backend(),
            patched,
            freeze_ns: freeze_ns as u64,
            dirty: overrides.len() as u64,
            scaled,
            draws_served,
        });
        if snapshot.backend() != previous.backend() {
            decider.switches.push(BackendSwitch {
                version,
                from: previous.backend(),
                to: snapshot.backend(),
                draws_served,
                mid_stream,
            });
            self.switches_total.fetch_add(1, Ordering::Relaxed);
            self.obs.record(EngineEvent::BackendSwitch {
                version,
                from: previous.backend(),
                to: snapshot.backend(),
                draws_hint,
                skew: profile.skew,
                categories: profile.categories as u64,
                mid_stream,
            });
        }
        drop(decider);
        self.current.store(Arc::new(snapshot));
        Ok(version)
    }

    /// Aggregate counters since construction, as one **coherent** snapshot.
    ///
    /// The read holds the publish lock *and* the batch lock (in that order,
    /// matching `publish()`). Writer counters mutate only under the batch
    /// lock — enqueues bump their totals before releasing it — and publish
    /// counters only under the publish lock — publishes and rebalances bump
    /// `publishes`/`patched`/`backend_switches` and swap the snapshot with
    /// it still held. The returned struct therefore describes a single
    /// instant between batch operations; a concurrent publish is either
    /// entirely visible (including the `backend` name of the snapshot it
    /// installed) or not at all.
    pub fn stats(&self) -> EngineStats {
        let _publisher = self.publish_lock.lock().expect("publish lock poisoned");
        let _pending = self.pending.lock().expect("batch lock poisoned");
        EngineStats {
            publishes: self.publishes.load(Ordering::Relaxed),
            enqueued: self.enqueued_total.load(Ordering::Relaxed),
            coalesced: self.coalesced_total.load(Ordering::Relaxed),
            backend_switches: self.switches_total.load(Ordering::Relaxed),
            patched: self.patched_total.load(Ordering::Relaxed),
            backend: self.current.load().backend(),
        }
    }

    /// Every backend change so far, oldest first.
    pub fn switch_history(&self) -> Vec<BackendSwitch> {
        self.decider
            .lock()
            .expect("decider lock poisoned")
            .switches
            .clone()
    }

    /// The decider's current calibrated cost constants, in registry order.
    pub fn cost_constants(&self) -> Vec<CostConstants> {
        self.decider
            .lock()
            .expect("decider lock poisoned")
            .costs
            .constants()
    }

    /// The observed draws-per-publish rate the decider is currently using
    /// (the config hint until the first publish).
    pub fn observed_draws_per_publish(&self) -> f64 {
        self.decider
            .lock()
            .expect("decider lock poisoned")
            .draws_per_publish
            .get(self.config.expected_draws_per_publish)
    }

    /// The engine's instrumentation bundle: latency histograms, the SIMD
    /// gauge and the flight-recorder journal.
    pub fn observability(&self) -> &EngineTelemetry {
        &self.obs
    }

    /// Collect every engine metric into one point-in-time
    /// [`MetricsSnapshot`] — the full catalogue behind
    /// [`export_prometheus`](Self::export_prometheus) and
    /// [`export_json`](Self::export_json):
    ///
    /// | metric | kind | meaning |
    /// |---|---|---|
    /// | `lrb_publishes_total` | counter | snapshots published |
    /// | `lrb_enqueued_total` | counter | writer overrides accepted |
    /// | `lrb_coalesced_total` | counter | overrides overwritten pre-publish |
    /// | `lrb_backend_switches_total` | counter | decider backend changes |
    /// | `lrb_patched_total` | counter | publishes via the patch path |
    /// | `lrb_journal_events_total` | counter | flight-recorder pushes |
    /// | `lrb_snapshot_version` | gauge | current snapshot version |
    /// | `lrb_snapshot_served` | gauge | draws served by the current snapshot |
    /// | `lrb_categories` | gauge | categories in the weight vector |
    /// | `lrb_simd_lanes` | gauge | Philox lanes per SIMD op (8/4/1) |
    /// | `lrb_draws_per_publish` | gauge | decider's observed draw-rate EWMA |
    /// | `lrb_cost_<backend>_{build,draw,patch}_ns_per_op` | gauge | cost-model EWMAs |
    /// | `lrb_wal_records_total` | counter | WAL records appended |
    /// | `lrb_wal_bytes_total` | counter | WAL frame bytes appended |
    /// | `lrb_checkpoints_total` | counter | checkpoints committed |
    /// | `lrb_checkpoint_failures_total` | counter | checkpoint attempts that failed (non-fatal) |
    /// | `lrb_recoveries_total` | counter | recoveries performed at construction |
    /// | `lrb_recovered_records_total` | counter | WAL records replayed during recovery |
    /// | `lrb_recovery_truncated_bytes_total` | counter | WAL tail bytes discarded during recovery |
    /// | `lrb_publish_ns` | histogram | full publish spans |
    /// | `lrb_freeze_ns` | histogram | build-or-patch spans |
    /// | `lrb_enqueue_ns` | histogram | writer enqueue/scale spans (always on) |
    /// | `lrb_reader_draw_ns` | histogram | sampled per-draw reader latency |
    /// | `lrb_wal_append_ns` | histogram | WAL append spans (excluding policy fsyncs) |
    /// | `lrb_fsync_ns` | histogram | policy fsync spans within WAL appends |
    /// | `lrb_checkpoint_ns` | histogram | checkpoint spans |
    pub fn metrics(&self) -> MetricsSnapshot {
        let stats = self.stats();
        let (version, served) = self.read(|s| (s.version(), s.served()));
        let mut out = MetricsSnapshot::new();
        out.counter(
            "lrb_publishes_total",
            "Snapshots published",
            stats.publishes,
        )
        .counter(
            "lrb_enqueued_total",
            "Writer overrides accepted",
            stats.enqueued,
        )
        .counter(
            "lrb_coalesced_total",
            "Overrides overwritten before publishing",
            stats.coalesced,
        )
        .counter(
            "lrb_backend_switches_total",
            "Backend changes by the decider",
            stats.backend_switches,
        )
        .counter(
            "lrb_patched_total",
            "Publishes frozen through the incremental patch path",
            stats.patched,
        )
        .counter(
            "lrb_journal_events_total",
            "Events pushed to the flight recorder",
            self.obs.events_recorded(),
        )
        .counter(
            "lrb_wal_records_total",
            "WAL records appended",
            self.obs.wal_records(),
        )
        .counter(
            "lrb_wal_bytes_total",
            "WAL frame bytes appended",
            self.obs.wal_bytes(),
        )
        .counter(
            "lrb_checkpoints_total",
            "Checkpoints committed",
            self.obs.checkpoints(),
        )
        .counter(
            "lrb_checkpoint_failures_total",
            "Checkpoint attempts that failed (non-fatal)",
            self.obs.checkpoint_failures(),
        )
        .counter(
            "lrb_recoveries_total",
            "Recoveries performed at construction",
            self.obs.recoveries(),
        )
        .counter(
            "lrb_recovered_records_total",
            "WAL records replayed during recovery",
            self.obs.recovered_records(),
        )
        .counter(
            "lrb_recovery_truncated_bytes_total",
            "WAL tail bytes discarded during recovery",
            self.obs.recovery_truncated_bytes(),
        );
        // Process-wide bid-kernel counters (shared across engines): the
        // direct measurement of the lazy-ln filter's O(log n) claim.
        let kernel = lrb_core::parallel::kernel_counters();
        out.counter(
            "lrb_bid_ln_calls_total",
            "ln evaluations the lazy bid filter paid for (process-wide)",
            kernel.ln_calls,
        )
        .counter(
            "lrb_bid_refine_hits_total",
            "Rows the fused row filter admitted for refinement (process-wide)",
            kernel.refine_hits,
        )
        .gauge(
            "lrb_snapshot_version",
            "Current snapshot version",
            version as f64,
        )
        .gauge(
            "lrb_snapshot_served",
            "Draws served by the current snapshot",
            served as f64,
        )
        .gauge(
            "lrb_categories",
            "Categories in the weight vector",
            self.len as f64,
        )
        .gauge(
            "lrb_simd_lanes",
            "Philox lanes per SIMD op at the active tier (8 = AVX-512, 4 = AVX2, 1 = scalar)",
            self.obs.simd_lanes(),
        )
        .gauge(
            "lrb_draws_per_publish",
            "Observed draws-per-publish EWMA driving the decider",
            self.observed_draws_per_publish(),
        );
        for constants in self.cost_constants() {
            let backend = constants.backend.replace('-', "_");
            out.gauge(
                &format!("lrb_cost_{backend}_build_ns_per_op"),
                "Cost-model EWMA: nanoseconds per abstract build op",
                constants.build_ns_per_op,
            )
            .gauge(
                &format!("lrb_cost_{backend}_draw_ns_per_op"),
                "Cost-model EWMA: nanoseconds per abstract draw op",
                constants.draw_ns_per_op,
            )
            .gauge(
                &format!("lrb_cost_{backend}_patch_ns_per_op"),
                "Cost-model EWMA: nanoseconds per abstract patch op",
                constants.patch_ns_per_op,
            );
        }
        out.histogram(
            "lrb_publish_ns",
            "Full publish() spans, nanoseconds",
            &self.obs.publish_latency(),
        )
        .histogram(
            "lrb_freeze_ns",
            "Snapshot freeze (build or patch) spans, nanoseconds",
            &self.obs.freeze_latency(),
        )
        .histogram(
            "lrb_enqueue_ns",
            "Writer enqueue/enqueue_many/scale_all spans, nanoseconds",
            &self.obs.enqueue_latency(),
        )
        .histogram(
            "lrb_reader_draw_ns",
            "Sampled per-draw reader latency, nanoseconds",
            &self.obs.reader_draw_latency(),
        )
        .histogram(
            "lrb_wal_append_ns",
            "WAL append spans (excluding policy fsyncs), nanoseconds",
            &self.obs.wal_append_latency(),
        )
        .histogram(
            "lrb_fsync_ns",
            "Policy fsync spans within WAL appends, nanoseconds",
            &self.obs.fsync_latency(),
        )
        .histogram(
            "lrb_checkpoint_ns",
            "Checkpoint spans, nanoseconds",
            &self.obs.checkpoint_latency(),
        );
        out
    }

    /// [`metrics`](Self::metrics) rendered as Prometheus text exposition.
    pub fn export_prometheus(&self) -> String {
        self.metrics().to_prometheus()
    }

    /// [`metrics`](Self::metrics) rendered as a pretty-printed JSON object.
    pub fn export_json(&self) -> String {
        self.metrics().to_json()
    }
}

impl std::fmt::Debug for SelectionEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SelectionEngine")
            .field("len", &self.len)
            .field("registry", &self.registry)
            .field("current", &self.snapshot())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_rng::{MersenneTwister64, SeedableSource};

    fn engine(weights: Vec<f64>) -> SelectionEngine {
        SelectionEngine::new(weights, EngineConfig::default()).unwrap()
    }

    #[test]
    fn construction_validates_weights() {
        assert_eq!(
            SelectionEngine::new(vec![], EngineConfig::default()).map(|_| ()),
            Err(SelectionError::EmptyFitness)
        );
        assert!(matches!(
            SelectionEngine::new(vec![1.0, -1.0], EngineConfig::default()).map(|_| ()),
            Err(SelectionError::InvalidFitness { index: 1, .. })
        ));
        // All-zero is allowed; draws fail until a writer revives a weight.
        let e = engine(vec![0.0, 0.0]);
        let mut rng = MersenneTwister64::seed_from_u64(1);
        assert_eq!(e.sample(&mut rng), Err(SelectionError::AllZeroFitness));
        e.enqueue(0, 2.0).unwrap();
        e.publish().unwrap();
        assert_eq!(e.sample(&mut rng).unwrap(), 0);
    }

    #[test]
    fn unknown_fixed_backend_is_rejected_at_construction() {
        let config = EngineConfig {
            backend: BackendChoice::Fixed("no-such-backend"),
            ..EngineConfig::default()
        };
        assert_eq!(
            SelectionEngine::new(vec![1.0], config).map(|_| ()),
            Err(SelectionError::UnknownBackend {
                name: "no-such-backend"
            })
        );
    }

    #[test]
    fn enqueue_validates_index_and_weight() {
        let e = engine(vec![1.0, 1.0]);
        assert_eq!(
            e.enqueue(2, 1.0),
            Err(SelectionError::IndexOutOfRange { index: 2, len: 2 })
        );
        assert!(matches!(
            e.enqueue(0, f64::NAN),
            Err(SelectionError::InvalidFitness { index: 0, .. })
        ));
        assert_eq!(
            e.enqueue_many(&[(0, 1.0), (5, 1.0)]),
            Err(SelectionError::IndexOutOfRange { index: 5, len: 2 })
        );
        // The failed batch enqueued nothing.
        assert_eq!(e.publish().unwrap(), 0);
        assert_eq!(e.stats().enqueued, 0);
    }

    #[test]
    fn failed_enqueue_many_leaves_the_pending_batch_bit_identical() {
        let e = engine(vec![1.0, 2.0, 3.0, 4.0]);
        // Seed a non-trivial pending state: an override folded through a
        // scale (its stored value is the product, exercising bit equality
        // beyond round numbers) plus an absolute one after the scale.
        e.enqueue(0, 0.3).unwrap();
        e.scale_all(0.7).unwrap();
        e.enqueue(2, 1.9).unwrap();
        let before = e.pending.lock().unwrap().state();
        let before_stats = e.stats();

        let failing: [&[(usize, f64)]; 3] = [
            &[(1, 5.0), (9, 1.0), (3, 2.0)], // index out of range mid-slice
            &[(1, 5.0), (3, f64::NAN)],      // invalid weight at the tail
            &[(1, -1.0)],                    // invalid weight up front
        ];
        for bad in failing {
            assert!(e.enqueue_many(bad).is_err());
        }

        let after = e.pending.lock().unwrap().state();
        assert_eq!(
            before.0.to_bits(),
            after.0.to_bits(),
            "the folded scale must be untouched"
        );
        assert_eq!(before.1.len(), after.1.len());
        for (&(bi, bw), &(ai, aw)) in before.1.iter().zip(after.1.iter()) {
            assert_eq!(bi, ai);
            assert_eq!(
                bw.to_bits(),
                aw.to_bits(),
                "pending override {bi} must be bit-identical"
            );
        }
        assert_eq!(
            before_stats,
            e.stats(),
            "failed batches must not move any counter"
        );
    }

    /// A registry-pluggable backend whose first build (the engine's initial
    /// snapshot) succeeds and every later build fails — the deterministic
    /// way to drive `publish()` down its restore path.
    struct FailAfterFirstBuild {
        builds: AtomicU64,
    }

    impl crate::backend::FrozenBackend for FailAfterFirstBuild {
        fn name(&self) -> &'static str {
            "fail-after-first"
        }

        fn build(
            &self,
            weights: &[f64],
        ) -> Result<Box<dyn lrb_core::traits::FrozenSampler>, SelectionError> {
            if self.builds.fetch_add(1, Ordering::Relaxed) == 0 {
                crate::backend::FenwickBackend.build(weights)
            } else {
                Err(SelectionError::AllZeroFitness)
            }
        }

        fn model_cost(&self, profile: &WorkloadProfile) -> crate::backend::BackendCost {
            crate::backend::FenwickBackend.model_cost(profile)
        }
    }

    #[test]
    fn failed_publish_restores_the_drained_batch() {
        let mut registry = crate::backend::BackendRegistry::empty();
        registry.register(Arc::new(FailAfterFirstBuild {
            builds: AtomicU64::new(0),
        }));
        let config = EngineConfig {
            backend: BackendChoice::Fixed("fail-after-first"),
            ..EngineConfig::default()
        };
        let e = SelectionEngine::with_registry(vec![8.0, 8.0], config, registry).unwrap();
        e.enqueue(0, 4.0).unwrap();
        e.scale_all(0.5).unwrap();
        assert!(e.publish().is_err(), "the post-construction build fails");
        assert_eq!(e.version(), 0, "no snapshot was installed");
        // The drained batch went back into the queue exactly as it left:
        // the override predated the scale, so its stored value is folded.
        let (scale, overrides) = e.pending.lock().unwrap().state();
        assert_eq!(scale, 0.5);
        assert_eq!(overrides, vec![(0, 2.0)]);
    }

    #[test]
    fn scale_all_validates_the_factor() {
        let e = engine(vec![1.0, 2.0]);
        for bad in [-0.1, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(e.scale_all(bad), Err(SelectionError::InvalidScale { .. })),
                "factor {bad} was accepted"
            );
        }
        // Rejected factors must not have dirtied the batch.
        assert_eq!(e.publish().unwrap(), 0);
    }

    #[test]
    fn updates_are_invisible_until_published() {
        let e = engine(vec![1.0, 1.0]);
        e.enqueue(0, 99.0).unwrap();
        assert_eq!(e.snapshot().weight(0), 1.0, "not yet published");
        assert_eq!(e.version(), 0);
        let v = e.publish().unwrap();
        assert_eq!(v, 1);
        assert_eq!(e.snapshot().weight(0), 99.0);
    }

    #[test]
    fn old_snapshots_survive_publication_untouched() {
        let e = engine(vec![1.0, 3.0]);
        let old = e.snapshot();
        e.enqueue(1, 0.0).unwrap();
        e.publish().unwrap();
        assert_eq!(old.version(), 0);
        assert_eq!(old.weight(1), 3.0);
        let mut rng = MersenneTwister64::seed_from_u64(3);
        // The old snapshot still draws index 1; the new one never does.
        let old_draws = old.sample_many(&mut rng, 500).unwrap();
        assert!(old_draws.contains(&1));
        let new = e.snapshot();
        let new_draws = new.sample_many(&mut rng, 500).unwrap();
        assert!(!new_draws.contains(&1));
    }

    #[test]
    fn evaporation_folds_with_overrides_in_arrival_order() {
        let e = engine(vec![8.0, 8.0, 8.0]);
        e.enqueue(0, 4.0).unwrap(); // then scaled by 0.5 → 2.0
        e.scale_all(0.5).unwrap();
        e.enqueue(1, 4.0).unwrap(); // absolute, after the scale → 4.0
        e.publish().unwrap();
        let snap = e.snapshot();
        assert_eq!(snap.weight(0), 2.0);
        assert_eq!(snap.weight(1), 4.0);
        assert_eq!(snap.weight(2), 4.0); // 8.0 · 0.5
    }

    #[test]
    fn empty_publish_is_a_cheap_no_op() {
        let e = engine(vec![1.0]);
        assert_eq!(e.publish().unwrap(), 0);
        assert_eq!(e.publish().unwrap(), 0);
        assert_eq!(e.stats().publishes, 0);
    }

    #[test]
    fn stats_count_publishes_and_coalescing() {
        let e = engine(vec![1.0; 8]);
        e.enqueue(3, 1.0).unwrap();
        e.enqueue(3, 2.0).unwrap();
        e.enqueue(3, 3.0).unwrap();
        e.enqueue(4, 1.0).unwrap();
        e.publish().unwrap();
        let stats = e.stats();
        assert_eq!(stats.publishes, 1);
        assert_eq!(stats.enqueued, 4);
        assert_eq!(stats.coalesced, 2, "two of the three writes to 3 died");
        // Last write wins: index 3 carries the final value.
        assert_eq!(e.snapshot().weight(3), 3.0);
    }

    #[test]
    fn fixed_backend_choice_is_honoured_across_publishes() {
        for name in BackendRegistry::standard().names() {
            let config = EngineConfig {
                backend: BackendChoice::Fixed(name),
                ..EngineConfig::default()
            };
            let e = SelectionEngine::new(vec![1.0, 2.0, 3.0], config).unwrap();
            assert_eq!(e.snapshot().backend(), name);
            e.enqueue(0, 5.0).unwrap();
            e.publish().unwrap();
            assert_eq!(e.snapshot().backend(), name);
            assert_eq!(e.stats().backend_switches, 0);
            assert!(e.switch_history().is_empty());
            assert!(e.maybe_rebalance().unwrap().is_none(), "{name} rebalanced");
        }
    }

    #[test]
    fn auto_backend_reacts_to_skew_changes_and_records_the_switch() {
        // Balanced weights with a moderate draw hint → stochastic
        // acceptance; a pathological spike → anything but, recorded in the
        // switch history.
        let config = EngineConfig {
            backend: BackendChoice::Auto,
            expected_draws_per_publish: 64.0,
            ..EngineConfig::default()
        };
        let e = SelectionEngine::new(vec![1.0; 4096], config).unwrap();
        assert_eq!(e.snapshot().backend(), "stochastic-acceptance");
        // Serve enough draws that the observed rate stays near the hint.
        let mut rng = MersenneTwister64::seed_from_u64(4);
        let _ = e.snapshot().sample_many(&mut rng, 64).unwrap();
        e.enqueue(0, 1.0e9).unwrap();
        e.publish().unwrap();
        assert_ne!(e.snapshot().backend(), "stochastic-acceptance");
        let history = e.switch_history();
        assert_eq!(history.len(), 1);
        assert_eq!(history[0].version, 1);
        assert_eq!(history[0].from, "stochastic-acceptance");
        assert!(!history[0].mid_stream);
        assert_eq!(e.stats().backend_switches, 1);
    }

    #[test]
    fn observed_draw_rates_feed_the_decider() {
        // The config hints at a draw-heavy window (which would amortise an
        // alias build), but the observed rate is ~zero draws per publish —
        // after a few publishes the EWMA must pull the choice to the
        // cheapest build (fenwick).
        let config = EngineConfig {
            backend: BackendChoice::Auto,
            expected_draws_per_publish: 1.0e6,
            ..EngineConfig::default()
        };
        // Mild skew prices SA draws above an alias lookup, so the
        // draw-heavy hint picks alias at construction.
        let weights: Vec<f64> = (0..512).map(|i| ((i % 7) + 1) as f64).collect();
        let e = SelectionEngine::new(weights, config).unwrap();
        assert_eq!(e.snapshot().backend(), "alias");
        for step in 0..12 {
            e.enqueue(step % 512, 2.0).unwrap();
            e.publish().unwrap();
        }
        assert!(e.observed_draws_per_publish() < 1024.0);
        assert_eq!(e.snapshot().backend(), "fenwick");
        assert!(e.stats().backend_switches >= 1);
    }

    #[test]
    fn maybe_rebalance_switches_mid_stream_on_observed_drift() {
        // Publish window hint: one draw (nothing amortises an alias build),
        // so construction picks the cheap-build Fenwick tree. Then readers
        // hammer the snapshot with no publish in sight: the served counter
        // is the drift signal, and the mid-stream decider moves onto O(1)
        // alias draws without any pending write.
        let config = EngineConfig {
            backend: BackendChoice::Auto,
            expected_draws_per_publish: 1.0,
            ..EngineConfig::default()
        };
        let n = 4096;
        // Skewed weights keep stochastic acceptance out of the running, so
        // the contest is fenwick (cheap build) vs alias (cheap draws).
        let weights: Vec<f64> = (0..n).map(|i| if i == 0 { 1.0e6 } else { 1.0 }).collect();
        let e = SelectionEngine::new(weights, config).unwrap();
        assert_eq!(e.snapshot().backend(), "fenwick");
        assert!(e.maybe_rebalance().unwrap().is_none(), "no drift yet");
        let mut rng = MersenneTwister64::seed_from_u64(9);
        let _ = e.snapshot().sample_many(&mut rng, 100_000).unwrap();
        let switched = e.maybe_rebalance().unwrap();
        assert_eq!(switched, Some(1));
        assert_eq!(e.snapshot().backend(), "alias");
        let last = *e.switch_history().last().unwrap();
        assert!(last.mid_stream);
        assert_eq!(last.from, "fenwick");
        assert_eq!(last.to, "alias");
        assert_eq!(last.draws_served, 100_000);
        // Same weights, just a different engine underneath.
        assert_eq!(e.snapshot().weight(0), 1.0e6);
        // Re-running without further drift is a no-op (the fresh snapshot
        // has served nothing yet, and alias stays cheapest mid-stream).
        assert!(e.maybe_rebalance().unwrap().is_none());
    }

    #[test]
    fn rebalance_defers_to_pending_writes() {
        let config = EngineConfig {
            backend: BackendChoice::Auto,
            expected_draws_per_publish: 1.0,
            ..EngineConfig::default()
        };
        let e = SelectionEngine::new(vec![1.0; 256], config).unwrap();
        e.enqueue(0, 3.0).unwrap();
        assert!(e.maybe_rebalance().unwrap().is_none());
        assert_eq!(e.version(), 0, "rebalance must not publish pending writes");
    }

    #[test]
    fn calibrated_engines_still_serve_exact_snapshots() {
        let config = EngineConfig {
            backend: BackendChoice::Auto,
            calibrate: true,
            ..EngineConfig::default()
        };
        let e = SelectionEngine::new(vec![1.0, 2.0, 3.0, 4.0], config).unwrap();
        for constants in e.cost_constants() {
            assert!(constants.build_ns_per_op > 0.0, "{}", constants.backend);
            assert!(constants.draw_ns_per_op > 0.0, "{}", constants.backend);
        }
        e.enqueue(0, 2.0).unwrap();
        e.publish().unwrap();
        let snap = e.snapshot();
        assert_eq!(snap.weights(), &[2.0, 2.0, 3.0, 4.0]);
        let counts = snap.batch_counts(40_000, 5).unwrap();
        assert_eq!(counts.iter().sum::<u64>(), 40_000);
        // 2/11 of the mass on index 0.
        let freq = counts[0] as f64 / 40_000.0;
        assert!((freq - 2.0 / 11.0).abs() < 0.01, "{freq}");
    }

    #[test]
    fn concurrent_enqueues_all_land() {
        let e = engine(vec![0.0; 256]);
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let e = &e;
                scope.spawn(move || {
                    for i in 0..32 {
                        e.enqueue(t * 32 + i, (t + 1) as f64).unwrap();
                    }
                });
            }
        });
        e.publish().unwrap();
        let snap = e.snapshot();
        for t in 0..8 {
            for i in 0..32 {
                assert_eq!(snap.weight(t * 32 + i), (t + 1) as f64);
            }
        }
    }

    #[test]
    fn auto_policy_patches_small_batches_on_the_incumbent_backend() {
        // Fenwick incumbent + one dirty category out of 4096: the unit
        // cost model prices the patch (0.5n + log n) far below the rebuild
        // (n), so the publish must take the patch path.
        let config = EngineConfig {
            backend: BackendChoice::Fixed("fenwick"),
            ..EngineConfig::default()
        };
        let e = SelectionEngine::new(vec![1.0; 4096], config).unwrap();
        e.enqueue(7, 3.0).unwrap();
        e.publish().unwrap();
        assert_eq!(e.stats().patched, 1);
        assert_eq!(e.snapshot().weight(7), 3.0);
        // Evaporation folds through the patch path too.
        e.scale_all(0.5).unwrap();
        e.enqueue(9, 8.0).unwrap();
        e.publish().unwrap();
        assert_eq!(e.stats().patched, 2);
        assert_eq!(e.snapshot().weight(7), 1.5);
        assert_eq!(e.snapshot().weight(9), 8.0);
        assert_eq!(e.snapshot().weight(0), 0.5);
    }

    #[test]
    fn never_policy_always_rebuilds() {
        let config = EngineConfig {
            backend: BackendChoice::Fixed("fenwick"),
            patch: PatchPolicy::Never,
            ..EngineConfig::default()
        };
        let e = SelectionEngine::new(vec![1.0; 4096], config).unwrap();
        e.enqueue(7, 3.0).unwrap();
        e.publish().unwrap();
        assert_eq!(e.stats().patched, 0);
        assert_eq!(e.snapshot().weight(7), 3.0);
    }

    #[test]
    fn patched_and_rebuilt_publishes_hold_identical_weights() {
        for name in BackendRegistry::standard().names() {
            let run = |patch: PatchPolicy| {
                let e = SelectionEngine::new(
                    (0..512).map(|i| ((i % 7) + 1) as f64).collect(),
                    EngineConfig {
                        backend: BackendChoice::Fixed(name),
                        patch,
                        ..EngineConfig::default()
                    },
                )
                .unwrap();
                for round in 0..5u64 {
                    e.scale_all(0.9).unwrap();
                    for k in 0..17usize {
                        e.enqueue((k * 31 + round as usize * 7) % 512, k as f64 + 0.5)
                            .unwrap();
                    }
                    e.publish().unwrap();
                }
                (e.snapshot().weights().to_vec(), e.stats().patched)
            };
            let (patched_weights, patched) = run(PatchPolicy::Always);
            let (rebuilt_weights, rebuilt) = run(PatchPolicy::Never);
            assert_eq!(rebuilt, 0);
            if name != "alias" {
                assert_eq!(patched, 5, "{name} should have patched every publish");
            }
            let identical = patched_weights
                .iter()
                .zip(&rebuilt_weights)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(identical, "{name}: patched weights diverged from rebuild");
        }
    }

    #[test]
    fn patch_path_propagates_overflow_errors_and_keeps_the_batch() {
        let config = EngineConfig {
            backend: BackendChoice::Fixed("fenwick"),
            patch: PatchPolicy::Always,
            ..EngineConfig::default()
        };
        let e = SelectionEngine::new(vec![f64::MAX / 8.0; 4], config).unwrap();
        // Scale the batch *up* so the fold overflows weights to ∞ mid-patch.
        for _ in 0..4 {
            e.scale_all(2.0).unwrap();
        }
        assert!(matches!(
            e.publish(),
            Err(SelectionError::InvalidFitness { .. })
        ));
        assert_eq!(e.version(), 0, "failed publish must not install");
        // The batch survived (net scale 16): fold it down to a finite net
        // factor of 0.5 and the publish succeeds with the restored batch.
        e.scale_all(1.0 / 32.0).unwrap();
        assert_eq!(e.publish().unwrap(), 1);
        assert_eq!(e.snapshot().weight(0), f64::MAX / 16.0);
    }

    #[test]
    fn mid_stream_rebalances_never_patch() {
        let config = EngineConfig {
            backend: BackendChoice::Auto,
            expected_draws_per_publish: 1.0,
            patch: PatchPolicy::Always,
            ..EngineConfig::default()
        };
        let n = 4096;
        let weights: Vec<f64> = (0..n).map(|i| if i == 0 { 1.0e6 } else { 1.0 }).collect();
        let e = SelectionEngine::new(weights, config).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(9);
        let _ = e.snapshot().sample_many(&mut rng, 100_000).unwrap();
        assert_eq!(e.maybe_rebalance().unwrap(), Some(1));
        assert_eq!(e.stats().patched, 0, "a backend switch cannot patch");
    }

    #[test]
    fn journal_explains_publishes_and_switches() {
        use crate::telemetry::EngineEvent;
        let config = EngineConfig {
            backend: BackendChoice::Auto,
            expected_draws_per_publish: 64.0,
            ..EngineConfig::default()
        };
        let e = SelectionEngine::new(vec![1.0; 4096], config).unwrap();
        let journal = e.observability().journal();
        assert!(
            matches!(journal[0].event, EngineEvent::SimdTier { .. }),
            "construction must journal the SIMD tier first"
        );
        let mut rng = MersenneTwister64::seed_from_u64(4);
        let _ = e.snapshot().sample_many(&mut rng, 64).unwrap();
        e.enqueue(0, 1.0e9).unwrap();
        e.publish().unwrap();
        let journal = e.observability().journal();
        let publish = journal
            .iter()
            .find_map(|entry| match entry.event {
                EngineEvent::Publish {
                    version,
                    patched,
                    dirty,
                    scaled,
                    draws_served,
                    ..
                } => Some((version, patched, dirty, scaled, draws_served)),
                _ => None,
            })
            .expect("a publish event was journaled");
        assert_eq!(publish, (1, false, 1, false, 64));
        let switch = journal
            .iter()
            .find_map(|entry| match entry.event {
                EngineEvent::BackendSwitch { from, to, skew, .. } => Some((from, to, skew)),
                _ => None,
            })
            .expect("the backend switch was journaled");
        assert_eq!(switch.0, "stochastic-acceptance");
        assert_eq!(switch.1, e.stats().backend);
        // skew = n · w_max / Σw ≈ 4096 with all the mass on one category.
        assert!(switch.2 > 1.0e3, "the degenerate skew drove the switch");
        // Journal stamps are monotone in push order.
        assert!(journal.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
    }

    #[test]
    fn latency_histograms_observe_the_publish_path() {
        let e = engine(vec![1.0; 512]);
        for i in 0..5 {
            e.enqueue(i, 2.0).unwrap();
            e.publish().unwrap();
        }
        let publish = e.observability().publish_latency();
        let freeze = e.observability().freeze_latency();
        assert_eq!(publish.count, 5);
        assert_eq!(freeze.count, 5);
        assert!(
            publish.p50() >= freeze.p50(),
            "a publish contains its freeze"
        );
        assert!(publish.p999() >= publish.p50());
        // Reader timing is off by default: no samples.
        assert_eq!(e.observability().reader_draw_latency().count, 0);
    }

    #[test]
    fn sampled_reader_timing_records_when_enabled() {
        let config = EngineConfig {
            reader_timing_every: 2,
            ..EngineConfig::default()
        };
        let e = SelectionEngine::new(vec![1.0, 2.0, 3.0], config).unwrap();
        let mut rng = MersenneTwister64::seed_from_u64(8);
        let mut buffer = [0usize; 32];
        for _ in 0..20 {
            e.read(|s| s.sample_into(&mut rng, &mut buffer)).unwrap();
        }
        let timed = e.observability().reader_draw_latency();
        assert!(
            (5..=15).contains(&timed.count),
            "1-in-2 sampling of 20 buffers timed {} of them",
            timed.count
        );
        // Timing survives publishes (the fresh snapshot re-arms).
        e.enqueue(0, 5.0).unwrap();
        e.publish().unwrap();
        for _ in 0..20 {
            e.read(|s| s.sample_into(&mut rng, &mut buffer)).unwrap();
        }
        assert!(e.observability().reader_draw_latency().count > timed.count);
    }

    #[test]
    fn exporters_cover_the_metric_catalogue() {
        let e = engine(vec![1.0; 64]);
        e.enqueue(1, 3.0).unwrap();
        e.publish().unwrap();
        let text = e.export_prometheus();
        for series in [
            "lrb_publishes_total 1",
            "lrb_enqueued_total 1",
            "# TYPE lrb_publish_ns summary",
            "lrb_publish_ns{quantile=\"0.99\"}",
            "lrb_freeze_ns_count 1",
            "lrb_simd_lanes",
            "lrb_cost_fenwick_build_ns_per_op",
            "lrb_cost_stochastic_acceptance_draw_ns_per_op",
            "lrb_snapshot_version 1",
        ] {
            assert!(text.contains(series), "missing {series} in:\n{text}");
        }
        let json = e.export_json();
        let tree = serde_json::from_str_value(&json).expect("export_json parses");
        let publishes = tree.field("lrb_publishes_total").unwrap();
        assert_eq!(
            *publishes.field("value").unwrap(),
            serde_json::Value::Number(1.0)
        );
        assert!(tree.field("lrb_publish_ns").unwrap().field("p999").is_ok());
    }

    #[test]
    fn stats_snapshot_is_coherent_under_concurrent_publishing() {
        // publishes and patched+switches are counted under the same lock
        // stats() takes, so a reader can never see a publish half-applied:
        // every stats() view must satisfy patched + switches ≤ publishes
        // (each publish bumps publishes exactly once, and at most one of
        // the other two — switching backends precludes patching).
        let e = engine(vec![1.0; 1024]);
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                for round in 0..200usize {
                    e.enqueue(round % 1024, (round % 9) as f64 + 0.5).unwrap();
                    e.publish().unwrap();
                }
            });
            for _ in 0..400 {
                let stats = e.stats();
                assert!(
                    stats.patched + stats.backend_switches <= stats.publishes,
                    "incoherent stats: {stats:?}"
                );
                assert!(stats.enqueued >= stats.publishes, "{stats:?}");
                assert!(!stats.backend.is_empty());
            }
            writer.join().unwrap();
        });
        let stats = e.stats();
        assert_eq!(stats.publishes, 200);
        assert_eq!(stats.enqueued, 200);
    }

    #[test]
    fn from_fitness_builds_the_same_engine() {
        let fitness = Fitness::new(vec![1.0, 2.0]).unwrap();
        let e = SelectionEngine::from_fitness(&fitness, EngineConfig::default());
        assert_eq!(e.len(), 2);
        assert!(!e.is_empty());
        assert_eq!(e.snapshot().weights(), &[1.0, 2.0]);
        assert_eq!(e.registry().len(), 3);
        assert!(format!("{e:?}").contains("SelectionEngine"));
    }
}
