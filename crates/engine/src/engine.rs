//! The concurrent selection engine: coalescing writers, atomically swapped
//! immutable snapshots, lock-free-in-spirit readers.
//!
//! ## Concurrency protocol
//!
//! * **Readers** call [`SelectionEngine::snapshot`], which clones the
//!   current `Arc<Snapshot>` under a briefly held read lock (the lock guards
//!   only the pointer swap, never any sampling work), then draw against the
//!   immutable snapshot with no further coordination. A reader keeps its
//!   snapshot for as many draws as it wants; publication of newer versions
//!   cannot mutate what it holds, so every draw is exact against *some*
//!   published state — the snapshot-isolation guarantee.
//! * **Writers** enqueue weight overrides and evaporation scales into a
//!   mutex-guarded [coalescing batch](crate::queue), then call
//!   [`publish`](SelectionEngine::publish), which folds the batch over the
//!   previous weights, freezes a new [`Snapshot`] (choosing a backend by
//!   cost model under [`BackendChoice::Auto`]) and swaps the `Arc`. The
//!   batch mutex is held across the whole publish, serialising publishers,
//!   so versions are strictly ordered and no batch is ever lost.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use lrb_core::error::SelectionError;
use lrb_core::fitness::Fitness;
use lrb_rng::RandomSource;

use crate::heuristic::{choose_backend, BackendChoice, BackendKind, WorkloadProfile};
use crate::queue::CoalescingQueue;
use crate::snapshot::Snapshot;

/// Tuning knobs for a [`SelectionEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// How snapshot backends are chosen at publish time.
    pub backend: BackendChoice,
    /// Cost-model hint under [`BackendChoice::Auto`]: how many draws one
    /// snapshot is expected to serve before the next publish.
    pub expected_draws_per_publish: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            backend: BackendChoice::Auto,
            expected_draws_per_publish: 1024.0,
        }
    }
}

/// Aggregate engine counters (all monotone since construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Snapshots published (the initial build is not counted).
    pub publishes: u64,
    /// Weight overrides accepted from writers.
    pub enqueued: u64,
    /// Overrides that were overwritten before ever being published.
    pub coalesced: u64,
}

/// A snapshot-isolated concurrent weighted-selection service.
///
/// # Example
///
/// ```
/// use lrb_engine::{EngineConfig, SelectionEngine};
/// use lrb_rng::{MersenneTwister64, SeedableSource};
///
/// let engine = SelectionEngine::new(vec![1.0, 2.0, 3.0], EngineConfig::default())?;
/// let mut rng = MersenneTwister64::seed_from_u64(7);
///
/// // Readers sample a consistent snapshot:
/// let snapshot = engine.snapshot();
/// let i = snapshot.sample(&mut rng)?;
///
/// // Writers batch updates and publish them atomically:
/// engine.enqueue(i, 0.0)?;      // last-write-wins per category
/// engine.scale_all(0.9)?;       // evaporation folds into one factor
/// let version = engine.publish()?;
/// assert_eq!(version, 1);
/// assert_eq!(engine.snapshot().weight(i), 0.0);
///
/// // The old snapshot is untouched — that is the isolation guarantee:
/// assert_eq!(snapshot.version(), 0);
/// assert!(snapshot.weight(i) > 0.0);
/// # Ok::<(), lrb_core::SelectionError>(())
/// ```
pub struct SelectionEngine {
    /// The current snapshot; the lock guards only the `Arc` swap.
    current: RwLock<Arc<Snapshot>>,
    /// Pending writer batch. Held across the whole publish, so publishers
    /// are serialised and `current` only ever moves forward one batch at a
    /// time.
    pending: Mutex<CoalescingQueue>,
    config: EngineConfig,
    len: usize,
    publishes: AtomicU64,
    enqueued_total: AtomicU64,
    coalesced_total: AtomicU64,
}

impl SelectionEngine {
    /// Build an engine over raw weights (validated like `Fitness::new`,
    /// except that an all-zero vector is allowed — sampling then fails with
    /// [`SelectionError::AllZeroFitness`] until a writer revives a weight).
    pub fn new(weights: Vec<f64>, config: EngineConfig) -> Result<Self, SelectionError> {
        if weights.is_empty() {
            return Err(SelectionError::EmptyFitness);
        }
        for (index, &value) in weights.iter().enumerate() {
            if !value.is_finite() || value < 0.0 {
                return Err(SelectionError::InvalidFitness { index, value });
            }
        }
        let len = weights.len();
        let backend = Self::pick_backend(&config, &weights);
        let snapshot = Snapshot::build(0, weights, backend)?;
        Ok(Self {
            current: RwLock::new(Arc::new(snapshot)),
            pending: Mutex::new(CoalescingQueue::new()),
            config,
            len,
            publishes: AtomicU64::new(0),
            enqueued_total: AtomicU64::new(0),
            coalesced_total: AtomicU64::new(0),
        })
    }

    /// Build an engine from an already-validated [`Fitness`] vector.
    pub fn from_fitness(fitness: &Fitness, config: EngineConfig) -> Self {
        Self::new(fitness.values().to_vec(), config)
            .expect("a validated fitness vector is non-empty and finite")
    }

    fn pick_backend(config: &EngineConfig, weights: &[f64]) -> BackendKind {
        match config.backend {
            BackendChoice::Fixed(kind) => kind,
            BackendChoice::Auto => choose_backend(&WorkloadProfile::measure(
                weights,
                config.expected_draws_per_publish,
            )),
        }
    }

    /// Number of categories (fixed at construction).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the engine has zero categories (never true — construction
    /// rejects empty weight vectors).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The current snapshot. The read lock is held only long enough to
    /// clone the `Arc`; all sampling happens against the returned immutable
    /// snapshot with no locks at all.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read().expect("snapshot lock poisoned"))
    }

    /// Version of the current snapshot (0 for the initial state).
    pub fn version(&self) -> u64 {
        self.snapshot().version()
    }

    /// Convenience: one draw against the current snapshot. Loops that draw
    /// repeatedly should hold a [`snapshot`](SelectionEngine::snapshot)
    /// instead, both for speed and for distribution stability.
    pub fn sample(&self, rng: &mut dyn RandomSource) -> Result<usize, SelectionError> {
        self.snapshot().sample(rng)
    }

    /// Enqueue an absolute weight for one category; visible to readers only
    /// after the next [`publish`](SelectionEngine::publish). Last write wins
    /// when the same category is enqueued twice in one batch.
    pub fn enqueue(&self, index: usize, weight: f64) -> Result<(), SelectionError> {
        if index >= self.len {
            return Err(SelectionError::IndexOutOfRange {
                index,
                len: self.len,
            });
        }
        if !weight.is_finite() || weight < 0.0 {
            return Err(SelectionError::InvalidFitness {
                index,
                value: weight,
            });
        }
        let coalesced = self
            .pending
            .lock()
            .expect("batch lock poisoned")
            .set(index, weight);
        self.enqueued_total.fetch_add(1, Ordering::Relaxed);
        if coalesced {
            self.coalesced_total.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Enqueue many `(index, weight)` pairs; the whole slice is validated
    /// before any of it is enqueued, so a bad entry cannot half-apply.
    pub fn enqueue_many(&self, updates: &[(usize, f64)]) -> Result<(), SelectionError> {
        for &(index, weight) in updates {
            if index >= self.len {
                return Err(SelectionError::IndexOutOfRange {
                    index,
                    len: self.len,
                });
            }
            if !weight.is_finite() || weight < 0.0 {
                return Err(SelectionError::InvalidFitness {
                    index,
                    value: weight,
                });
            }
        }
        let mut pending = self.pending.lock().expect("batch lock poisoned");
        let mut coalesced = 0;
        for &(index, weight) in updates {
            if pending.set(index, weight) {
                coalesced += 1;
            }
        }
        drop(pending);
        self.enqueued_total
            .fetch_add(updates.len() as u64, Ordering::Relaxed);
        self.coalesced_total.fetch_add(coalesced, Ordering::Relaxed);
        Ok(())
    }

    /// Enqueue a multiplicative factor over every weight — evaporation in
    /// the ant-colony reading. Folds with any pending scale in `O(1)` plus
    /// the pending-override count (never `O(n)` before publish).
    pub fn scale_all(&self, factor: f64) -> Result<(), SelectionError> {
        if !factor.is_finite() || factor < 0.0 {
            return Err(SelectionError::InvalidScale { factor });
        }
        self.pending
            .lock()
            .expect("batch lock poisoned")
            .scale(factor);
        Ok(())
    }

    /// Fold the pending batch over the current weights, freeze the result
    /// into a new snapshot and atomically swap it in. Returns the version
    /// now current. A publish with nothing pending is a no-op returning the
    /// unchanged version.
    pub fn publish(&self) -> Result<u64, SelectionError> {
        let mut pending = self.pending.lock().expect("batch lock poisoned");
        if pending.is_empty() {
            return Ok(self.snapshot().version());
        }
        let batch = pending.drain();
        let previous = self.snapshot();
        let mut weights = previous.weights().to_vec();
        if batch.scale != 1.0 {
            for w in weights.iter_mut() {
                *w *= batch.scale;
            }
        }
        for &(index, weight) in &batch.overrides {
            weights[index] = weight;
        }
        let backend = Self::pick_backend(&self.config, &weights);
        let snapshot = Snapshot::build(previous.version() + 1, weights, backend)?;
        let version = snapshot.version();
        *self.current.write().expect("snapshot lock poisoned") = Arc::new(snapshot);
        self.publishes.fetch_add(1, Ordering::Relaxed);
        // `pending` (still held) unlocks here, admitting the next publisher.
        Ok(version)
    }

    /// Aggregate counters since construction.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            publishes: self.publishes.load(Ordering::Relaxed),
            enqueued: self.enqueued_total.load(Ordering::Relaxed),
            coalesced: self.coalesced_total.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for SelectionEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SelectionEngine")
            .field("len", &self.len)
            .field("current", &self.snapshot())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_rng::{MersenneTwister64, SeedableSource};

    fn engine(weights: Vec<f64>) -> SelectionEngine {
        SelectionEngine::new(weights, EngineConfig::default()).unwrap()
    }

    #[test]
    fn construction_validates_weights() {
        assert_eq!(
            SelectionEngine::new(vec![], EngineConfig::default()).map(|_| ()),
            Err(SelectionError::EmptyFitness)
        );
        assert!(matches!(
            SelectionEngine::new(vec![1.0, -1.0], EngineConfig::default()).map(|_| ()),
            Err(SelectionError::InvalidFitness { index: 1, .. })
        ));
        // All-zero is allowed; draws fail until a writer revives a weight.
        let e = engine(vec![0.0, 0.0]);
        let mut rng = MersenneTwister64::seed_from_u64(1);
        assert_eq!(e.sample(&mut rng), Err(SelectionError::AllZeroFitness));
        e.enqueue(0, 2.0).unwrap();
        e.publish().unwrap();
        assert_eq!(e.sample(&mut rng).unwrap(), 0);
    }

    #[test]
    fn enqueue_validates_index_and_weight() {
        let e = engine(vec![1.0, 1.0]);
        assert_eq!(
            e.enqueue(2, 1.0),
            Err(SelectionError::IndexOutOfRange { index: 2, len: 2 })
        );
        assert!(matches!(
            e.enqueue(0, f64::NAN),
            Err(SelectionError::InvalidFitness { index: 0, .. })
        ));
        assert_eq!(
            e.enqueue_many(&[(0, 1.0), (5, 1.0)]),
            Err(SelectionError::IndexOutOfRange { index: 5, len: 2 })
        );
        // The failed batch enqueued nothing.
        assert_eq!(e.publish().unwrap(), 0);
        assert_eq!(e.stats().enqueued, 0);
    }

    #[test]
    fn scale_all_validates_the_factor() {
        let e = engine(vec![1.0, 2.0]);
        for bad in [-0.1, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(e.scale_all(bad), Err(SelectionError::InvalidScale { .. })),
                "factor {bad} was accepted"
            );
        }
        // Rejected factors must not have dirtied the batch.
        assert_eq!(e.publish().unwrap(), 0);
    }

    #[test]
    fn updates_are_invisible_until_published() {
        let e = engine(vec![1.0, 1.0]);
        e.enqueue(0, 99.0).unwrap();
        assert_eq!(e.snapshot().weight(0), 1.0, "not yet published");
        assert_eq!(e.version(), 0);
        let v = e.publish().unwrap();
        assert_eq!(v, 1);
        assert_eq!(e.snapshot().weight(0), 99.0);
    }

    #[test]
    fn old_snapshots_survive_publication_untouched() {
        let e = engine(vec![1.0, 3.0]);
        let old = e.snapshot();
        e.enqueue(1, 0.0).unwrap();
        e.publish().unwrap();
        assert_eq!(old.version(), 0);
        assert_eq!(old.weight(1), 3.0);
        let mut rng = MersenneTwister64::seed_from_u64(3);
        // The old snapshot still draws index 1; the new one never does.
        let old_draws = old.sample_many(&mut rng, 500).unwrap();
        assert!(old_draws.contains(&1));
        let new = e.snapshot();
        let new_draws = new.sample_many(&mut rng, 500).unwrap();
        assert!(!new_draws.contains(&1));
    }

    #[test]
    fn evaporation_folds_with_overrides_in_arrival_order() {
        let e = engine(vec![8.0, 8.0, 8.0]);
        e.enqueue(0, 4.0).unwrap(); // then scaled by 0.5 → 2.0
        e.scale_all(0.5).unwrap();
        e.enqueue(1, 4.0).unwrap(); // absolute, after the scale → 4.0
        e.publish().unwrap();
        let snap = e.snapshot();
        assert_eq!(snap.weight(0), 2.0);
        assert_eq!(snap.weight(1), 4.0);
        assert_eq!(snap.weight(2), 4.0); // 8.0 · 0.5
    }

    #[test]
    fn empty_publish_is_a_cheap_no_op() {
        let e = engine(vec![1.0]);
        assert_eq!(e.publish().unwrap(), 0);
        assert_eq!(e.publish().unwrap(), 0);
        assert_eq!(e.stats().publishes, 0);
    }

    #[test]
    fn stats_count_publishes_and_coalescing() {
        let e = engine(vec![1.0; 8]);
        e.enqueue(3, 1.0).unwrap();
        e.enqueue(3, 2.0).unwrap();
        e.enqueue(3, 3.0).unwrap();
        e.enqueue(4, 1.0).unwrap();
        e.publish().unwrap();
        let stats = e.stats();
        assert_eq!(stats.publishes, 1);
        assert_eq!(stats.enqueued, 4);
        assert_eq!(stats.coalesced, 2, "two of the three writes to 3 died");
        // Last write wins: index 3 carries the final value.
        assert_eq!(e.snapshot().weight(3), 3.0);
    }

    #[test]
    fn fixed_backend_choice_is_honoured_across_publishes() {
        for kind in BackendKind::all() {
            let config = EngineConfig {
                backend: BackendChoice::Fixed(kind),
                ..EngineConfig::default()
            };
            let e = SelectionEngine::new(vec![1.0, 2.0, 3.0], config).unwrap();
            assert_eq!(e.snapshot().backend(), kind);
            e.enqueue(0, 5.0).unwrap();
            e.publish().unwrap();
            assert_eq!(e.snapshot().backend(), kind);
        }
    }

    #[test]
    fn auto_backend_reacts_to_skew_changes() {
        // Balanced weights with a moderate draw hint → stochastic
        // acceptance; a pathological spike → anything but.
        let config = EngineConfig {
            backend: BackendChoice::Auto,
            expected_draws_per_publish: 64.0,
        };
        let e = SelectionEngine::new(vec![1.0; 4096], config).unwrap();
        assert_eq!(e.snapshot().backend(), BackendKind::StochasticAcceptance);
        e.enqueue(0, 1.0e9).unwrap();
        e.publish().unwrap();
        assert_ne!(e.snapshot().backend(), BackendKind::StochasticAcceptance);
    }

    #[test]
    fn concurrent_enqueues_all_land() {
        let e = engine(vec![0.0; 256]);
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let e = &e;
                scope.spawn(move || {
                    for i in 0..32 {
                        e.enqueue(t * 32 + i, (t + 1) as f64).unwrap();
                    }
                });
            }
        });
        e.publish().unwrap();
        let snap = e.snapshot();
        for t in 0..8 {
            for i in 0..32 {
                assert_eq!(snap.weight(t * 32 + i), (t + 1) as f64);
            }
        }
    }

    #[test]
    fn from_fitness_builds_the_same_engine() {
        let fitness = Fitness::new(vec![1.0, 2.0]).unwrap();
        let e = SelectionEngine::from_fitness(&fitness, EngineConfig::default());
        assert_eq!(e.len(), 2);
        assert!(!e.is_empty());
        assert_eq!(e.snapshot().weights(), &[1.0, 2.0]);
        assert!(format!("{e:?}").contains("SelectionEngine"));
    }
}
