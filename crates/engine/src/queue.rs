//! The coalescing write batch between two publishes.
//!
//! Writers do not touch live samplers: they enqueue intents — absolute
//! weight overrides and multiplicative whole-vector scales (evaporation) —
//! which the engine folds into the next snapshot at publish time. Two rules
//! keep the batch equivalent to applying every operation in arrival order:
//!
//! * **last write wins** per category: a later `set(i, …)` replaces an
//!   earlier pending one (the earlier write is *coalesced* — it was never
//!   observable, because no snapshot was published between them);
//! * **scales fold**: `scale_all(a)` then `scale_all(b)` pends `a·b`, and a
//!   scale arriving *after* a pending override also multiplies that override
//!   (the override had already replaced the category's weight, so the scale
//!   applies to the replacement). An override arriving after a scale is
//!   absolute — it overwrites whatever the scale would have produced.
//!
//! This is the same algebra `lrb_aco::DesirabilityTables` uses to make
//! pheromone evaporation `O(1)` per round, lifted to the serving layer.

use std::collections::HashMap;

/// Pending, coalesced writer operations (engine-internal; guarded by the
/// engine's batch mutex; the engine's atomics do the stats bookkeeping).
#[derive(Debug)]
pub(crate) struct CoalescingQueue {
    /// Folded multiplicative factor applied to every non-overridden weight.
    scale: f64,
    /// Last-write-wins absolute weights, keyed by category.
    overrides: HashMap<usize, f64>,
}

/// Everything the engine needs to build the next snapshot from the previous
/// weights: `new_w[i] = overrides[i]` if present, else `old_w[i] · scale`.
/// (The engine itself drains through
/// [`drain_into`](CoalescingQueue::drain_into) into pooled buffers; this
/// owned form remains for tests.)
#[cfg(test)]
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct DrainedBatch {
    pub scale: f64,
    /// Sorted by category index (deterministic application and logging).
    pub overrides: Vec<(usize, f64)>,
}

impl CoalescingQueue {
    pub fn new() -> Self {
        Self {
            scale: 1.0,
            overrides: HashMap::new(),
        }
    }

    /// Whether draining now would change nothing.
    pub fn is_empty(&self) -> bool {
        self.scale == 1.0 && self.overrides.is_empty()
    }

    /// Enqueue an absolute weight for one category (validated by the
    /// engine). Returns whether an earlier pending write was coalesced.
    pub fn set(&mut self, index: usize, weight: f64) -> bool {
        self.overrides.insert(index, weight).is_some()
    }

    /// Fold a multiplicative factor over the whole pending batch.
    pub fn scale(&mut self, factor: f64) {
        self.scale *= factor;
        for pending in self.overrides.values_mut() {
            *pending *= factor;
        }
    }

    /// Re-merge a drained-but-unpublished batch **under** whatever has been
    /// enqueued since the drain, preserving arrival-order semantics (the
    /// drained operations happened first, so newer writes win):
    ///
    /// * the combined scale is `drained_scale · self.scale` — the drained
    ///   scale precedes every factor that arrived after the drain;
    /// * a category overridden in the drained batch and **not** since
    ///   re-enters multiplied by the post-drain scale (had the drain never
    ///   happened, those later `scale` calls would have folded into it);
    /// * a category overridden **again** since the drain keeps the newer
    ///   value untouched (last write wins — the restored write was older).
    ///
    /// This is the failure path of a publish whose freeze errored after the
    /// batch lock was released: it reconstructs exactly the queue that
    /// sequential application of every accepted operation would have built.
    pub fn restore_drained(&mut self, drained_scale: f64, drained: &[(usize, f64)]) {
        let arrived_since = self.scale;
        self.scale *= drained_scale;
        for &(index, weight) in drained {
            self.overrides
                .entry(index)
                .or_insert(weight * arrived_since);
        }
    }

    /// Non-destructive copy of the queue's exact state — the folded scale
    /// and the overrides sorted by index — for bit-level assertions.
    #[cfg(test)]
    pub fn state(&self) -> (f64, Vec<(usize, f64)>) {
        let mut overrides: Vec<(usize, f64)> =
            self.overrides.iter().map(|(&i, &w)| (i, w)).collect();
        overrides.sort_unstable_by_key(|&(index, _)| index);
        (self.scale, overrides)
    }

    /// Take the batch, leaving the queue empty.
    #[cfg(test)]
    pub fn drain(&mut self) -> DrainedBatch {
        let mut overrides = Vec::new();
        let scale = self.drain_into(&mut overrides);
        DrainedBatch { scale, overrides }
    }

    /// Take the batch into a caller-pooled override buffer (cleared first),
    /// returning the folded scale. Allocation-free once `out` and the
    /// internal map have reached the workload's high-water capacity — this
    /// is the publish-path entry point.
    pub fn drain_into(&mut self, out: &mut Vec<(usize, f64)>) -> f64 {
        out.clear();
        out.extend(self.overrides.drain());
        out.sort_unstable_by_key(|&(index, _)| index);
        let scale = self.scale;
        self.scale = 1.0;
        scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty_and_drains_empty() {
        let mut q = CoalescingQueue::new();
        assert!(q.is_empty());
        let batch = q.drain();
        assert_eq!(batch.scale, 1.0);
        assert!(batch.overrides.is_empty());
    }

    #[test]
    fn last_write_wins_and_reports_coalescing() {
        let mut q = CoalescingQueue::new();
        assert!(!q.set(3, 1.0));
        assert!(!q.set(5, 2.0));
        assert!(q.set(3, 9.0), "replacing a pending write reports true");
        let batch = q.drain();
        assert_eq!(batch.overrides, vec![(3, 9.0), (5, 2.0)]);
        assert!(q.is_empty(), "drain must reset the queue");
    }

    #[test]
    fn scales_fold_and_apply_to_earlier_overrides_only() {
        let mut q = CoalescingQueue::new();
        q.set(0, 4.0); // before the scale: will be scaled
        q.scale(0.5);
        q.scale(0.5);
        q.set(1, 4.0); // after the scales: absolute
        let batch = q.drain();
        assert_eq!(batch.scale, 0.25);
        assert_eq!(batch.overrides, vec![(0, 1.0), (1, 4.0)]);
    }

    #[test]
    fn restore_drained_into_empty_queue_reproduces_the_batch() {
        let mut q = CoalescingQueue::new();
        q.set(2, 3.0);
        q.scale(0.5);
        let drained = q.drain();
        assert!(q.is_empty());
        q.restore_drained(drained.scale, &drained.overrides);
        assert_eq!(q.drain(), drained);
    }

    #[test]
    fn restore_drained_merges_under_newer_writes() {
        // Sequential truth: set(0,4), set(1,6), scale(0.5)  [drained batch]
        // then set(1,9), scale(2.0), set(2,7)               [arrived since]
        // equals scale 0.5·2.0 = 1.0 with overrides
        // {0: 4·0.5·2.0 = 4, 1: 9·2.0 = 18 (the newer write at index 1
        // wins over the restored one, and the later scale had already
        // folded into it), 2: 7}.
        let mut drained_q = CoalescingQueue::new();
        drained_q.set(0, 4.0);
        drained_q.set(1, 6.0);
        drained_q.scale(0.5);
        let drained = drained_q.drain();
        assert_eq!(drained.overrides, vec![(0, 2.0), (1, 3.0)]);

        let mut q = CoalescingQueue::new();
        q.set(1, 9.0);
        q.scale(2.0);
        q.set(2, 7.0);
        q.restore_drained(drained.scale, &drained.overrides);

        let merged = q.drain();
        assert_eq!(merged.scale, 0.5 * 2.0);
        assert_eq!(merged.overrides, vec![(0, 4.0), (1, 18.0), (2, 7.0)]);
    }

    #[test]
    fn scale_only_batches_are_not_empty() {
        let mut q = CoalescingQueue::new();
        q.scale(0.9);
        assert!(!q.is_empty());
        assert_eq!(q.drain().scale, 0.9);
        assert!(q.is_empty());
    }
}
