//! Engine observability: latency histograms, startup gauges and the
//! publish **flight recorder**.
//!
//! [`EngineTelemetry`] is the engine's always-on instrumentation bundle.
//! Recording costs are sized for the paths they sit on:
//!
//! * the **publish path** records full spans into atomic histograms (a
//!   handful of relaxed `fetch_add`s per publish — publishes are
//!   milliseconds apart, so this is free);
//! * the **reader hot path** is only timed when
//!   [`EngineConfig::reader_timing_every`](crate::EngineConfig::reader_timing_every)
//!   is non-zero, and then only on one in *N* acquisitions per thread — a
//!   TLS tick plus, on the sampled calls, one clock read and one histogram
//!   record. The steady-state sample stays allocation-free either way
//!   (proved by `tests/engine_alloc.rs`).
//!
//! The **flight recorder** journals the structured [`EngineEvent`]s that
//! explain a run post-hoc: what every publish did (backend, patched or
//! rebuilt, freeze nanoseconds, dirty count, scale), why the decider
//! switched backends (the cost-model inputs that drove it), what the
//! startup calibration measured, and which SIMD tier the host detected.
//! The journal keeps the most recent [`JOURNAL_CAPACITY`] events; pushes
//! are lock-free and never block readers.

use std::time::Instant;

use lrb_obs::{Counter, FlightRecorder, Gauge, Histogram, HistogramSnapshot};
use lrb_rng::SimdTier;

use crate::heuristic::CostConstants;

/// Events the flight recorder retains (the most recent this many).
pub const JOURNAL_CAPACITY: usize = 256;

/// One structured event in the engine's flight-recorder journal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineEvent {
    /// The SIMD tier the RNG layer runs at, recorded once at construction.
    SimdTier {
        /// Detected (or overridden) tier.
        tier: SimdTier,
        /// Whether an `LRB_SIMD` environment override was present.
        overridden: bool,
    },
    /// One backend's startup micro-calibration result (only under
    /// [`EngineConfig::calibrate`](crate::EngineConfig::calibrate)).
    Calibrated {
        /// The measured per-op cost constants.
        constants: CostConstants,
    },
    /// A snapshot was published (regular publish or mid-stream rebalance).
    Publish {
        /// Version now current.
        version: u64,
        /// Backend the snapshot was frozen under.
        backend: &'static str,
        /// Whether the freeze took the incremental patch path.
        patched: bool,
        /// Nanoseconds spent freezing (build or patch).
        freeze_ns: u64,
        /// Dirty categories folded in (coalesced override count).
        dirty: u64,
        /// Whether an evaporation scale was folded in.
        scaled: bool,
        /// Draws the outgoing snapshot had served.
        draws_served: u64,
    },
    /// The durability layer committed a checkpoint and truncated the WAL
    /// it subsumes.
    Checkpoint {
        /// Version the checkpoint captured.
        version: u64,
        /// Checkpoint blob size in bytes.
        bytes: u64,
    },
    /// The engine was reconstructed from a durability directory: newest
    /// valid checkpoint plus the replayed WAL suffix.
    Recovered {
        /// Version of the recovered state now serving.
        version: u64,
        /// Version of the checkpoint replay started from.
        checkpoint_version: u64,
        /// WAL records replayed on top of the checkpoint.
        replayed: u64,
        /// Bytes discarded from the WAL tail (torn frame, CRC failure or
        /// version gap).
        truncated_bytes: u64,
    },
    /// The decider changed backends, with the cost-model inputs that drove
    /// the decision.
    BackendSwitch {
        /// Version of the snapshot that introduced the new backend.
        version: u64,
        /// Previous backend.
        from: &'static str,
        /// New backend.
        to: &'static str,
        /// The draws-per-publish hint the decision was priced against.
        draws_hint: f64,
        /// Skew measure of the weight vector at the decision.
        skew: f64,
        /// Categories in the weight vector.
        categories: u64,
        /// Whether the switch came from `maybe_rebalance` (workload drift
        /// between publishes) rather than a regular publish.
        mid_stream: bool,
    },
}

/// One journal slot: an [`EngineEvent`] stamped with nanoseconds since the
/// engine was constructed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JournalEntry {
    /// Nanoseconds since engine construction.
    pub at_ns: u64,
    /// The event.
    pub event: EngineEvent,
}

/// The engine's instrumentation bundle (see the module docs). One per
/// engine, shared with its snapshots for sampled reader timing.
#[derive(Debug)]
pub struct EngineTelemetry {
    /// Construction instant; journal stamps are offsets from it.
    started: Instant,
    /// Full `publish()` spans, nanoseconds (lock wait + fold + freeze +
    /// swap).
    publish_ns: Histogram,
    /// Freeze-only spans, nanoseconds (the build-or-patch section the cost
    /// model prices).
    freeze_ns: Histogram,
    /// Writer-side `enqueue`/`enqueue_many`/`scale_all` spans, nanoseconds
    /// (validation + batch-lock wait + the queue operation). Always on:
    /// this is the histogram that catches a publish stalling writers —
    /// after the drain/build split its tail must stay decoupled from
    /// `freeze_ns`.
    enqueue_ns: Histogram,
    /// Sampled per-draw reader latency, nanoseconds (amortised over the
    /// timed buffer; empty unless `reader_timing_every > 0`).
    reader_draw_ns: Histogram,
    /// Philox lanes per SIMD op at the detected tier (8 = AVX-512,
    /// 4 = AVX2, 1 = scalar).
    simd_lanes: Gauge,
    /// WAL append spans, nanoseconds (encode + write; excludes any policy
    /// fsync, which lands in `fsync_ns`). Empty under `Durability::Off` —
    /// the durability hook is behind an `Option`, so the hot path carries
    /// no cost when durability is off.
    wal_append_ns: Histogram,
    /// Policy fsync spans within WAL appends, nanoseconds.
    fsync_ns: Histogram,
    /// Checkpoint spans, nanoseconds (encode + tmp write + fsync + rename
    /// + WAL truncate).
    checkpoint_ns: Histogram,
    /// WAL records appended since construction.
    wal_records: Counter,
    /// WAL frame bytes appended since construction.
    wal_bytes: Counter,
    /// Checkpoints committed since construction.
    checkpoints: Counter,
    /// Checkpoint attempts that failed (non-fatal: the WAL still holds
    /// every record, only recovery time grows until one succeeds).
    checkpoint_failures: Counter,
    /// Recoveries performed (0 or 1 per engine: recovery happens at
    /// construction).
    recoveries: Counter,
    /// WAL records replayed during recovery.
    recovered_records: Counter,
    /// WAL tail bytes discarded during recovery.
    recovery_truncated_bytes: Counter,
    journal: FlightRecorder<JournalEntry>,
}

impl EngineTelemetry {
    pub(crate) fn new() -> Self {
        Self {
            started: Instant::now(),
            publish_ns: Histogram::new(),
            freeze_ns: Histogram::new(),
            enqueue_ns: Histogram::new(),
            reader_draw_ns: Histogram::new(),
            simd_lanes: Gauge::new(),
            wal_append_ns: Histogram::new(),
            fsync_ns: Histogram::new(),
            checkpoint_ns: Histogram::new(),
            wal_records: Counter::new(),
            wal_bytes: Counter::new(),
            checkpoints: Counter::new(),
            checkpoint_failures: Counter::new(),
            recoveries: Counter::new(),
            recovered_records: Counter::new(),
            recovery_truncated_bytes: Counter::new(),
            journal: FlightRecorder::new(JOURNAL_CAPACITY),
        }
    }

    /// Journal an event, stamped with nanoseconds since construction.
    pub(crate) fn record(&self, event: EngineEvent) {
        self.journal.push(JournalEntry {
            at_ns: self.started.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            event,
        });
    }

    pub(crate) fn record_publish_span(&self, started: Instant) {
        self.publish_ns.record_span(started);
    }

    pub(crate) fn record_freeze_ns(&self, ns: u64) {
        self.freeze_ns.record(ns);
    }

    #[inline]
    pub(crate) fn record_enqueue_span(&self, started: Instant) {
        self.enqueue_ns.record_span(started);
    }

    #[inline]
    pub(crate) fn record_reader_draw_ns(&self, ns: u64) {
        self.reader_draw_ns.record(ns);
    }

    pub(crate) fn record_wal_append(&self, ns: u64, bytes: u64) {
        self.wal_append_ns.record(ns);
        self.wal_records.incr();
        self.wal_bytes.add(bytes);
    }

    pub(crate) fn record_fsync_ns(&self, ns: u64) {
        self.fsync_ns.record(ns);
    }

    pub(crate) fn record_checkpoint_ns(&self, ns: u64) {
        self.checkpoint_ns.record(ns);
        self.checkpoints.incr();
    }

    pub(crate) fn record_checkpoint_failure(&self) {
        self.checkpoint_failures.incr();
    }

    pub(crate) fn record_recovery(&self, replayed: u64, truncated_bytes: u64) {
        self.recoveries.incr();
        self.recovered_records.add(replayed);
        self.recovery_truncated_bytes.add(truncated_bytes);
    }

    pub(crate) fn set_simd_tier(&self, tier: SimdTier) {
        self.simd_lanes.set(match tier {
            SimdTier::Avx512 => 8.0,
            SimdTier::Avx2 => 4.0,
            SimdTier::Scalar => 1.0,
        });
    }

    /// Distribution of full `publish()` spans (nanoseconds).
    pub fn publish_latency(&self) -> HistogramSnapshot {
        self.publish_ns.snapshot()
    }

    /// Distribution of freeze (build-or-patch) spans (nanoseconds).
    pub fn freeze_latency(&self) -> HistogramSnapshot {
        self.freeze_ns.snapshot()
    }

    /// Distribution of writer `enqueue`/`enqueue_many`/`scale_all` spans
    /// (nanoseconds). Always on. A healthy engine keeps this tail a few
    /// microseconds regardless of how long publishes freeze — writers only
    /// ever wait for the batch drain, never for a backend build.
    pub fn enqueue_latency(&self) -> HistogramSnapshot {
        self.enqueue_ns.snapshot()
    }

    /// Distribution of sampled per-draw reader latency (nanoseconds,
    /// amortised over each timed buffer). Empty unless the engine was
    /// configured with a non-zero
    /// [`reader_timing_every`](crate::EngineConfig::reader_timing_every).
    pub fn reader_draw_latency(&self) -> HistogramSnapshot {
        self.reader_draw_ns.snapshot()
    }

    /// Philox lanes per SIMD op at the active tier (8 / 4 / 1).
    pub fn simd_lanes(&self) -> f64 {
        self.simd_lanes.get()
    }

    /// Distribution of WAL append spans (nanoseconds; excludes policy
    /// fsyncs). Empty under `Durability::Off`.
    pub fn wal_append_latency(&self) -> HistogramSnapshot {
        self.wal_append_ns.snapshot()
    }

    /// Distribution of policy fsync spans within WAL appends
    /// (nanoseconds).
    pub fn fsync_latency(&self) -> HistogramSnapshot {
        self.fsync_ns.snapshot()
    }

    /// Distribution of checkpoint spans (nanoseconds).
    pub fn checkpoint_latency(&self) -> HistogramSnapshot {
        self.checkpoint_ns.snapshot()
    }

    /// WAL records appended since construction.
    pub fn wal_records(&self) -> u64 {
        self.wal_records.get()
    }

    /// WAL frame bytes appended since construction.
    pub fn wal_bytes(&self) -> u64 {
        self.wal_bytes.get()
    }

    /// Checkpoints committed since construction.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints.get()
    }

    /// Checkpoint attempts that failed (non-fatal; see
    /// [`EngineEvent::Checkpoint`]).
    pub fn checkpoint_failures(&self) -> u64 {
        self.checkpoint_failures.get()
    }

    /// Recoveries performed (0 or 1 — recovery happens at construction).
    pub fn recoveries(&self) -> u64 {
        self.recoveries.get()
    }

    /// WAL records replayed during recovery.
    pub fn recovered_records(&self) -> u64 {
        self.recovered_records.get()
    }

    /// WAL tail bytes discarded during recovery.
    pub fn recovery_truncated_bytes(&self) -> u64 {
        self.recovery_truncated_bytes.get()
    }

    /// The flight-recorder journal: the most recent
    /// [`JOURNAL_CAPACITY`] events, oldest first.
    pub fn journal(&self) -> Vec<JournalEntry> {
        self.journal.snapshot()
    }

    /// Total events ever journaled (monotone; exceeds the journal length
    /// once the ring has wrapped).
    pub fn events_recorded(&self) -> u64 {
        self.journal.pushed()
    }
}
