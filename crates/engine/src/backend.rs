//! The pluggable frozen-backend registry.
//!
//! A [`FrozenBackend`] knows how to freeze a weight vector into a read-only
//! [`FrozenSampler`] and how to describe its own cost shape to the engine's
//! decider. The engine dispatches through a [`BackendRegistry`] of trait
//! objects instead of a closed enum, so new sampler families (NUMA-sharded
//! trees, GPU tables, …) plug in without touching the engine — the
//! rocksdb-style "decider picks the data structure from the observed
//! workload" architecture.
//!
//! The [standard registry](BackendRegistry::standard) ships the three
//! families the paper's setting needs:
//!
//! | backend | build (abstract ops) | patch (`d` dirty) | per draw |
//! |---|---|---|---|
//! | `fenwick` | `n` | `n/2 + d · log₂ n` | `log₂ n` |
//! | `alias` | `≈ 3n` | — (rebuilds, worklists rayon-parallel) | `O(1)` |
//! | `stochastic-acceptance` | `n` | `n/4 + 2d` | `≈ skew` expected rejection rounds |
//!
//! where `skew = n · w_max / Σ w` is exactly the expected rejection round
//! count. The *patch* column is [`FrozenBackend::try_patch`] — freezing the
//! next snapshot from the previous one plus the coalesced batch instead of
//! rebuilding (the `n`-proportional terms are straight `memcpy`s, priced
//! fractionally against the rebuild's branchy passes). All abstract op
//! counts are scaled into nanoseconds by the engine's calibrated
//! [`CostEstimator`](crate::heuristic::CostEstimator), which learns
//! build, patch and draw constants separately.

use std::sync::Arc;

use lrb_core::error::SelectionError;
use lrb_core::sequential::{AliasSampler, AliasScratch};
use lrb_core::traits::{FrozenSampler, PreparedSampler};
use lrb_dynamic::{FenwickSampler, StochasticAcceptanceSampler};
use lrb_rng::RandomSource;

use crate::heuristic::WorkloadProfile;

/// Mirror of the stochastic-acceptance degenerate-skew threshold: past it a
/// draw falls back to an `O(n)` linear scan, which the model must price in.
pub const SA_DEGENERATE_ROUNDS: f64 = 256.0;

/// Abstract cost of one publish window on a backend, in "weight ops" —
/// scale-free units the calibration converts to nanoseconds per host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendCost {
    /// Ops to freeze a weight vector into the backend's sampler.
    pub build_ops: f64,
    /// Ops per draw served from the frozen sampler.
    pub per_draw_ops: f64,
}

/// Pooled transient build buffers, owned by the engine and passed to every
/// snapshot build on the (serialised) publish path. Nothing in here
/// survives a build — a snapshot's *retained* storage (its weight vector,
/// Fenwick tree, alias table) is state, not a buffer, and is still
/// allocated per publish — but the scratch kills the per-publish transients:
/// the drained override list and the alias method's worklists and
/// scaled-probability vector. Buffers grow to the workload's high-water
/// mark and are reused thereafter, so a steady-state publish performs no
/// transient allocation.
#[derive(Debug, Default)]
pub struct BuildScratch {
    /// Drained coalesced overrides, reused across publishes.
    pub(crate) overrides: Vec<(usize, f64)>,
    /// Vose build worklists for [`AliasBackend`] rebuilds.
    pub alias: AliasScratch,
}

/// A sampler family the engine can freeze snapshots under.
///
/// Implementations must be cheap to clone behind an [`Arc`] and build
/// samplers whose draws are exactly `F_i = w_i / Σ w_j` over the weights
/// they were given.
pub trait FrozenBackend: Send + Sync {
    /// A short, stable, machine-friendly name (used in reports, JSON and
    /// [`BackendChoice::Fixed`](crate::heuristic::BackendChoice)).
    fn name(&self) -> &'static str;

    /// Freeze `weights` (already validated: non-empty, finite, non-negative;
    /// an all-zero vector is allowed and must build a sampler whose draws
    /// fail with [`SelectionError::AllZeroFitness`]).
    fn build(&self, weights: &[f64]) -> Result<Box<dyn FrozenSampler>, SelectionError>;

    /// Like [`build`](FrozenBackend::build), but with access to the
    /// engine's pooled [`BuildScratch`] so repeated rebuilds can reuse
    /// transient buffers. The default ignores the scratch and delegates to
    /// `build`; backends with allocation-heavy constructions (the alias
    /// table) override it. Must produce a sampler indistinguishable from
    /// `build`'s.
    fn build_pooled(
        &self,
        weights: &[f64],
        scratch: &mut BuildScratch,
    ) -> Result<Box<dyn FrozenSampler>, SelectionError> {
        let _ = scratch;
        self.build(weights)
    }

    /// Closed-form abstract cost of serving `profile` on this backend.
    fn model_cost(&self, profile: &WorkloadProfile) -> BackendCost;

    /// Incremental-publish fast path: build the next snapshot's sampler
    /// from the previous one plus the coalesced batch (`scale` fold first,
    /// then absolute `overrides`), skipping the `O(n)` rebuild.
    ///
    /// Returns `None` when the backend has no patch path (or `prev` is not
    /// a sampler this backend built — e.g. right after a backend switch);
    /// the engine then falls back to
    /// [`build_pooled`](FrozenBackend::build_pooled). A `Some(Err(…))`
    /// carries the same validation failures a full rebuild over the folded
    /// weights would raise (a scale fold overflowing a weight to `∞`), so
    /// the two paths are interchangeable error-for-error.
    ///
    /// **Contract:** the patched sampler's weights must equal, bit for
    /// bit, those of a full rebuild over the folded vector.
    fn try_patch(
        &self,
        prev: &dyn FrozenSampler,
        overrides: &[(usize, f64)],
        scale: f64,
    ) -> Option<Result<Box<dyn FrozenSampler>, SelectionError>> {
        let _ = (prev, overrides, scale);
        None
    }

    /// Abstract op cost of patching `dirty` categories (with a whole-vector
    /// scale fold when `scaled`) instead of rebuilding; `None` when the
    /// backend cannot patch. Scaled into nanoseconds by the engine's
    /// calibrated patch constants, then compared against
    /// [`model_cost`](FrozenBackend::model_cost)'s build price — the
    /// patch-versus-rebuild decision the engine makes per publish.
    fn model_patch_cost(
        &self,
        profile: &WorkloadProfile,
        dirty: usize,
        scaled: bool,
    ) -> Option<f64> {
        let _ = (profile, dirty, scaled);
        None
    }
}

/// Fenwick tree: `O(log n)` draws, cheapest build, skew-immune.
#[derive(Debug, Clone, Copy, Default)]
pub struct FenwickBackend;

impl FrozenBackend for FenwickBackend {
    fn name(&self) -> &'static str {
        "fenwick"
    }

    fn build(&self, weights: &[f64]) -> Result<Box<dyn FrozenSampler>, SelectionError> {
        Ok(Box::new(FenwickSampler::from_weights(weights.to_vec())?))
    }

    fn model_cost(&self, profile: &WorkloadProfile) -> BackendCost {
        let n = profile.categories.max(1) as f64;
        BackendCost {
            build_ops: n,
            per_draw_ops: n.log2().max(1.0),
        }
    }

    fn try_patch(
        &self,
        prev: &dyn FrozenSampler,
        overrides: &[(usize, f64)],
        scale: f64,
    ) -> Option<Result<Box<dyn FrozenSampler>, SelectionError>> {
        let prev = prev.as_any().downcast_ref::<FenwickSampler>()?;
        Some(
            FenwickSampler::patched_from(prev, overrides, scale)
                .map(|sampler| Box::new(sampler) as Box<dyn FrozenSampler>),
        )
    }

    fn model_patch_cost(
        &self,
        profile: &WorkloadProfile,
        dirty: usize,
        scaled: bool,
    ) -> Option<f64> {
        let n = profile.categories.max(1) as f64;
        let log_n = n.log2().max(1.0);
        // Two memcpy passes (weights + tree) priced at a quarter of a build
        // op per element — straight-line copies against the rebuild's
        // branchy validate/accumulate passes — plus one multiply pass when
        // a scale folds, plus O(log n) tree nodes per dirty category.
        Some(0.5 * n + if scaled { 0.25 * n } else { 0.0 } + dirty as f64 * log_n)
    }
}

/// A Vose alias table frozen at snapshot-build time, so readers never pay
/// the lazy first-draw rebuild that `RebuildingAliasSampler` would do under
/// its internal mutex.
struct FrozenAlias {
    weights: Vec<f64>,
    total: f64,
    /// `None` when every weight is zero (the table cannot be built; draws
    /// fail with [`SelectionError::AllZeroFitness`]).
    table: Option<AliasSampler>,
}

impl FrozenAlias {
    /// Build the table straight from the engine-validated weights — no
    /// intermediate `Fitness` copy — reusing the caller's Vose worklists.
    /// Re-validates each value (a publish-time evaporation fold can push a
    /// weight to `∞`, which must fail the build, not poison the table).
    fn build_with(weights: Vec<f64>, scratch: &mut AliasScratch) -> Result<Self, SelectionError> {
        for (index, &value) in weights.iter().enumerate() {
            if !value.is_finite() || value < 0.0 {
                return Err(SelectionError::InvalidFitness { index, value });
            }
        }
        let total: f64 = weights.iter().sum();
        let table = if total > 0.0 {
            Some(AliasSampler::from_validated_weights(
                &weights, total, scratch,
            )?)
        } else {
            None
        };
        Ok(Self {
            weights,
            total,
            table,
        })
    }
}

impl FrozenSampler for FrozenAlias {
    fn len(&self) -> usize {
        self.weights.len()
    }

    fn weight(&self, index: usize) -> f64 {
        self.weights[index]
    }

    fn total_weight(&self) -> f64 {
        self.total
    }

    fn sample(&self, rng: &mut dyn RandomSource) -> Result<usize, SelectionError> {
        match &self.table {
            Some(table) => Ok(table.sample(rng)),
            None => Err(SelectionError::AllZeroFitness),
        }
    }

    fn sample_into(
        &self,
        rng: &mut dyn RandomSource,
        out: &mut [usize],
    ) -> Result<(), SelectionError> {
        match &self.table {
            Some(table) => {
                table.sample_into(rng, out);
                Ok(())
            }
            None => Err(SelectionError::AllZeroFitness),
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Vose alias table: `O(1)` draws after the priciest build.
#[derive(Debug, Clone, Copy, Default)]
pub struct AliasBackend;

impl FrozenBackend for AliasBackend {
    fn name(&self) -> &'static str {
        "alias"
    }

    fn build(&self, weights: &[f64]) -> Result<Box<dyn FrozenSampler>, SelectionError> {
        let mut scratch = AliasScratch::default();
        Ok(Box::new(FrozenAlias::build_with(
            weights.to_vec(),
            &mut scratch,
        )?))
    }

    fn build_pooled(
        &self,
        weights: &[f64],
        scratch: &mut BuildScratch,
    ) -> Result<Box<dyn FrozenSampler>, SelectionError> {
        Ok(Box::new(FrozenAlias::build_with(
            weights.to_vec(),
            &mut scratch.alias,
        )?))
    }

    fn model_cost(&self, profile: &WorkloadProfile) -> BackendCost {
        // Vose's build makes three passes (split, two worklists); each draw
        // is one table lookup plus one comparison — call it 2 ops.
        BackendCost {
            build_ops: 3.0 * profile.categories.max(1) as f64,
            per_draw_ops: 2.0,
        }
    }
}

/// Stochastic acceptance: `O(1)` expected draws on balanced weights,
/// degrading with skew.
#[derive(Debug, Clone, Copy, Default)]
pub struct StochasticAcceptanceBackend;

impl FrozenBackend for StochasticAcceptanceBackend {
    fn name(&self) -> &'static str {
        "stochastic-acceptance"
    }

    fn build(&self, weights: &[f64]) -> Result<Box<dyn FrozenSampler>, SelectionError> {
        Ok(Box::new(StochasticAcceptanceSampler::from_weights(
            weights.to_vec(),
        )?))
    }

    fn model_cost(&self, profile: &WorkloadProfile) -> BackendCost {
        let n = profile.categories.max(1) as f64;
        // Each rejection round costs ~2 RNG calls; past the degenerate
        // threshold the sampler linear-scans at O(n) per draw.
        let per_draw_ops = if profile.skew > SA_DEGENERATE_ROUNDS {
            n
        } else {
            2.0 * profile.skew.max(1.0)
        };
        BackendCost {
            build_ops: n,
            per_draw_ops,
        }
    }

    fn try_patch(
        &self,
        prev: &dyn FrozenSampler,
        overrides: &[(usize, f64)],
        scale: f64,
    ) -> Option<Result<Box<dyn FrozenSampler>, SelectionError>> {
        let prev = prev
            .as_any()
            .downcast_ref::<StochasticAcceptanceSampler>()?;
        Some(
            StochasticAcceptanceSampler::patched_from(prev, overrides, scale)
                .map(|sampler| Box::new(sampler) as Box<dyn FrozenSampler>),
        )
    }

    fn model_patch_cost(
        &self,
        profile: &WorkloadProfile,
        dirty: usize,
        scaled: bool,
    ) -> Option<f64> {
        let n = profile.categories.max(1) as f64;
        // One memcpy pass, one aggregate-rederiving multiply pass when a
        // scale folds, O(1) aggregate maintenance per dirty category.
        Some(0.25 * n + if scaled { 0.5 * n } else { 0.0 } + 2.0 * dirty as f64)
    }
}

/// An ordered, name-keyed collection of [`FrozenBackend`] trait objects.
///
/// The order matters twice: cost-model ties break toward earlier entries
/// (the standard registry lists the Fenwick tree first — the most
/// predictable engine), and telemetry/calibration vectors are indexed in
/// registry order.
#[derive(Clone)]
pub struct BackendRegistry {
    entries: Vec<Arc<dyn FrozenBackend>>,
}

impl BackendRegistry {
    /// An empty registry (register at least one backend before handing it to
    /// an engine).
    pub fn empty() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// The standard three backends: `fenwick`, `alias`,
    /// `stochastic-acceptance`.
    pub fn standard() -> Self {
        let mut registry = Self::empty();
        registry.register(Arc::new(FenwickBackend));
        registry.register(Arc::new(AliasBackend));
        registry.register(Arc::new(StochasticAcceptanceBackend));
        registry
    }

    /// Add (or replace, by name) a backend.
    pub fn register(&mut self, backend: Arc<dyn FrozenBackend>) {
        match self.index_of(backend.name()) {
            Some(existing) => self.entries[existing] = backend,
            None => self.entries.push(backend),
        }
    }

    /// The registered backends, in registration order.
    pub fn entries(&self) -> &[Arc<dyn FrozenBackend>] {
        &self.entries
    }

    /// Number of registered backends.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry has no backends.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The registry position of a backend name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|b| b.name() == name)
    }

    /// Look a backend up by name.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn FrozenBackend>> {
        self.index_of(name).map(|i| &self.entries[i])
    }

    /// Every registered backend name, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|b| b.name()).collect()
    }
}

impl std::fmt::Debug for BackendRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendRegistry")
            .field("backends", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrb_rng::{MersenneTwister64, SeedableSource};

    #[test]
    fn standard_registry_is_ordered_and_name_keyed() {
        let registry = BackendRegistry::standard();
        assert_eq!(
            registry.names(),
            vec!["fenwick", "alias", "stochastic-acceptance"]
        );
        assert_eq!(registry.len(), 3);
        assert!(!registry.is_empty());
        assert_eq!(registry.index_of("alias"), Some(1));
        assert!(registry.get("no-such-backend").is_none());
        assert!(format!("{registry:?}").contains("fenwick"));
    }

    #[test]
    fn registering_an_existing_name_replaces_in_place() {
        let mut registry = BackendRegistry::standard();
        registry.register(Arc::new(AliasBackend));
        assert_eq!(registry.len(), 3);
        assert_eq!(registry.index_of("alias"), Some(1));
    }

    #[test]
    fn every_standard_backend_freezes_the_same_distribution() {
        let weights = vec![0.0, 1.0, 2.0, 3.0, 4.0];
        for backend in BackendRegistry::standard().entries() {
            let sampler = backend.build(&weights).unwrap();
            assert_eq!(sampler.len(), 5);
            assert!((sampler.total_weight() - 10.0).abs() < 1e-12);
            assert_eq!(sampler.weight(3), 3.0);
            let mut rng = MersenneTwister64::seed_from_u64(5);
            for _ in 0..2_000 {
                let i = sampler.sample(&mut rng).unwrap();
                assert_ne!(i, 0, "{} drew a zero-weight index", backend.name());
            }
        }
    }

    #[test]
    fn all_zero_weights_build_but_refuse_to_draw() {
        for backend in BackendRegistry::standard().entries() {
            let sampler = backend.build(&[0.0, 0.0]).unwrap();
            assert_eq!(sampler.total_weight(), 0.0);
            let mut rng = MersenneTwister64::seed_from_u64(2);
            assert_eq!(
                sampler.sample(&mut rng),
                Err(SelectionError::AllZeroFitness),
                "{}",
                backend.name()
            );
            let mut buffer = [0usize; 4];
            assert!(sampler.sample_into(&mut rng, &mut buffer).is_err());
        }
    }

    #[test]
    fn model_costs_have_the_documented_shape() {
        let profile = WorkloadProfile {
            categories: 4096,
            draws_per_publish: 1000.0,
            skew: 4.0,
        };
        let fenwick = FenwickBackend.model_cost(&profile);
        assert_eq!(fenwick.build_ops, 4096.0);
        assert_eq!(fenwick.per_draw_ops, 12.0);
        let alias = AliasBackend.model_cost(&profile);
        assert_eq!(alias.build_ops, 3.0 * 4096.0);
        assert_eq!(alias.per_draw_ops, 2.0);
        let sa = StochasticAcceptanceBackend.model_cost(&profile);
        assert_eq!(sa.per_draw_ops, 8.0);
        let degenerate = WorkloadProfile {
            skew: 100_000.0,
            ..profile
        };
        assert_eq!(
            StochasticAcceptanceBackend
                .model_cost(&degenerate)
                .per_draw_ops,
            4096.0
        );
    }
}
