//! A hand-rolled lock-free atomic `Arc` swap with generation-checked
//! reclamation — the cell under [`SelectionEngine`]'s current snapshot.
//!
//! [`SelectionEngine`]: crate::SelectionEngine
//!
//! ## Why not `RwLock<Arc<T>>`
//!
//! The engine's read side previously cloned the current `Arc<Snapshot>`
//! under a briefly-held `RwLock` read guard. Correct, but every reader
//! acquisition performed two contended RMWs on the lock word *and* the lock
//! made readers block behind a parked writer — the `engine_quick` scaling
//! gate showed readers topping out well below linear. crates.io is not
//! available here (no `arc-swap`), so this module implements the swap by
//! hand on `AtomicPtr`.
//!
//! ## Protocol
//!
//! The cell stores `Arc::into_raw` of the current value in an [`AtomicPtr`]
//! next to a monotone **generation** counter that is bumped *after* every
//! swap. The unsafe step a reader must perform is
//! `Arc::increment_strong_count(p)` on a pointer it loaded — which is only
//! sound if `p` has not been dropped in between. Reclamation is deferred to
//! make that window safe:
//!
//! * **Readers** ([`HotSwap::load`]) claim one of [`SLOTS`] padded hazard
//!   slots by CAS-ing the observed generation `g` into it, then re-read the
//!   generation until it is stable, then load the pointer and increment its
//!   refcount, then vacate the slot. All slot/generation/pointer accesses
//!   on this path are `SeqCst`.
//! * **Writers** ([`HotSwap::store`]) swap the pointer, bump the
//!   generation (`fetch_add` returning the generation `g_r` during which
//!   the old pointer was last current), push the reconstructed old `Arc`
//!   onto a mutex-guarded retired list tagged with `g_r`, and then reclaim
//!   every retired entry whose tag is below the minimum generation
//!   currently published in any slot.
//!
//! **Safety argument.** Suppose reader R claimed slot value `g` (and
//! re-confirmed the generation is still `g` after the claim), then loaded
//! pointer `P`. The writer W that retires `P` does so by a swap that must
//! come after R's pointer load in the `SeqCst` total order (otherwise R
//! would have loaded W's replacement); W's generation `fetch_add` follows
//! its swap, hence follows R's generation re-check, so it returns
//! `g_r ≥ g`. Reclaiming `P` requires every slot to be strictly above
//! `g_r ≥ g` — but R's slot still holds `g` and is vacated only *after*
//! the refcount increment. So `P` cannot be freed in R's window. The
//! claim/re-check is the classic store-buffering pairing (R: store slot,
//! load generation; W: store generation, load slots): under `SeqCst` at
//! least one side observes the other, so a reader that raced a swap either
//! retries with the new generation or is visible to the writer's scan.
//!
//! A reader that finds all slots busy falls back to incrementing under the
//! retired-list mutex; frees also happen under that mutex and the pointer
//! is re-loaded after acquiring it, so the fallback is trivially sound (and
//! only reachable under > [`SLOTS`] *simultaneous* acquisitions — steady
//! state readers hit the engine's thread-local snapshot cache and acquire
//! rarely).
//!
//! The module is the one place in `lrb-engine` allowed to use `unsafe`
//! (`Arc::into_raw` / `from_raw` / `increment_strong_count`); everything
//! else in the crate stays `#![deny(unsafe_code)]`-clean.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Pads (and aligns) a value to a cache line, so two hazard slots — or two
/// shards of a counter — can never produce false sharing.
#[repr(align(64))]
#[derive(Debug, Default)]
pub(crate) struct CachePadded<T>(pub T);

/// Number of hazard slots. Bounds the number of *simultaneous* lock-free
/// pointer acquisitions, not the number of reader threads: acquisitions
/// outside the slots take the (correct, slower) mutex fallback.
pub(crate) const SLOTS: usize = 64;

/// Slot value meaning "no acquisition in flight".
const VACANT: u64 = u64::MAX;

/// A lock-free swappable `Arc<T>` cell. See the module docs for the
/// protocol and its safety argument.
pub(crate) struct HotSwap<T> {
    /// `Arc::into_raw` of the current value.
    ptr: AtomicPtr<T>,
    /// Generation of the current value; bumped after every swap. Readers
    /// use it both as the hazard tag and as a cheap "has anything changed"
    /// probe for snapshot caching (the counter mutates only on publish, so
    /// polling it does not bounce the line the way a lock word would).
    generation: AtomicU64,
    /// Hazard slots: the generation each in-flight acquisition observed.
    slots: Box<[CachePadded<AtomicU64>]>,
    /// Values swapped out but possibly still being acquired, tagged with
    /// the generation during which each was last current. The `Arc` is the
    /// list's owning reference, dropped on reclaim.
    retired: Mutex<Vec<(u64, Arc<T>)>>,
}

impl<T> HotSwap<T> {
    /// A cell currently holding `value`, at generation 0.
    pub(crate) fn new(value: Arc<T>) -> Self {
        let slots: Vec<CachePadded<AtomicU64>> = (0..SLOTS)
            .map(|_| CachePadded(AtomicU64::new(VACANT)))
            .collect();
        Self {
            ptr: AtomicPtr::new(Arc::into_raw(value) as *mut T),
            generation: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// The current generation (0 until the first [`store`](HotSwap::store);
    /// strictly monotone). A relaxed read — callers use it to decide
    /// whether a cached `Arc` is still current.
    #[inline]
    pub(crate) fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Acquire the current value. Lock-free whenever a hazard slot is
    /// available; never blocks behind a writer.
    pub(crate) fn load(&self) -> Arc<T> {
        // Claim any vacant hazard slot with the generation we observe.
        for slot in self.slots.iter() {
            let mut g = self.generation.load(Ordering::SeqCst);
            if slot
                .0
                .compare_exchange(VACANT, g, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            // Re-confirm: our published tag must match the generation, or a
            // concurrent writer may already have scanned past us. Repeat
            // until stable (bounded by writer progress).
            loop {
                let now = self.generation.load(Ordering::SeqCst);
                if now == g {
                    break;
                }
                g = now;
                slot.0.store(g, Ordering::SeqCst);
            }
            let p = self.ptr.load(Ordering::SeqCst);
            // SAFETY: `p` was stored by `Arc::into_raw` and, per the module
            // safety argument, cannot have been reclaimed while our slot
            // publishes a generation at or below its retirement tag.
            let value = unsafe {
                Arc::increment_strong_count(p);
                Arc::from_raw(p)
            };
            slot.0.store(VACANT, Ordering::Release);
            return value;
        }
        // All slots busy: acquire under the reclaim mutex instead. Frees
        // only happen while this mutex is held, and the pointer is loaded
        // after we hold it, so the increment below cannot race a drop.
        let guard = self.retired.lock().expect("retired list poisoned");
        let p = self.ptr.load(Ordering::SeqCst);
        // SAFETY: see the comment above — reclamation is mutually excluded
        // for the lifetime of `guard`.
        let value = unsafe {
            Arc::increment_strong_count(p);
            Arc::from_raw(p)
        };
        drop(guard);
        value
    }

    /// Publish a new value, retiring the old one. Returns the generation of
    /// the **new** value. Safe under concurrent stores (each swapped-out
    /// pointer is retired exactly once, tagged at or above the generation
    /// any in-flight reader could have used to acquire it).
    pub(crate) fn store(&self, value: Arc<T>) -> u64 {
        let new_raw = Arc::into_raw(value) as *mut T;
        let old_raw = self.ptr.swap(new_raw, Ordering::SeqCst);
        let retired_gen = self.generation.fetch_add(1, Ordering::SeqCst);
        // SAFETY: `old_raw` came from `Arc::into_raw` (at construction or a
        // previous store) and the swap above removed the cell's claim on
        // it; reconstructing transfers that single ownership to the
        // retired list.
        let old = unsafe { Arc::from_raw(old_raw) };
        let mut retired = self.retired.lock().expect("retired list poisoned");
        retired.push((retired_gen, old));
        self.reclaim(&mut retired);
        retired_gen + 1
    }

    /// Drop every retired value no in-flight acquisition can still reach.
    fn reclaim(&self, retired: &mut Vec<(u64, Arc<T>)>) {
        let min_active = self
            .slots
            .iter()
            .map(|slot| slot.0.load(Ordering::SeqCst))
            .min()
            .unwrap_or(VACANT);
        // An entry retired at generation g is reachable only by slots at or
        // below g; it is safe exactly when every active slot is above it.
        retired.retain(|&(generation, _)| generation >= min_active);
    }

    /// Number of retired-but-not-yet-reclaimed values (telemetry/tests).
    #[cfg(test)]
    fn retired_len(&self) -> usize {
        self.retired.lock().expect("retired list poisoned").len()
    }
}

impl<T> Drop for HotSwap<T> {
    fn drop(&mut self) {
        // SAFETY: exclusive access (`&mut self`); the cell holds exactly
        // one reference to the current pointer, reconstructed and dropped
        // here. Retired entries drop with the Vec.
        unsafe {
            drop(Arc::from_raw(self.ptr.load(Ordering::SeqCst)));
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for HotSwap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HotSwap")
            .field("generation", &self.generation())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Counts live instances so the tests can prove nothing leaks and
    /// nothing double-frees.
    struct Tracked {
        id: u64,
        live: &'static AtomicUsize,
    }

    impl Tracked {
        fn new(id: u64, live: &'static AtomicUsize) -> Self {
            live.fetch_add(1, Ordering::SeqCst);
            Self { id, live }
        }
    }

    impl Drop for Tracked {
        fn drop(&mut self) {
            self.live.fetch_sub(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn load_returns_the_current_value_and_store_advances_generations() {
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        {
            let cell = HotSwap::new(Arc::new(Tracked::new(0, &LIVE)));
            assert_eq!(cell.generation(), 0);
            assert_eq!(cell.load().id, 0);
            let g1 = cell.store(Arc::new(Tracked::new(1, &LIVE)));
            assert_eq!(g1, 1);
            assert_eq!(cell.generation(), 1);
            assert_eq!(cell.load().id, 1);
            // No reader holds the old value: it must already be reclaimed.
            assert_eq!(cell.retired_len(), 0);
            assert_eq!(LIVE.load(Ordering::SeqCst), 1);
        }
        assert_eq!(LIVE.load(Ordering::SeqCst), 0, "drop leaked a value");
    }

    #[test]
    fn held_arcs_survive_any_number_of_stores() {
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        let cell = HotSwap::new(Arc::new(Tracked::new(0, &LIVE)));
        let held = cell.load();
        for id in 1..=100 {
            cell.store(Arc::new(Tracked::new(id, &LIVE)));
        }
        assert_eq!(held.id, 0, "held value mutated or freed");
        assert_eq!(cell.load().id, 100);
        drop(held);
        // The cell only tracks the current value plus retirees; the held
        // Arc's refcount kept value 0 alive independently of the list.
        assert!(LIVE.load(Ordering::SeqCst) <= 2);
    }

    #[test]
    fn concurrent_readers_and_writers_never_tear_or_leak() {
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        {
            let cell = HotSwap::new(Arc::new(Tracked::new(0, &LIVE)));
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    let cell = &cell;
                    scope.spawn(move || {
                        let mut last_seen = 0u64;
                        for _ in 0..2_000 {
                            let value = cell.load();
                            // Values only move forward.
                            assert!(value.id >= last_seen, "went backwards");
                            last_seen = value.id;
                        }
                    });
                }
                let cell = &cell;
                scope.spawn(move || {
                    for id in 1..=500 {
                        cell.store(Arc::new(Tracked::new(id, &LIVE)));
                    }
                });
            });
            assert_eq!(cell.load().id, 500);
        }
        assert_eq!(LIVE.load(Ordering::SeqCst), 0, "leak or double-free");
    }

    #[test]
    fn generation_is_monotone_under_concurrent_stores() {
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        let cell = HotSwap::new(Arc::new(Tracked::new(0, &LIVE)));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cell = &cell;
                scope.spawn(move || {
                    for i in 0..200 {
                        cell.store(Arc::new(Tracked::new(t * 1_000 + i, &LIVE)));
                    }
                });
            }
        });
        assert_eq!(cell.generation(), 800);
    }
}
