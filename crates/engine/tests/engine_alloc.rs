//! Proof that the steady-state reader path performs **no heap
//! allocation** — with telemetry off *and* with reader timing at its most
//! aggressive setting (`reader_timing_every = 1`, every acquisition
//! timed). A counting global allocator tallies every `alloc` call; after a
//! short warm-up (the thread-local snapshot cache and the engine's
//! preallocated histograms absorb all setup cost), thousands of
//! buffer-filling reads must leave the tally untouched.
//!
//! Kept to a single `#[test]` so no sibling test can allocate on another
//! thread mid-measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use lrb_engine::{EngineConfig, SelectionEngine};
use lrb_rng::Philox4x32;

/// System allocator plus a relaxed allocation counter.
struct CountingAllocator {
    allocations: AtomicU64,
}

impl CountingAllocator {
    fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }
}

// SAFETY: defers entirely to `System`; the counter is a relaxed side tally.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator {
    allocations: AtomicU64::new(0),
};

#[test]
fn steady_state_reader_is_allocation_free_with_and_without_timing() {
    for reader_timing_every in [0u32, 1] {
        let engine = SelectionEngine::new(
            vec![1.0; 1024],
            EngineConfig {
                reader_timing_every,
                ..EngineConfig::default()
            },
        )
        .expect("uniform weights are valid");
        let mut rng = Philox4x32::for_substream(7, 1);
        let mut buffer = vec![0usize; 64];

        // Warm-up: populate this thread's snapshot cache and any lazy TLS.
        for _ in 0..8 {
            engine
                .read(|snapshot| snapshot.sample_into(&mut rng, &mut buffer))
                .expect("uniform weights sample fine");
        }

        // The allocation counter is global, so a harness thread can dirty a
        // window with unrelated bookkeeping; a reader path that allocates
        // dirties *every* window (at `every = 1` each of the 2 000 reads is
        // timed), so requiring one clean window out of three keeps full
        // sensitivity without flaking on background noise.
        let cleanest = (0..3)
            .map(|_| {
                let before = ALLOC.allocations();
                for _ in 0..2_000 {
                    engine
                        .read(|snapshot| snapshot.sample_into(&mut rng, &mut buffer))
                        .expect("uniform weights sample fine");
                }
                ALLOC.allocations() - before
            })
            .min()
            .expect("three windows ran");
        assert_eq!(
            cleanest, 0,
            "steady-state reader allocated {cleanest} times in its cleanest \
             window (reader_timing_every = {reader_timing_every})"
        );
    }
}
