//! Helper crate that anchors the repository-root `tests/` (cross-crate
//! integration tests) and `examples/` (runnable demonstrations) to the cargo
//! workspace. It re-exports the workspace crates so tests and examples can
//! use one import root if they wish.

#![forbid(unsafe_code)]

pub use lrb_aco as aco;
pub use lrb_bench as bench;
pub use lrb_core as core;
pub use lrb_pram as pram;
pub use lrb_rng as rng;
pub use lrb_stats as stats;

/// The deterministic publish storm shared by the `durable_storm` crash
/// child and the recovery test's oracle.
///
/// Both sides must generate **bit-identical** workloads from the same
/// `(seed, k)` — the kill-and-restore test's whole argument rests on the
/// oracle replaying exactly the publishes the killed child performed, so
/// the generator lives here, in one place, instead of being duplicated in
/// the bin and the test.
pub mod storm {
    use lrb_core::SelectionError;
    use lrb_engine::SelectionEngine;
    use lrb_rng::{RandomSource, SplitMix64};

    /// Every `SCALE_EVERY`-th publish folds a uniform scale in alongside
    /// its overrides, so recovery is exercised against mixed records.
    pub const SCALE_EVERY: u64 = 7;

    /// The storm's initial weight vector: `1.0..=categories`.
    pub fn initial_weights(categories: usize) -> Vec<f64> {
        (1..=categories).map(|i| i as f64).collect()
    }

    /// Publish batch `k` (1-based) of the storm seeded by `seed`: an
    /// optional uniform scale plus a few category overrides. Pure
    /// function of `(seed, k, categories)`.
    pub fn publish_batch(seed: u64, k: u64, categories: usize) -> (Option<f64>, Vec<(usize, f64)>) {
        let mut rng = SplitMix64::new(seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let scale = k
            .is_multiple_of(SCALE_EVERY)
            .then(|| 0.5 + (rng.next_u64() % 1000) as f64 / 1000.0);
        let count = 1 + (rng.next_u64() % 8) as usize;
        let overrides = (0..count)
            .map(|_| {
                let index = (rng.next_u64() as usize) % categories;
                let weight = 0.001 + (rng.next_u64() % 10_000) as f64 / 100.0;
                (index, weight)
            })
            .collect();
        (scale, overrides)
    }

    /// Enqueue batch `k` on `engine` (scale first, matching the publish
    /// fold order) and publish it. Returns the published version.
    pub fn apply_publish(
        engine: &SelectionEngine,
        seed: u64,
        k: u64,
        categories: usize,
    ) -> Result<u64, SelectionError> {
        let (scale, overrides) = publish_batch(seed, k, categories);
        if let Some(factor) = scale {
            engine.scale_all(factor)?;
        }
        engine.enqueue_many(&overrides)?;
        engine.publish()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn re_exports_are_wired() {
        let fitness = crate::core::Fitness::table1();
        assert_eq!(fitness.len(), 10);
        let graph = crate::aco::Graph::petersen();
        assert_eq!(graph.len(), 10);
    }
}
