//! Helper crate that anchors the repository-root `tests/` (cross-crate
//! integration tests) and `examples/` (runnable demonstrations) to the cargo
//! workspace. It re-exports the workspace crates so tests and examples can
//! use one import root if they wish.

#![forbid(unsafe_code)]

pub use lrb_aco as aco;
pub use lrb_bench as bench;
pub use lrb_core as core;
pub use lrb_pram as pram;
pub use lrb_rng as rng;
pub use lrb_stats as stats;

#[cfg(test)]
mod tests {
    #[test]
    fn re_exports_are_wired() {
        let fitness = crate::core::Fitness::table1();
        assert_eq!(fitness.len(), 10);
        let graph = crate::aco::Graph::petersen();
        assert_eq!(graph.len(), 10);
    }
}
