//! Crash-storm child for the kill-and-restore recovery test
//! (`tests/durability_recovery.rs`).
//!
//! Runs the deterministic publish storm from [`lrb_integration::storm`]
//! against a WAL-durable engine rooted at the given directory, printing
//! `publishing` once the engine is up (the parent waits for that line
//! before pulling the trigger) and `done <version>` if it survives the
//! whole storm. The parent SIGKILLs it mid-storm, reopens an engine over
//! the same directory, and checks the recovered state against an oracle
//! that replays the same storm prefix.
//!
//! Usage: `durable_storm <dir> <categories> <publishes> <seed> <checkpoint_every>`

use std::io::Write;

use lrb_engine::{
    BackendChoice, Durability, EngineConfig, FsyncPolicy, PatchPolicy, SelectionEngine, WalOptions,
};
use lrb_integration::storm;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 6 {
        eprintln!("usage: durable_storm <dir> <categories> <publishes> <seed> <checkpoint_every>");
        std::process::exit(2);
    }
    let dir = &args[1];
    let categories: usize = args[2].parse().expect("categories");
    let publishes: u64 = args[3].parse().expect("publishes");
    let seed: u64 = args[4].parse().expect("seed");
    let checkpoint_every: u64 = args[5].parse().expect("checkpoint_every");

    let config = EngineConfig {
        backend: BackendChoice::Fixed("fenwick"),
        patch: PatchPolicy::Never,
        calibrate: false,
        durability: Durability::Wal(WalOptions {
            dir: dir.into(),
            // SIGKILL does not lose page-cache writes, so the storm can
            // skip fsync and still be recoverable — and run fast enough
            // that the parent's kill lands mid-storm, not after it.
            fsync: FsyncPolicy::Off,
            checkpoint_every,
        }),
        ..EngineConfig::default()
    };
    let engine = SelectionEngine::new(storm::initial_weights(categories), config)
        .expect("storm engine opens");

    // Signal readiness only once the WAL is live; the parent's kill timer
    // starts here.
    println!("publishing");
    std::io::stdout().flush().expect("stdout flush");

    for k in 1..=publishes {
        storm::apply_publish(&engine, seed, k, categories).expect("storm publish");
    }
    println!("done {}", engine.version());
}
