//! Log2-bucketed latency histograms with mergeable per-thread recorders.
//!
//! ## Bucket layout
//!
//! Values (nanoseconds, but any `u64` works) map to buckets in an
//! HDR-style two-level scheme: an exact **identity region** for values
//! below 32, then 16 linear sub-buckets per power-of-two octave. A bucket's
//! relative width is at most `1/16` (6.25 %), so any quantile extracted
//! from bucket counts is within 6.25 % of the true order statistic — the
//! *bucket error bound* the property tests pin. [`BUCKETS`] = 976 covers
//! the full `u64` range in 7.6 KiB of `u64` cells.
//!
//! ## Atomic histograms versus recorders
//!
//! [`Histogram`] holds atomic buckets: any number of threads record
//! concurrently (one relaxed `fetch_add` each), and
//! [`snapshot`](Histogram::snapshot) copies the cells once into an immutable
//! [`HistogramSnapshot`] for quantile extraction — the consistent
//! point-in-time read the exporters use.
//!
//! [`Recorder`] is the per-thread variant: plain cells, no atomics at all,
//! for measurement loops that want recording to cost a handful of ALU ops.
//! Recorders merge — into each other or into a shared [`Histogram`] — by
//! bucket-wise addition, which is **exact**: merging recorders that saw
//! disjoint subsequences produces the same buckets (hence the same
//! quantiles) as recording the concatenated sequence into one histogram.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Sub-bucket resolution: 2^4 = 16 linear sub-buckets per octave.
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave.
const SUB: u64 = 1 << SUB_BITS;
/// Values below this are their own bucket (exact).
const IDENTITY: u64 = 2 * SUB;
/// First exponent handled by the two-level mapping.
const FIRST_EXP: u32 = SUB_BITS + 1;

/// Total bucket count: the identity region plus 16 sub-buckets for each of
/// the exponents `5..=63`.
pub const BUCKETS: usize = IDENTITY as usize + (64 - FIRST_EXP as usize) * SUB as usize;

/// The bucket index of a value.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    if value < IDENTITY {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros();
    let sub = (value >> (exp - SUB_BITS)) & (SUB - 1);
    IDENTITY as usize + ((exp - FIRST_EXP) as usize) * SUB as usize + sub as usize
}

/// The half-open value range `[lower, upper)` of a bucket index. The upper
/// bound of the last bucket saturates at `u64::MAX`.
pub fn bounds_of(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index out of range");
    if (index as u64) < IDENTITY {
        return (index as u64, index as u64 + 1);
    }
    let level = index - IDENTITY as usize;
    let exp = FIRST_EXP + (level as u32) / SUB as u32;
    let sub = (level as u64) % SUB;
    let width = 1u64 << (exp - SUB_BITS);
    let lower = (SUB + sub) << (exp - SUB_BITS);
    (lower, lower.saturating_add(width))
}

/// The representative value reported for a bucket: the value itself in the
/// identity region, the bucket midpoint elsewhere.
fn representative(index: usize) -> u64 {
    let (lower, upper) = bounds_of(index);
    if (index as u64) < IDENTITY {
        lower
    } else {
        lower + (upper - lower) / 2
    }
}

/// A lock-free histogram: atomic buckets, concurrent recording, consistent
/// snapshots.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    /// Sum of recorded values (relaxed; saturation-free in practice — 2^64
    /// ns is five centuries).
    sum: AtomicU64,
    /// Minimum recorded value (`u64::MAX` while empty).
    min: AtomicU64,
    /// Maximum recorded value (0 while empty).
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram (one heap allocation for the bucket array).
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            buckets: buckets.into_boxed_slice(),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value: a bucket `fetch_add` plus sum/min/max maintenance,
    /// all relaxed, no allocation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record the elapsed nanoseconds since `started` — the span-timer
    /// pattern for paths that want explicit control:
    ///
    /// ```
    /// use std::time::Instant;
    /// let hist = lrb_obs::Histogram::new();
    /// let started = Instant::now();
    /// // ... the timed section ...
    /// hist.record_span(started);
    /// assert_eq!(hist.snapshot().count, 1);
    /// ```
    #[inline]
    pub fn record_span(&self, started: Instant) {
        self.record(started.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Time `f` and record its span in nanoseconds.
    #[inline]
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let started = Instant::now();
        let result = f();
        self.record_span(started);
        result
    }

    /// Fold a per-thread [`Recorder`] into this histogram (bucket-wise
    /// adds; exact — see the module docs).
    pub fn merge_recorder(&self, recorder: &Recorder) {
        for (index, &count) in recorder.counts.iter().enumerate() {
            if count > 0 {
                self.buckets[index].fetch_add(count, Ordering::Relaxed);
            }
        }
        self.sum.fetch_add(recorder.sum, Ordering::Relaxed);
        self.min.fetch_min(recorder.min, Ordering::Relaxed);
        self.max.fetch_max(recorder.max, Ordering::Relaxed);
    }

    /// Copy the cells once into an immutable snapshot — the consistent
    /// point-in-time view quantiles and exporters work from. (Each bucket
    /// is read exactly once; recordings that race the copy land wholly in
    /// or wholly after it.)
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|cell| cell.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot::assemble(
            counts,
            self.sum.load(Ordering::Relaxed),
            self.min.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }
}

/// A per-thread, non-atomic histogram recorder (see the module docs).
#[derive(Debug, Clone)]
pub struct Recorder {
    counts: Box<[u64]>,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self {
            counts: vec![0u64; BUCKETS].into_boxed_slice(),
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value (a handful of ALU ops, no atomics, no allocation).
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_of(value)] += 1;
        self.sum = self.sum.wrapping_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Record the elapsed nanoseconds since `started`.
    #[inline]
    pub fn record_span(&mut self, started: Instant) {
        self.record(started.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Fold another recorder into this one (bucket-wise adds; exact).
    pub fn merge(&mut self, other: &Recorder) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// An immutable snapshot of this recorder (same type the atomic
    /// histogram produces, so harness code can report either identically).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot::assemble(self.counts.to_vec(), self.sum, self.min, self.max)
    }
}

/// An immutable copy of a histogram's cells: the quantile-extraction and
/// export surface.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    fn assemble(counts: Vec<u64>, sum: u64, min: u64, max: u64) -> Self {
        let count = counts.iter().sum();
        Self {
            counts,
            count,
            sum,
            min: if count == 0 { 0 } else { min },
            max,
        }
    }

    /// The per-bucket counts (index ↔ [`bounds_of`]).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The mean recorded value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 < q <= 1.0`) of the recorded values: the
    /// representative value of the bucket holding the `⌈q·count⌉`-th order
    /// statistic, clamped to the observed `[min, max]`. Exact in the
    /// identity region (values < 32); within the 6.25 % bucket width above
    /// it. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return representative(index).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_contiguous_and_monotone() {
        // Every bucket's upper bound is the next bucket's lower bound, and
        // every value lands in the bucket whose bounds contain it.
        for index in 0..BUCKETS - 1 {
            let (_, upper) = bounds_of(index);
            let (next_lower, _) = bounds_of(index + 1);
            assert_eq!(upper, next_lower, "gap after bucket {index}");
        }
        for value in (0..2_000u64).chain([1 << 20, u64::MAX / 2, u64::MAX]) {
            let index = bucket_of(value);
            let (lower, upper) = bounds_of(index);
            assert!(lower <= value, "{value} below bucket {index}");
            assert!(value < upper || upper == u64::MAX, "{value} above {index}");
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn identity_region_is_exact() {
        let hist = Histogram::new();
        for v in 0..32u64 {
            hist.record(v);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 32);
        assert_eq!(snap.quantile(1.0 / 32.0), 0);
        assert_eq!(snap.p50(), 15);
        assert_eq!(snap.quantile(1.0), 31);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 31);
    }

    #[test]
    fn quantiles_respect_the_bucket_error_bound() {
        let hist = Histogram::new();
        let values: Vec<u64> = (0..10_000u64).map(|i| 100 + i * 37).collect();
        for &v in &values {
            hist.record(v);
        }
        let snap = hist.snapshot();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let truth = values[rank - 1]; // values are sorted by construction
            let (lower, upper) = bounds_of(bucket_of(truth));
            let reported = snap.quantile(q);
            assert!(
                reported >= lower && reported < upper.max(lower + 1),
                "q={q}: reported {reported} outside bucket [{lower}, {upper}) of truth {truth}"
            );
        }
    }

    #[test]
    fn empty_histograms_report_zeros() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.mean(), 0.0);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 0);
    }

    #[test]
    fn recorder_merge_equals_sequential_recording() {
        let mut a = Recorder::new();
        let mut b = Recorder::new();
        let mut reference = Recorder::new();
        for i in 0..5_000u64 {
            let v = (i * 7919) % 1_000_000;
            if i % 2 == 0 { &mut a } else { &mut b }.record(v);
            reference.record(v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), reference.snapshot());

        let hist = Histogram::new();
        hist.merge_recorder(&a);
        assert_eq!(hist.snapshot(), reference.snapshot());
    }

    #[test]
    fn span_timing_records_something_positive() {
        let hist = Histogram::new();
        let out = hist.time(|| std::hint::black_box(17u64) * 2);
        assert_eq!(out, 34);
        let snap = hist.snapshot();
        assert_eq!(snap.count, 1);
        assert!(snap.max > 0, "a timed span took zero nanoseconds");
    }
}
