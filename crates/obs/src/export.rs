//! Exporters: a consistent point-in-time metric collection rendered as
//! Prometheus text exposition or a JSON object tree.
//!
//! [`MetricsSnapshot`] is the export model. Collection is pull-based and
//! lock-free: the caller reads each live metric exactly once (counters sum
//! their shards, histograms copy their buckets) into the snapshot, then
//! renders it as many times as needed. Cross-metric skew is bounded by the
//! collection pass itself — no metric is read twice, and no reader-visible
//! lock is taken.
//!
//! Histograms export in Prometheus *summary* form (pre-computed
//! `{quantile="…"}` sample lines plus `_sum`/`_count`) rather than
//! cumulative `_bucket` series: the log2 buckets are an internal encoding,
//! and 976 `le` lines per histogram would drown any scrape.

use serde::Value;

use crate::histogram::HistogramSnapshot;

/// The quantiles every exported histogram reports.
const EXPORT_QUANTILES: [f64; 4] = [0.5, 0.9, 0.99, 0.999];

/// One pre-computed quantile of an exported histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantile {
    /// The quantile rank, e.g. `0.99`.
    pub q: f64,
    /// The histogram value at that rank (nanoseconds for latency series).
    pub value: u64,
}

/// One exported histogram: quantiles plus the scalar summary fields.
#[derive(Debug, Clone)]
struct HistogramEntry {
    quantiles: Vec<Quantile>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    mean: f64,
}

#[derive(Debug, Clone)]
enum Sample {
    Counter(u64),
    Gauge(f64),
    Histogram(HistogramEntry),
}

#[derive(Debug, Clone)]
struct Entry {
    name: String,
    help: String,
    sample: Sample,
}

/// A consistent point-in-time collection of metric values (see the module
/// docs), rendered with [`to_prometheus`](Self::to_prometheus) or
/// [`to_json`](Self::to_json).
///
/// Entries render in insertion order; names should follow Prometheus
/// conventions (`snake_case`, `_total` suffix on counters, unit suffix like
/// `_ns` on histograms).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    entries: Vec<Entry>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a monotone counter sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) -> &mut Self {
        self.entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            sample: Sample::Counter(value),
        });
        self
    }

    /// Add a gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) -> &mut Self {
        self.entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            sample: Sample::Gauge(value),
        });
        self
    }

    /// Add a histogram: quantiles are extracted here, once, so every
    /// rendering of this snapshot reports identical values.
    pub fn histogram(&mut self, name: &str, help: &str, hist: &HistogramSnapshot) -> &mut Self {
        self.entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            sample: Sample::Histogram(HistogramEntry {
                quantiles: EXPORT_QUANTILES
                    .iter()
                    .map(|&q| Quantile {
                        q,
                        value: hist.quantile(q),
                    })
                    .collect(),
                count: hist.count,
                sum: hist.sum,
                min: hist.min,
                max: hist.max,
                mean: hist.mean(),
            }),
        });
        self
    }

    /// Render as Prometheus text exposition (version 0.0.4): `# HELP` /
    /// `# TYPE` headers, plain samples for counters and gauges, summary
    /// form for histograms.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(64 * self.entries.len().max(1));
        for entry in &self.entries {
            let name = &entry.name;
            out.push_str(&format!("# HELP {name} {}\n", entry.help));
            match &entry.sample {
                Sample::Counter(value) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
                }
                Sample::Gauge(value) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
                }
                Sample::Histogram(hist) => {
                    out.push_str(&format!("# TYPE {name} summary\n"));
                    for q in &hist.quantiles {
                        out.push_str(&format!("{name}{{quantile=\"{}\"}} {}\n", q.q, q.value));
                    }
                    out.push_str(&format!("{name}_sum {}\n", hist.sum));
                    out.push_str(&format!("{name}_count {}\n", hist.count));
                }
            }
        }
        out
    }

    /// Render as a pretty-printed JSON object: one key per metric, each
    /// value an object carrying `type`, `help` and the sample fields
    /// (histograms add `count`/`sum`/`min`/`max`/`mean` and a `p50`…`p999`
    /// block).
    pub fn to_json(&self) -> String {
        let tree = Value::Object(
            self.entries
                .iter()
                .map(|entry| (entry.name.clone(), entry_value(entry)))
                .collect(),
        );
        serde_json::to_string_pretty(&tree).expect("Value serialisation is infallible")
    }
}

fn entry_value(entry: &Entry) -> Value {
    let mut fields: Vec<(String, Value)> = Vec::new();
    let kind = match &entry.sample {
        Sample::Counter(_) => "counter",
        Sample::Gauge(_) => "gauge",
        Sample::Histogram(_) => "histogram",
    };
    fields.push(("type".into(), Value::String(kind.into())));
    fields.push(("help".into(), Value::String(entry.help.clone())));
    match &entry.sample {
        Sample::Counter(value) => fields.push(("value".into(), Value::Number(*value as f64))),
        Sample::Gauge(value) => fields.push(("value".into(), Value::Number(*value))),
        Sample::Histogram(hist) => {
            fields.push(("count".into(), Value::Number(hist.count as f64)));
            fields.push(("sum".into(), Value::Number(hist.sum as f64)));
            fields.push(("min".into(), Value::Number(hist.min as f64)));
            fields.push(("max".into(), Value::Number(hist.max as f64)));
            fields.push(("mean".into(), Value::Number(hist.mean)));
            for q in &hist.quantiles {
                let label = format!("p{}", (q.q * 1000.0).round() as u64).replace("p500", "p50");
                let label = match label.as_str() {
                    "p900" => "p90".to_string(),
                    "p990" => "p99".to_string(),
                    other => other.to_string(),
                };
                fields.push((label, Value::Number(q.value as f64)));
            }
        }
    }
    Value::Object(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    fn sample_snapshot() -> MetricsSnapshot {
        let hist = Histogram::new();
        for v in [100u64, 200, 300, 40_000] {
            hist.record(v);
        }
        let mut snapshot = MetricsSnapshot::new();
        snapshot.counter("draws_total", "Draws served", 42);
        snapshot.gauge("ewma_build_ns", "EWMA build cost", 1234.5);
        snapshot.histogram("draw_ns", "Per-draw latency", &hist.snapshot());
        snapshot
    }

    #[test]
    fn prometheus_exposition_has_all_series() {
        let text = sample_snapshot().to_prometheus();
        assert!(text.contains("# TYPE draws_total counter"));
        assert!(text.contains("draws_total 42"));
        assert!(text.contains("# TYPE ewma_build_ns gauge"));
        assert!(text.contains("ewma_build_ns 1234.5"));
        assert!(text.contains("# TYPE draw_ns summary"));
        assert!(text.contains("draw_ns{quantile=\"0.5\"}"));
        assert!(text.contains("draw_ns{quantile=\"0.999\"}"));
        assert!(text.contains("draw_ns_count 4"));
        assert!(text.contains("draw_ns_sum 40600"));
    }

    #[test]
    fn json_round_trips_through_the_shim_parser() {
        let json = sample_snapshot().to_json();
        let tree = serde_json::from_str_value(&json).expect("exported JSON parses");
        let counter = tree.field("draws_total").unwrap();
        assert_eq!(
            *counter.field("type").unwrap(),
            Value::String("counter".into())
        );
        assert_eq!(*counter.field("value").unwrap(), Value::Number(42.0));
        let hist = tree.field("draw_ns").unwrap();
        assert_eq!(*hist.field("count").unwrap(), Value::Number(4.0));
        assert!(matches!(hist.field("p99").unwrap(), Value::Number(_)));
        assert!(matches!(hist.field("p999").unwrap(), Value::Number(_)));
    }

    #[test]
    fn quantiles_are_extracted_once_at_insertion() {
        let hist = Histogram::new();
        hist.record(500);
        let mut snapshot = MetricsSnapshot::new();
        snapshot.histogram("h_ns", "test", &hist.snapshot());
        let first = snapshot.to_prometheus();
        hist.record(9_999_999); // must not affect the already-taken snapshot
        assert_eq!(first, snapshot.to_prometheus());
    }
}
