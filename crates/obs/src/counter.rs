//! Sharded counters and gauges — the scalar metric primitives.
//!
//! A naive `AtomicU64` counter bounces its cache line between every core
//! that records into it; at engine reader rates (tens of millions of draws
//! per second across threads) that bounce *is* the overhead. [`Counter`]
//! shards the count over [`COUNTER_SHARDS`] cache-padded cells and pins
//! each recording thread to one shard (round-robin on first use, the same
//! scheme as the engine's served-draws cells), so concurrent recorders
//! touch distinct lines with high probability. Reads sum the shards —
//! monotone and exact once recorders quiesce, a bounded-lag lower bound
//! while they run (the usual relaxed-counter contract).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Pads (and aligns) a value to a cache line so adjacent shards can never
/// produce false sharing.
#[repr(align(64))]
#[derive(Debug, Default)]
pub struct CachePadded<T>(pub T);

/// Shards per [`Counter`]. A power of two; more shards than this many
/// *simultaneous* recording threads only wastes cache.
pub const COUNTER_SHARDS: usize = 16;

/// Monotone thread enumerator feeding the shard assignment (shared by all
/// counters — a thread keeps one shard index for life, which keeps the TLS
/// footprint at one word regardless of how many counters exist).
static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's shard (assigned round-robin on first use; `const`
    /// cell, so the TLS itself never allocates).
    static THREAD_SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

/// This thread's counter shard, assigning one on first use.
#[inline]
fn shard() -> usize {
    THREAD_SHARD.with(|cell| {
        let shard = cell.get();
        if shard != usize::MAX {
            return shard;
        }
        let assigned = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
        cell.set(assigned);
        assigned
    })
}

/// A lock-free, cache-padded, sharded monotone counter.
///
/// `const`-constructible so it can back `static` kernel counters with zero
/// startup cost and no allocation:
///
/// ```
/// use lrb_obs::Counter;
/// static HITS: Counter = Counter::new();
/// HITS.add(2);
/// HITS.incr();
/// assert_eq!(HITS.get(), 3);
/// ```
#[derive(Debug)]
pub struct Counter {
    shards: [CachePadded<AtomicU64>; COUNTER_SHARDS],
}

impl Counter {
    /// A zeroed counter (usable in `static` position).
    #[allow(clippy::new_without_default)]
    pub const fn new() -> Self {
        Self {
            shards: [const { CachePadded(AtomicU64::new(0)) }; COUNTER_SHARDS],
        }
    }

    /// Add `n` to this thread's shard (one relaxed `fetch_add`).
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current total (relaxed sum over shards — exact once recorders
    /// quiesce).
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|cell| cell.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// An `f64` gauge stored as atomic bits. Last write wins; reads are
/// tear-free (one 64-bit load).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A gauge reading `0.0` (usable in `static` position).
    #[allow(clippy::new_without_default)]
    pub const fn new() -> Self {
        // 0.0f64 is all-zero bits, so the const context needs no to_bits().
        Self {
            bits: AtomicU64::new(0),
        }
    }

    /// Set the gauge (relaxed store).
    #[inline]
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Read the gauge (relaxed load).
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let counter = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let counter = &counter;
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        counter.incr();
                    }
                });
            }
        });
        assert_eq!(counter.get(), 80_000);
    }

    #[test]
    fn counter_is_const_constructible() {
        static STATIC_COUNTER: Counter = Counter::new();
        STATIC_COUNTER.add(5);
        assert!(STATIC_COUNTER.get() >= 5);
    }

    #[test]
    fn gauge_last_write_wins() {
        let gauge = Gauge::new();
        assert_eq!(gauge.get(), 0.0);
        gauge.set(2.5);
        assert_eq!(gauge.get(), 2.5);
        gauge.set(-1.0e9);
        assert_eq!(gauge.get(), -1.0e9);
    }
}
