//! The flight recorder: a fixed-capacity, lock-free ring journal of
//! structured events.
//!
//! Writers claim a slot with one `fetch_add` on the head counter and stamp
//! the slot with a seqlock-style sequence word; readers never block writers
//! and writers never block each other. A [`snapshot`](FlightRecorder::snapshot)
//! walks the slots post-hoc, discards any slot observed mid-write (odd
//! stamp, or stamp changed across the payload read), and returns the most
//! recent `capacity` events in publication order — enough to explain a
//! misbehaving run after the fact.
//!
//! ## Safety argument (audited `unsafe`)
//!
//! This module is the crate's single `#[allow(unsafe_code)]` island (the
//! same policy as `lrb-engine`'s `hot_swap`). The unsafe surface is two
//! operations on `Slot::value: UnsafeCell<MaybeUninit<T>>`:
//!
//! * **Writer writes** happen only between winning the slot's stamp CAS
//!   (even → odd claim) and releasing it (odd → even). The CAS is the
//!   per-slot mutual exclusion: at most one writer holds a slot claimed, so
//!   the `&mut` created for the write is unique.
//! * **Reader reads** use `ptr::read_volatile` on the `MaybeUninit`
//!   payload, which may race a concurrent writer's plain store. Under a
//!   strict reading of the Rust/C++ memory model this racing copy is a
//!   data race, i.e. technically UB, even though the bytes are only
//!   *trusted* (via `assume_init`) after the stamp is re-checked
//!   unchanged around the read (`Acquire` load before, fence + load
//!   after), which proves no writer touched the slot during the copy.
//!   This is a **deliberate, accepted-in-practice deviation**: it is the
//!   exact seqlock optimistic-read pattern used by crossbeam-utils'
//!   `AtomicCell` (`read_volatile` between `optimistic_read` /
//!   `validate_read`), it is what every production seqlock does pending a
//!   `freeze`/tearable-atomics primitive in the language, and no known
//!   compiler miscompiles it (the volatile read cannot be elided,
//!   reordered across the fence, or invented from). A fully
//!   model-sanctioned alternative — per-word `AtomicU64` copies of the
//!   payload — would force `size_of::<T>()`/alignment round-tripping on
//!   every event type for no observable behavioral difference. `T: Copy`
//!   guarantees the byte-wise copy drops nothing and, once validated, is
//!   a valid value.
//!
//! The `Sync` impl requires `T: Copy + Send`, matching that argument.

#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicU64, Ordering};

/// One ring slot: a seqlock stamp plus the (possibly uninitialised) payload.
///
/// Stamp protocol: `0` = never written; `2·seq + 1` = claimed by the writer
/// of sequence number `seq` (write in progress); `2·seq + 2` = sequence
/// `seq` fully published.
struct Slot<T> {
    stamp: AtomicU64,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A fixed-capacity, lock-free ring journal (see the module docs).
///
/// ```
/// let journal: lrb_obs::FlightRecorder<u64> = lrb_obs::FlightRecorder::new(8);
/// for event in 0..20u64 {
///     journal.push(event);
/// }
/// // Keeps the most recent `capacity` events, oldest first.
/// assert_eq!(journal.snapshot(), (12..20).collect::<Vec<_>>());
/// ```
pub struct FlightRecorder<T> {
    /// `capacity - 1`; capacity is always a power of two.
    mask: u64,
    /// Next sequence number to claim (monotone; also the total push count).
    head: AtomicU64,
    slots: Box<[Slot<T>]>,
}

// SAFETY: see the module-level safety argument. `T: Copy` makes torn-read
// recovery sound (no drop glue, byte-wise copies are values); `T: Send`
// because payloads move across threads through the ring.
unsafe impl<T: Copy + Send> Sync for FlightRecorder<T> {}
unsafe impl<T: Copy + Send> Send for FlightRecorder<T> {}

impl<T: Copy> FlightRecorder<T> {
    /// A recorder holding the most recent `capacity` events (rounded up to
    /// a power of two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2).next_power_of_two();
        let slots: Vec<Slot<T>> = (0..capacity)
            .map(|_| Slot {
                stamp: AtomicU64::new(0),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Self {
            mask: capacity as u64 - 1,
            head: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
        }
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever pushed (monotone, may exceed capacity).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Journal one event. Lock-free: one `fetch_add` to claim a sequence
    /// number, then a bounded CAS hand-off on the slot (a writer only waits
    /// for the *previous lap's* writer of the same slot, never for
    /// readers). No allocation.
    pub fn push(&self, value: T) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq & self.mask) as usize];
        let claimed = 2 * seq + 1;
        // Claim the slot: its stamp must be even (no writer inside) AND
        // belong to a sequence older than ours — a writer stalled a full
        // lap must not reclaim a slot a *later* sequence already published
        // (the stamp would regress and an old event would overwrite a
        // newer one). If the slot has moved past us, this event was
        // superseded `capacity` pushes ago; drop it. Lap collisions with
        // an *older* writer still inside are resolved by spinning; with
        // capacity ≫ writer count that path is never taken in practice.
        loop {
            let current = slot.stamp.load(Ordering::Relaxed);
            if current > claimed {
                return; // a later sequence owns this slot; we're stale
            }
            if current.is_multiple_of(2)
                && slot
                    .stamp
                    .compare_exchange_weak(current, claimed, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                break;
            }
            std::hint::spin_loop();
        }
        // SAFETY: the claim CAS above is the per-slot mutex — no other
        // writer can hold this slot until we publish, and readers never
        // write. Writing a `MaybeUninit<T>` needs no drop of the old value.
        unsafe {
            (*slot.value.get()).write(value);
        }
        // Publish: even stamp encoding this sequence number. `Release`
        // orders the payload write before the stamp for readers.
        slot.stamp.store(claimed + 1, Ordering::Release);
    }

    /// The most recent `capacity` (or fewer) events, oldest first.
    ///
    /// Wait-free for writers: slots observed mid-write are simply dropped
    /// from the snapshot (they will be superseded by a newer event anyway).
    pub fn snapshot(&self) -> Vec<T> {
        let mut entries: Vec<(u64, T)> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let before = slot.stamp.load(Ordering::Acquire);
            if before == 0 || before % 2 == 1 {
                continue; // never written, or write in progress
            }
            // SAFETY(accepted deviation): this volatile copy may race a
            // writer's plain store — formally a data race; see the module
            // docs for why this seqlock optimistic-read pattern (the same
            // one crossbeam-utils' AtomicCell uses) is deliberately kept.
            // The value is only trusted after the stamp re-check below
            // proves no writer touched the slot during the copy (`T: Copy`
            // so the validated byte copy is a valid value).
            let copied = unsafe { std::ptr::read_volatile(slot.value.get()) };
            fence(Ordering::Acquire);
            let after = slot.stamp.load(Ordering::Relaxed);
            if before != after {
                continue; // torn read: a writer replaced the slot under us
            }
            // SAFETY: stamp was even and unchanged across the copy, so the
            // copy is the fully published payload of sequence (before-2)/2.
            entries.push((before / 2 - 1, unsafe { copied.assume_init() }));
        }
        entries.sort_unstable_by_key(|&(seq, _)| seq);
        entries.into_iter().map(|(_, value)| value).collect()
    }
}

impl<T> std::fmt::Debug for FlightRecorder<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            .field("pushed", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_most_recent_events_in_order() {
        let ring = FlightRecorder::new(8);
        assert_eq!(ring.snapshot(), Vec::<u64>::new());
        for event in 0..3u64 {
            ring.push(event);
        }
        assert_eq!(ring.snapshot(), vec![0, 1, 2]);
        for event in 3..100u64 {
            ring.push(event);
        }
        assert_eq!(ring.pushed(), 100);
        assert_eq!(ring.snapshot(), (92..100).collect::<Vec<_>>());
    }

    #[test]
    fn a_lap_stalled_writer_drops_instead_of_regressing_a_slot() {
        let ring = FlightRecorder::new(2);
        for event in 0..4u64 {
            ring.push(event);
        }
        assert_eq!(ring.snapshot(), vec![2, 3]);
        // Rewind `head` to replay sequence 0: equivalent to a writer that
        // claimed seq 0 from `fetch_add`, then stalled a full lap while
        // seqs 1..4 published over its slot. Its late write must be
        // dropped, not regress the slot's stamp to an older sequence.
        ring.head.store(0, Ordering::Relaxed);
        ring.push(999);
        assert_eq!(ring.snapshot(), vec![2, 3], "stale write must be dropped");
    }

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        assert_eq!(FlightRecorder::<u8>::new(0).capacity(), 2);
        assert_eq!(FlightRecorder::<u8>::new(5).capacity(), 8);
        assert_eq!(FlightRecorder::<u8>::new(256).capacity(), 256);
    }

    #[test]
    fn concurrent_pushes_never_tear() {
        // Payload duplicates its identity in both halves; a torn read would
        // surface as mismatched halves.
        #[derive(Clone, Copy)]
        struct Stamped {
            a: u64,
            b: u64,
        }
        let ring = FlightRecorder::new(16);
        std::thread::scope(|scope| {
            for thread in 0..4u64 {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..2_000u64 {
                        let id = thread * 1_000_000 + i;
                        ring.push(Stamped { a: id, b: !id });
                    }
                });
            }
            let ring = &ring;
            scope.spawn(move || {
                for _ in 0..500 {
                    for event in ring.snapshot() {
                        assert_eq!(event.a, !event.b, "torn flight-recorder read");
                    }
                }
            });
        });
        assert_eq!(ring.pushed(), 8_000);
        let last = ring.snapshot();
        assert!(!last.is_empty() && last.len() <= 16);
        for event in last {
            assert_eq!(event.a, !event.b);
        }
    }
}
