//! # lrb-obs — lock-free telemetry for the selection engine
//!
//! The serving layer (`lrb-engine`) makes regime claims — fused-kernel
//! speedups, patch-versus-rebuild crossovers, stochastic-acceptance
//! degradation under skew — that until now were only visible in offline
//! bench JSON. This crate is the in-process observability substrate that
//! makes the *running* engine explain itself: what its p999 sample latency
//! is, which backend is serving, and why the cost model switched.
//!
//! Everything is hand-rolled (no crates.io) and built for hot paths:
//!
//! * [`Counter`] — a cache-padded, sharded monotone counter. Recording is
//!   one relaxed `fetch_add` on a per-thread shard (no shared line bounce);
//!   reads sum the shards. `const`-constructible, so kernel-level counters
//!   can live in `static`s with zero startup cost.
//! * [`Gauge`] — an `f64` gauge stored as atomic bits (set/get, relaxed).
//! * [`Histogram`] — a log2-bucketed latency histogram (16 sub-buckets per
//!   octave, ≤ 6.25 % relative bucket width) with atomic buckets for
//!   concurrent recording and quantile extraction ([`p50/p99/p999`]) from a
//!   consistent [`HistogramSnapshot`]. [`Recorder`] is the mergeable
//!   per-thread variant: plain (non-atomic) cells for measurement loops,
//!   merged into a shared histogram — or another recorder — after the run.
//!   Merging is exact: a merged histogram is bucket-for-bucket identical to
//!   recording the concatenated sequence into one histogram.
//! * [`FlightRecorder`] — a fixed-capacity ring journal of structured
//!   events (sequence-stamped seqlock slots): writers claim a slot with one
//!   `fetch_add` and never block readers; a post-hoc [`snapshot`] returns
//!   the last `capacity` events in order, so a misbehaving run can be
//!   explained after the fact.
//! * [`MetricsSnapshot`] — the export model: a consistent point-in-time
//!   collection of metric values rendered as Prometheus text exposition
//!   ([`to_prometheus`]) or a JSON object tree ([`to_json`]). "Consistent"
//!   means each metric is read exactly once into the snapshot (histograms
//!   copy their buckets before quantiles are taken); cross-metric skew is
//!   bounded by the collection pass, which takes no locks.
//!
//! [`p50/p99/p999`]: HistogramSnapshot::quantile
//! [`snapshot`]: FlightRecorder::snapshot
//! [`to_prometheus`]: MetricsSnapshot::to_prometheus
//! [`to_json`]: MetricsSnapshot::to_json
//!
//! ## Quickstart
//!
//! ```
//! use lrb_obs::{Counter, Histogram, MetricsSnapshot};
//!
//! static DRAWS: Counter = Counter::new();
//!
//! let latency = Histogram::new();
//! DRAWS.add(3);
//! latency.record(1_250); // ns
//! latency.record(980);
//!
//! let mut snapshot = MetricsSnapshot::new();
//! snapshot.counter("draws_total", "Draws served", DRAWS.get());
//! snapshot.histogram("draw_ns", "Per-draw latency", &latency.snapshot());
//! let text = snapshot.to_prometheus();
//! assert!(text.contains("draws_total 3"));
//! assert!(text.contains("draw_ns{quantile=\"0.5\"}"));
//! ```

// `deny`, not `forbid`: the flight-recorder ring (`ring`) carries an
// audited `#[allow(unsafe_code)]` with its safety argument in the module
// docs — everything else is safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod export;
pub mod histogram;
pub mod ring;

pub use counter::{CachePadded, Counter, Gauge};
pub use export::{MetricsSnapshot, Quantile};
pub use histogram::{Histogram, HistogramSnapshot, Recorder, BUCKETS};
pub use ring::FlightRecorder;
