//! Property and stress tests for the `lrb-obs` primitives: histogram
//! record/merge equivalence, quantile error bounds, concurrent recording,
//! and flight-recorder wraparound/ordering.

use std::sync::atomic::{AtomicU64, Ordering};

use lrb_obs::histogram::{bounds_of, bucket_of};
use lrb_obs::{FlightRecorder, Histogram, Recorder};
use proptest::{prop_assert, prop_assert_eq, proptest, TestRng};

/// A value family that exercises every histogram regime: the exact
/// identity region, mid-range octaves, and the giant values that stress
/// sub-bucket indexing.
fn arbitrary_values(rng: &mut TestRng, len: usize) -> Vec<u64> {
    (0..len)
        .map(|_| {
            let magnitude = rng.below(64) as u32;
            let base = 1u64.checked_shl(magnitude).unwrap_or(u64::MAX);
            rng.below(base.saturating_add(1).max(1))
                .saturating_add(base / 2)
        })
        .collect()
}

/// The exact empirical quantile the histogram estimate is judged against:
/// the smallest recorded value whose rank reaches `ceil(q * count)`.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #[test]
    fn prop_merged_recorders_match_sequential_recording(seed: u64, len in 1usize..400) {
        let mut rng = TestRng::new(seed);
        let values = arbitrary_values(&mut rng, len);

        // Route the same stream through three per-thread-style recorders
        // merged into one histogram, and through one histogram directly.
        let merged = Histogram::new();
        let mut recorders = [Recorder::new(), Recorder::new(), Recorder::new()];
        let sequential = Histogram::new();
        for (i, &value) in values.iter().enumerate() {
            recorders[i % recorders.len()].record(value);
            sequential.record(value);
        }
        for recorder in &recorders {
            merged.merge_recorder(recorder);
        }

        let a = merged.snapshot();
        let b = sequential.snapshot();
        prop_assert_eq!(a.counts(), b.counts());
        prop_assert_eq!(a.count, b.count);
        prop_assert_eq!(a.sum, b.sum);
        prop_assert_eq!(a.min, b.min);
        prop_assert_eq!(a.max, b.max);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            prop_assert_eq!(a.quantile(q), b.quantile(q));
        }
    }

    #[test]
    fn prop_quantile_estimates_stay_within_the_bucket_error_bound(
        seed: u64,
        len in 1usize..300,
    ) {
        let mut rng = TestRng::new(seed);
        let values = arbitrary_values(&mut rng, len);
        let histogram = Histogram::new();
        for &value in &values {
            histogram.record(value);
        }
        let snapshot = histogram.snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();

        for q in [0.01, 0.1, 0.5, 0.9, 0.99, 0.999] {
            let truth = exact_quantile(&sorted, q);
            let estimate = snapshot.quantile(q);
            // The rank walk lands in the bucket holding the true quantile,
            // so the estimate never leaves that bucket's bounds...
            let (lower, upper) = bounds_of(bucket_of(truth));
            prop_assert!(
                estimate >= lower && estimate <= upper,
                "q {} estimate {} outside bucket [{}, {}] of true {}",
                q, estimate, lower, upper, truth
            );
            // ...which caps the relative error at one sub-bucket width:
            // exact below the identity threshold, 1/16 of the value above.
            if truth < 32 {
                prop_assert_eq!(estimate, truth);
            } else {
                let tolerance = truth / 16 + 1;
                prop_assert!(
                    estimate.abs_diff(truth) <= tolerance,
                    "q {} estimate {} further than {} from true {}",
                    q, estimate, tolerance, truth
                );
            }
        }
    }

    #[test]
    fn prop_flight_recorder_keeps_the_newest_events_in_order(
        capacity in 1usize..40,
        pushes in 0u64..300,
    ) {
        let recorder: FlightRecorder<u64> = FlightRecorder::new(capacity);
        for value in 0..pushes {
            recorder.push(value);
        }
        let events = recorder.snapshot();
        // The ring keeps the most recent `capacity()` (capacity rounds up
        // to a power of two), oldest first, with nothing lost in between.
        let retained = (recorder.capacity() as u64).min(pushes);
        let expected: Vec<u64> = (pushes - retained..pushes).collect();
        prop_assert_eq!(events, expected);
        prop_assert_eq!(recorder.pushed(), pushes);
    }
}

/// Many threads hammer one shared histogram; the result must equal the
/// sequential recording of the union of their streams — no lost counts,
/// no torn extremes.
#[test]
fn concurrent_histogram_recording_loses_nothing() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 20_000;
    let shared = Histogram::new();
    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let shared = &shared;
            scope.spawn(move || {
                let mut rng = TestRng::new(0xC0FFEE ^ thread);
                for _ in 0..PER_THREAD {
                    shared.record(rng.below(1 << 40));
                }
            });
        }
    });

    let expected = Histogram::new();
    for thread in 0..THREADS {
        let mut rng = TestRng::new(0xC0FFEE ^ thread);
        for _ in 0..PER_THREAD {
            expected.record(rng.below(1 << 40));
        }
    }
    let a = shared.snapshot();
    let b = expected.snapshot();
    assert_eq!(a.count, THREADS * PER_THREAD);
    assert_eq!(a.counts(), b.counts());
    assert_eq!(a.sum, b.sum);
    assert_eq!(a.min, b.min);
    assert_eq!(a.max, b.max);
}

/// Concurrent pushers racing a snapshotting reader: every snapshot is a
/// consistent suffix — strictly increasing per-thread sequence numbers and
/// untorn payloads (each event's two halves agree).
#[test]
fn concurrent_flight_recorder_snapshots_are_consistent() {
    #[derive(Debug, Clone, Copy)]
    struct Event {
        value: u64,
        check: u64,
    }
    const PER_THREAD: u64 = 5_000;
    let recorder: FlightRecorder<Event> = FlightRecorder::new(64);
    let snapshots_taken = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for thread in 0..3u64 {
            let recorder = &recorder;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    let value = thread * PER_THREAD + i;
                    recorder.push(Event {
                        value,
                        check: !value,
                    });
                }
            });
        }
        let recorder = &recorder;
        let snapshots_taken = &snapshots_taken;
        scope.spawn(move || {
            // At least one snapshot races the pushers even when this
            // thread is scheduled late (single-core hosts).
            loop {
                for event in recorder.snapshot() {
                    assert_eq!(event.check, !event.value, "torn flight-recorder read");
                }
                snapshots_taken.fetch_add(1, Ordering::Relaxed);
                if recorder.pushed() >= 3 * PER_THREAD {
                    break;
                }
            }
        });
    });
    assert_eq!(recorder.pushed(), 3 * PER_THREAD);
    assert!(snapshots_taken.load(Ordering::Relaxed) > 0);
    assert_eq!(recorder.snapshot().len(), 64);
}
