//! The sparse-fitness regime that motivates Theorem 1: most fitness values
//! are zero (e.g. most cities already visited), and the CRCW logarithmic
//! random bidding finishes in O(log k) expected iterations with a
//! constant-size shared memory — shown here on the simulated CRCW-PRAM.
//!
//! ```text
//! cargo run -p lrb-integration --release --example sparse_selection
//! ```

use lrb_core::parallel::CrcwLogBiddingSelector;
use lrb_core::Fitness;
use lrb_pram::algorithms::{prefix_sum_selection, PramSelection};
use lrb_rng::{MersenneTwister64, SeedableSource};
use lrb_stats::OnlineStats;

fn main() {
    let n = 4096;
    let trials = 25;
    let selector = CrcwLogBiddingSelector;

    println!("CRCW logarithmic random bidding on a simulated PRAM, n = {n} processors");
    println!(
        "{:>8} {:>14} {:>14} {:>12} {:>10}",
        "k", "mean iters", "max iters", "2*log2(k)", "mem cells"
    );

    let mut k = 1usize;
    while k <= n {
        let fitness = Fitness::sparse(n, k, 1.0).expect("valid workload");
        let mut rng = MersenneTwister64::seed_from_u64(k as u64);
        let mut iters = OnlineStats::new();
        let mut mem = 0usize;
        for _ in 0..trials {
            let stats = selector
                .select_with_stats(&fitness, &mut rng)
                .expect("selection succeeds");
            iters.push(stats.while_iterations as f64);
            mem = mem.max(stats.cost.memory_footprint);
        }
        let bound = if k == 1 {
            1.0
        } else {
            2.0 * (k as f64).log2().ceil()
        };
        println!(
            "{:>8} {:>14.2} {:>14.0} {:>12.0} {:>10}",
            k,
            iters.mean(),
            iters.max(),
            bound,
            mem
        );
        k *= 8;
    }

    // Contrast with the prefix-sum-based selection: same exact probabilities,
    // but Θ(log n) steps regardless of k and Θ(n) shared memory.
    let fitness = Fitness::sparse(n, 4, 1.0).expect("valid workload");
    let mut rng = MersenneTwister64::seed_from_u64(99);
    let PramSelection { cost, .. } =
        prefix_sum_selection(fitness.values(), &mut rng).expect("selection succeeds");
    println!(
        "\nprefix-sum-based selection on the same PRAM (k = 4): {} steps, {} shared cells",
        cost.steps, cost.memory_footprint
    );
    println!("logarithmic bidding needs only 2 shared cells and ~log2(k) iterations.");
}
