//! A quick-running version of the paper's Table I and Table II (the full
//! binaries in `lrb-bench` accept `--trials` up to the paper's 10⁹).
//!
//! ```text
//! cargo run -p lrb-integration --release --example probability_tables
//! ```

use lrb_bench::run_probability_experiment;
use lrb_core::parallel::{IndependentRouletteSelector, LogBiddingSelector};
use lrb_core::{Fitness, Selector};

fn main() {
    let trials = 200_000;
    let selectors: Vec<Box<dyn Selector>> = vec![
        Box::new(IndependentRouletteSelector),
        Box::new(LogBiddingSelector::default()),
    ];

    let table1 = run_probability_experiment(
        "Table I (f_i = i, 0 <= i <= 9)",
        &Fitness::table1(),
        &selectors,
        trials,
        1,
    );
    println!("{}", table1.render(10));

    let table2 = run_probability_experiment(
        "Table II (n = 100, f_0 = 1, f_1..99 = 2) — first 10 processors",
        &Fitness::table2(),
        &selectors,
        trials,
        2,
    );
    println!("{}", table2.render(10));

    println!(
        "independent roulette's analytic probability of Table II index 0: {:.3e} (paper: 1.57772e-32)",
        table2.independent_analytic[0]
    );
}
