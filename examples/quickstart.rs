//! Quickstart: pick an index proportionally to its fitness, with every
//! algorithm in the library, and see how close each one gets to the exact
//! probabilities.
//!
//! ```text
//! cargo run -p lrb-integration --release --example quickstart
//! ```

use lrb_core::{all_selectors, Fitness};
use lrb_rng::{MersenneTwister64, SeedableSource};
use lrb_stats::EmpiricalDistribution;

fn main() {
    // A small fitness vector with a zero entry, like an ACO step where one
    // city has already been visited.
    let fitness = Fitness::new(vec![0.0, 1.0, 2.0, 3.0, 4.0]).expect("valid fitness");
    println!("fitness         : {:?}", fitness.values());
    println!(
        "exact F_i       : {:?}\n",
        rounded(&fitness.probabilities())
    );

    // One-off selection with the paper's logarithmic random bidding.
    let selector = lrb_core::parallel::LogBiddingSelector::default();
    let mut rng = MersenneTwister64::seed_from_u64(42);
    let chosen = lrb_core::Selector::select(&selector, &fitness, &mut rng).expect("selection");
    println!(
        "single selection with {}: index {chosen}\n",
        lrb_core::Selector::name(&selector)
    );

    // Empirical frequencies of every algorithm over 100k trials.
    let trials = 100_000;
    println!("empirical frequencies over {trials} trials:");
    for selector in all_selectors() {
        // The CRCW-PRAM simulation is much slower per trial; sample it less.
        let budget = if selector.name().contains("crcw") {
            5_000
        } else {
            trials
        };
        let mut rng = MersenneTwister64::seed_from_u64(7);
        let mut dist = EmpiricalDistribution::new(fitness.len());
        for _ in 0..budget {
            dist.record(selector.select(&fitness, &mut rng).expect("selection"));
        }
        println!(
            "  {:<34} {:?}   max|Δ| = {:.4} {}",
            selector.name(),
            rounded(&dist.frequencies()),
            dist.max_abs_deviation(&fitness.probabilities()),
            if selector.is_exact() {
                "(exact)"
            } else {
                "(biased by design)"
            }
        );
    }
}

fn rounded(values: &[f64]) -> Vec<f64> {
    values
        .iter()
        .map(|v| (v * 1000.0).round() / 1000.0)
        .collect()
}
