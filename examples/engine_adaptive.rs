//! The adaptive serving engine end to end: startup micro-calibration,
//! telemetry-driven backend choice, and a mid-stream switch when the
//! observed workload drifts.
//!
//! ```text
//! cargo run --example engine_adaptive
//! ```
//!
//! The engine starts on a uniform weight vector with a modest draw-rate
//! hint, readers hammer it far harder than the hint promised, and the
//! decider — fed by the snapshot's served-draws telemetry — republishes the
//! same weights under a cheaper backend without any writer involvement.
//! Then a writer burst spikes the skew and the publish-time decider reacts
//! again.

use lrb_engine::{BackendChoice, EngineConfig, SelectionEngine};
use lrb_rng::Philox4x32;

fn main() -> Result<(), lrb_core::SelectionError> {
    let n = 4096usize;

    // Calibrate: a one-shot micro-benchmark times each registered backend's
    // build and draws on this host, seeding the decider's ns/op constants;
    // every publish refreshes them by EWMA.
    let engine = SelectionEngine::new(
        vec![1.0; n],
        EngineConfig {
            backend: BackendChoice::Auto,
            expected_draws_per_publish: 64.0, // a deliberately bad hint
            calibrate: true,
            ..EngineConfig::default()
        },
    )?;

    println!("calibrated cost constants (ns per abstract op):");
    for c in engine.cost_constants() {
        println!(
            "  {:<22} build {:>8.3}   draw {:>8.3}",
            c.backend, c.build_ns_per_op, c.draw_ns_per_op
        );
    }

    let snapshot = engine.snapshot();
    println!(
        "\nv{} opens on '{}' (hint: {} draws/publish)",
        snapshot.version(),
        snapshot.backend(),
        engine.config().expected_draws_per_publish
    );

    // Readers fill buffers lock-free; the served counter is the telemetry
    // the decider reads.
    let mut rng = Philox4x32::for_substream(2024, 1);
    let mut buffer = vec![0usize; 4096];
    for _ in 0..64 {
        snapshot.sample_into(&mut rng, &mut buffer)?;
    }
    println!(
        "readers served {} draws from v{} — far past the hint",
        snapshot.served(),
        snapshot.version()
    );

    // Mid-stream: no pending writes, but the observed draw rate says a
    // pricier build with cheaper draws now pays for itself.
    match engine.maybe_rebalance()? {
        Some(version) => println!(
            "mid-stream rebalance -> v{version} on '{}'",
            engine.snapshot().backend()
        ),
        None => println!("decider kept '{}'", engine.snapshot().backend()),
    }

    // A writer burst makes one category dominate: skew spikes, and the next
    // publish re-decides with the drifted profile.
    engine.scale_all(0.5)?;
    engine.enqueue(17, 1.0e7)?;
    let version = engine.publish()?;
    println!(
        "writer burst -> v{version} on '{}' (observed {:.0} draws/publish)",
        engine.snapshot().backend(),
        engine.observed_draws_per_publish()
    );

    println!("\nswitch history:");
    for s in engine.switch_history() {
        println!(
            "  v{:<4} {} -> {}{} ({} draws served)",
            s.version,
            s.from,
            s.to,
            if s.mid_stream { " [mid-stream]" } else { "" },
            s.draws_served
        );
    }
    let stats = engine.stats();
    println!(
        "\nstats: {} publishes, {} switches",
        stats.publishes, stats.backend_switches
    );
    Ok(())
}
