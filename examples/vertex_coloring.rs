//! Ant-colony vertex coloring driven by roulette wheel selection — the second
//! application the paper cites (vertex coloring on GPUs, ref [4]).
//!
//! ```text
//! cargo run -p lrb-integration --release --example vertex_coloring
//! ```

use lrb_aco::coloring::{greedy_coloring, ColoringColony, ColoringParams};
use lrb_aco::Graph;
use lrb_core::parallel::LogBiddingSelector;

fn main() {
    let graphs = vec![
        ("Petersen graph (chromatic number 3)", Graph::petersen()),
        ("odd cycle C_11 (chromatic number 3)", Graph::cycle(11)),
        ("random G(80, 0.15)", Graph::random(80, 0.15, 7)),
        ("random G(120, 0.30)", Graph::random(120, 0.30, 8)),
    ];

    let selector = LogBiddingSelector::default();
    println!(
        "{:<38} {:>9} {:>9} {:>12} {:>12}",
        "graph", "vertices", "edges", "greedy", "ACO (30 it.)"
    );
    for (name, graph) in graphs {
        let greedy = greedy_coloring(&graph);
        let mut colony = ColoringColony::new(&graph, &selector, ColoringParams::default(), 1);
        let aco = colony.run(30).expect("coloring run");
        assert!(graph.is_proper_coloring(&aco.colors));
        println!(
            "{:<38} {:>9} {:>9} {:>12} {:>12}",
            name,
            graph.len(),
            graph.edge_count(),
            greedy.colors_used,
            aco.colors_used
        );
    }
    println!("\nEvery ACO coloring is verified proper; the colony is seeded with the greedy");
    println!("solution, so its result never uses more colors than the greedy baseline.");
}
