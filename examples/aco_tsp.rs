//! Ant colony optimization for the TSP, comparing the exact logarithmic
//! random bidding against the biased independent roulette as the ant's
//! next-city selection rule — the paper's motivating application.
//!
//! ```text
//! cargo run -p lrb-integration --release --example aco_tsp
//! ```

use lrb_aco::{Colony, ColonyParams, ColonyVariant, TspInstance};
use lrb_core::parallel::{IndependentRouletteSelector, LogBiddingSelector};
use lrb_core::Selector;

fn main() {
    let cities = 60;
    let iterations = 40;
    let instance = TspInstance::random_euclidean(cities, 2024);
    let nn = instance.nearest_neighbor_tour(0);
    println!("TSP instance: {cities} random cities in the unit square");
    println!("nearest-neighbour baseline tour length: {:.4}\n", nn.length);

    let log_bidding = LogBiddingSelector::default();
    let independent = IndependentRouletteSelector;
    let strategies: [(&str, &dyn Selector); 2] = [
        ("logarithmic random bidding (exact)", &log_bidding),
        ("independent roulette (biased)", &independent),
    ];

    for variant in [ColonyVariant::AntSystem, ColonyVariant::MaxMin] {
        println!("--- {:?} ---", variant);
        for (label, selector) in strategies {
            let params = ColonyParams {
                ants: 16,
                variant,
                local_search: false,
                ..ColonyParams::default()
            };
            let mut colony = Colony::new(&instance, selector, params, 7);
            let stats = colony.run(iterations).expect("colony run");
            let best = colony.best_tour().expect("at least one tour");
            let last = stats.last().expect("iterations ran");
            println!(
                "  {label:<38} best = {:.4}  (mean of final iteration = {:.4})",
                best.length, last.mean_length
            );
        }
        println!();
    }

    println!("With 2-opt local search on top of the exact strategy:");
    let params = ColonyParams {
        ants: 16,
        local_search: true,
        ..ColonyParams::default()
    };
    let mut colony = Colony::new(&instance, &log_bidding, params, 7);
    colony.run(iterations).expect("colony run");
    println!(
        "  best tour length = {:.4}",
        colony.best_tour().expect("tour").length
    );
}
