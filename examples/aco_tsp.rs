//! Ant colony optimization for the TSP, comparing the exact logarithmic
//! random bidding against the biased independent roulette as the ant's
//! next-city selection rule — the paper's motivating application — plus the
//! dynamic Fenwick construction backend from `lrb-dynamic`, which follows
//! the same exact distribution while absorbing pheromone updates in
//! `O(log n)` per edge instead of re-deriving desirabilities per step.
//!
//! ```text
//! cargo run -p lrb-integration --release --example aco_tsp
//! ```

use std::time::Instant;

use lrb_aco::{Colony, ColonyParams, ColonyVariant, ConstructionBackend, TspInstance};
use lrb_core::parallel::{IndependentRouletteSelector, LogBiddingSelector};
use lrb_core::Selector;

fn main() {
    let cities = 60;
    let iterations = 40;
    let instance = TspInstance::random_euclidean(cities, 2024);
    let nn = instance.nearest_neighbor_tour(0);
    println!("TSP instance: {cities} random cities in the unit square");
    println!("nearest-neighbour baseline tour length: {:.4}\n", nn.length);

    let log_bidding = LogBiddingSelector::default();
    let independent = IndependentRouletteSelector;
    let strategies: [(&str, &dyn Selector, ConstructionBackend); 3] = [
        (
            "logarithmic random bidding (exact)",
            &log_bidding,
            ConstructionBackend::OneShotSelector,
        ),
        (
            "independent roulette (biased)",
            &independent,
            ConstructionBackend::OneShotSelector,
        ),
        (
            "dynamic Fenwick tables (exact)",
            &log_bidding,
            ConstructionBackend::DynamicFenwick,
        ),
    ];

    for variant in [ColonyVariant::AntSystem, ColonyVariant::MaxMin] {
        println!("--- {:?} ---", variant);
        for (label, selector, construction) in strategies {
            let params = ColonyParams {
                ants: 16,
                variant,
                local_search: false,
                construction,
                ..ColonyParams::default()
            };
            let started = Instant::now();
            let mut colony = Colony::new(&instance, selector, params, 7);
            let stats = colony.run(iterations).expect("colony run");
            let elapsed = started.elapsed();
            let best = colony.best_tour().expect("at least one tour");
            let last = stats.last().expect("iterations ran");
            println!(
                "  {label:<38} best = {:.4}  (final-iter mean = {:.4}, {:.0} ms)",
                best.length,
                last.mean_length,
                elapsed.as_secs_f64() * 1e3,
            );
        }
        println!();
    }

    println!("With 2-opt local search on top of the exact strategy:");
    let params = ColonyParams {
        ants: 16,
        local_search: true,
        ..ColonyParams::default()
    };
    let mut colony = Colony::new(&instance, &log_bidding, params, 7);
    colony.run(iterations).expect("colony run");
    println!(
        "  best tour length = {:.4}",
        colony.best_tour().expect("tour").length
    );
}
