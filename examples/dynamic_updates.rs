//! The dynamic-selection subsystem in action: mutate-and-sample traffic
//! against the three `lrb-dynamic` engines, showing why `O(log n)` updates
//! matter when the fitness vector changes every round (the paper's ACO
//! setting).
//!
//! ```text
//! cargo run -p lrb-integration --release --example dynamic_updates
//! ```

use lrb_bench::dynamic_workload::{time_churn, workload};
use lrb_dynamic::{batch_sample_counts, FenwickSampler, RebuildingAliasSampler, ShardedArena};

fn main() {
    let n = 1 << 15;
    let rounds = 3_000;
    let weights = workload(n);

    println!("n = {n} categories, {rounds} rounds of (update one weight, draw once)\n");

    let mut fenwick = FenwickSampler::from_weights(weights.clone()).expect("valid weights");
    let fenwick_s = time_churn(&mut fenwick, rounds, 1);
    println!(
        "fenwick        {:>9.1} µs/round",
        fenwick_s / rounds as f64 * 1e6
    );

    let mut arena = ShardedArena::from_weights(weights.clone(), 16).expect("valid weights");
    let arena_s = time_churn(&mut arena, rounds, 1);
    println!(
        "sharded-arena  {:>9.1} µs/round",
        arena_s / rounds as f64 * 1e6
    );

    let alias_rounds = 300;
    let mut alias = RebuildingAliasSampler::from_weights(weights).expect("valid weights");
    let alias_s = time_churn(&mut alias, alias_rounds, 1) * rounds as f64 / alias_rounds as f64;
    println!(
        "alias-rebuild  {:>9.1} µs/round   ({} rebuilds in {alias_rounds} rounds)",
        alias_s / rounds as f64 * 1e6,
        alias.rebuild_count(),
    );
    println!(
        "\nfenwick speedup over alias-rebuild at 1:1 churn: {:.0}x",
        alias_s / fenwick_s
    );

    // Deterministic batch sampling: one Philox stream per trial.
    let counts = batch_sample_counts(&fenwick, 100_000, 7).expect("positive mass");
    let max_index = counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, c)| *c)
        .map(|(i, _)| i)
        .expect("non-empty");
    println!(
        "\nbatch of 100k draws (seed 7): hottest index {max_index} with {} hits",
        counts[max_index]
    );
}
