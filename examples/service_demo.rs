//! Serve a sharded selection wheel over a socket and drive it end to end.
//!
//! ```text
//! cargo run --example service_demo
//! ```
//!
//! Builds a 4-shard [`ShardedService`] over 1 000 categories with per-shard
//! publisher threads, fronts it with a [`ServiceServer`] (UDS on Unix, TCP
//! loopback elsewhere), then exercises the protocol from a few concurrent
//! [`ServiceClient`]s: coalesced single draws, batch draws, weight updates
//! and an evaporation scale. Finishes by printing the merged service
//! metrics (per-shard publish/read histograms included).

use std::time::Duration;

use lrb_service::{ServiceClient, ServiceConfig, ServiceServer, ShardedService};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mildly skewed wheel: weight i+1 for category i.
    let weights: Vec<f64> = (1..=1_000).map(f64::from).collect();
    let service = ShardedService::new(
        weights,
        ServiceConfig {
            shards: 4,
            publish_interval: Some(Duration::from_millis(2)),
            ..ServiceConfig::default()
        },
    )?;

    #[cfg(unix)]
    let server = {
        let path =
            std::env::temp_dir().join(format!("lrb-service-demo-{}.sock", std::process::id()));
        ServiceServer::bind_uds(service.core(), &path, 42)?
    };
    #[cfg(not(unix))]
    let server = ServiceServer::bind_tcp(service.core(), "127.0.0.1:0", 42)?;
    println!("serving at {:?}", server.local_addr());

    // A handful of concurrent clients issuing single draws: the server's
    // flat-combining aggregator coalesces them into batched fills.
    let mut readers = Vec::new();
    for _ in 0..4 {
        let addr = server.local_addr().clone();
        readers.push(std::thread::spawn(move || {
            let mut client = ServiceClient::connect(&addr).expect("connect");
            let mut histogram = [0u64; 4];
            for _ in 0..500 {
                let pick = client.draw().expect("draw");
                histogram[pick / 250] += 1;
            }
            histogram
        }));
    }

    // One writer: bump a hot category, evaporate everything else a bit.
    // The per-shard publisher threads make it visible within ~2 ms.
    let mut writer = ServiceClient::connect(server.local_addr())?;
    writer.update(999, 50_000.0)?;
    writer.scale_all(0.9)?;

    let mut quarters = [0u64; 4];
    for reader in readers {
        let counts = reader.join().expect("reader thread");
        for (q, c) in quarters.iter_mut().zip(counts) {
            *q += c;
        }
    }
    println!("draws per quarter of the category space: {quarters:?}");
    println!("(the top quarter dominates: weights grow linearly and 999 got a 50k boost)");

    // Batch draws land on the fused buffer-fill path directly.
    let picks = writer.draw_batch(10_000)?;
    let hot = picks.iter().filter(|&&p| p == 999).count();
    println!("batch of 10k draws hit the boosted category {hot} times");

    let totals = writer.totals()?;
    println!("per-shard totals: {totals:?}");

    let metrics = writer.metrics_json()?;
    println!("\nmerged service metrics (JSON, truncated):");
    let line: String = metrics.chars().take(400).collect();
    println!("{line}…");
    Ok(())
}
